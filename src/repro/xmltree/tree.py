"""The node-labeled XML document tree (paper Section 2).

An XML document is modeled as a tree ``T(V, E)`` whose nodes are elements
with a label (tag) and an optional typed value.  :class:`XMLElement` is a
plain tree node; :class:`XMLTree` wraps the root and provides traversal,
indexing, and integrity checking for the whole document.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.xmltree.types import (
    ElementValue,
    ValueType,
    infer_value_type,
    normalize_value,
)


class XMLElement:
    """A single element node: a label, an optional value, and children.

    Attributes:
        label: the element tag.
        value: the element's content (``None``, ``int``, ``str``, or a
            frozenset of terms for TEXT).
        children: child elements in document order.
        parent: the parent element, or ``None`` for the root.
    """

    __slots__ = ("label", "value", "children", "parent", "_value_type")

    def __init__(
        self,
        label: str,
        value: ElementValue = None,
        children: Optional[Sequence["XMLElement"]] = None,
    ) -> None:
        if not label:
            raise ValueError("element label must be non-empty")
        self.label = label
        self.value = normalize_value(value)
        self._value_type = infer_value_type(self.value)
        self.children: List[XMLElement] = []
        self.parent: Optional[XMLElement] = None
        if children:
            for child in children:
                self.append_child(child)

    @property
    def value_type(self) -> ValueType:
        """The :class:`ValueType` of this element's content."""
        return self._value_type

    def append_child(self, child: "XMLElement") -> "XMLElement":
        """Attach ``child`` as the last child of this element."""
        if child.parent is not None:
            raise ValueError(
                f"element <{child.label}> already has a parent <{child.parent.label}>"
            )
        child.parent = self
        self.children.append(child)
        return child

    def add(self, label: str, value: ElementValue = None) -> "XMLElement":
        """Create a new child element and return it (builder convenience)."""
        return self.append_child(XMLElement(label, value))

    def set_value(self, value: ElementValue) -> None:
        """Replace this element's value, re-inferring its type."""
        self.value = normalize_value(value)
        self._value_type = infer_value_type(self.value)

    # -- traversal ---------------------------------------------------------

    def iter(self) -> Iterator["XMLElement"]:
        """Yield this element and all descendants in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLElement"]:
        """Yield all proper descendants in pre-order.

        A direct explicit-stack walk: this is the oracle evaluator's
        hot path, so it must not delegate through nested generators or
        recurse (deep documents would hit the recursion limit).
        """
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def children_with_label(self, label: str) -> List["XMLElement"]:
        """Children whose tag equals ``label``."""
        return [child for child in self.children if child.label == label]

    def ancestors(self) -> Iterator["XMLElement"]:
        """Yield ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def label_path(self) -> Tuple[str, ...]:
        """The root-to-element sequence of labels (the element's *path*)."""
        labels = [self.label]
        labels.extend(anc.label for anc in self.ancestors())
        return tuple(reversed(labels))

    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        return sum(1 for _ in self.ancestors())

    def subtree_size(self) -> int:
        """Number of elements in the subtree rooted here (inclusive)."""
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        value_repr = "" if self.value is None else f" value={self.value!r}"
        return f"<XMLElement {self.label}{value_repr} children={len(self.children)}>"


class XMLTree:
    """A whole XML document: a root element plus document-level helpers."""

    def __init__(self, root: XMLElement) -> None:
        if root.parent is not None:
            raise ValueError("document root must not have a parent")
        self.root = root

    # -- iteration and lookups ---------------------------------------------

    def __iter__(self) -> Iterator[XMLElement]:
        return self.root.iter()

    def __len__(self) -> int:
        return self.root.subtree_size()

    def elements_by_label(self) -> Dict[str, List[XMLElement]]:
        """Group every element in the document by its tag."""
        groups: Dict[str, List[XMLElement]] = {}
        for element in self:
            groups.setdefault(element.label, []).append(element)
        return groups

    def elements_on_path(self, path: Sequence[str]) -> List[XMLElement]:
        """All elements whose root-to-element label path equals ``path``."""
        target = tuple(path)
        return [element for element in self if element.label_path() == target]

    def labels(self) -> List[str]:
        """The sorted set of distinct tags in the document."""
        return sorted({element.label for element in self})

    def value_paths(self) -> List[Tuple[str, ...]]:
        """Sorted distinct label paths that lead to valued elements."""
        paths = {
            element.label_path()
            for element in self
            if element.value_type is not ValueType.NULL
        }
        return sorted(paths)

    def find_all(self, predicate: Callable[[XMLElement], bool]) -> List[XMLElement]:
        """All elements satisfying ``predicate``, in document order."""
        return [element for element in self if predicate(element)]

    # -- integrity ----------------------------------------------------------

    def validate(self) -> None:
        """Check parent/child consistency over the whole tree.

        Raises:
            ValueError: if any child's ``parent`` pointer is inconsistent
                or the tree contains a cycle.
        """
        seen = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                raise ValueError("tree contains a cycle or shared node")
            seen.add(id(node))
            for child in node.children:
                if child.parent is not node:
                    raise ValueError(
                        f"child <{child.label}> of <{node.label}> has wrong parent"
                    )
                stack.append(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XMLTree root={self.root.label} elements={len(self)}>"

"""Structural and value statistics over an XML document.

These feed the experiment harness (Table 1 reports element counts and
sizes) and the workload generator (which biases its sampling toward
high-count paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.xmltree.tree import XMLTree
from repro.xmltree.types import ValueType


@dataclass
class TreeStatistics:
    """Summary statistics for one document.

    Attributes:
        element_count: total number of elements.
        max_depth: maximum element depth (root is 0).
        label_counts: elements per tag.
        path_counts: elements per root-to-element label path.
        type_counts: elements per value type.
        numeric_domain: (min, max) over all NUMERIC values, or ``None``.
        distinct_terms: size of the TEXT term dictionary.
        distinct_strings: number of distinct STRING values.
    """

    element_count: int = 0
    max_depth: int = 0
    label_counts: Dict[str, int] = field(default_factory=dict)
    path_counts: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    type_counts: Dict[ValueType, int] = field(default_factory=dict)
    numeric_domain: Tuple[int, int] = None
    distinct_terms: int = 0
    distinct_strings: int = 0

    @property
    def valued_element_count(self) -> int:
        """Elements carrying a non-NULL value."""
        return self.element_count - self.type_counts.get(ValueType.NULL, 0)

    def top_paths(self, limit: int = 10) -> List[Tuple[Tuple[str, ...], int]]:
        """The ``limit`` most populous label paths, highest count first."""
        ranked = sorted(self.path_counts.items(), key=lambda item: -item[1])
        return ranked[:limit]


def collect_statistics(tree: XMLTree) -> TreeStatistics:
    """Walk ``tree`` once and gather :class:`TreeStatistics`."""
    stats = TreeStatistics()
    numeric_min = None
    numeric_max = None
    terms = set()
    strings = set()

    # Depth is tracked with an explicit stack to avoid recomputing
    # label paths per element (label_path() is O(depth)).
    stack = [(tree.root, 0, (tree.root.label,))]
    while stack:
        element, depth, path = stack.pop()
        stats.element_count += 1
        stats.max_depth = max(stats.max_depth, depth)
        stats.label_counts[element.label] = stats.label_counts.get(element.label, 0) + 1
        stats.path_counts[path] = stats.path_counts.get(path, 0) + 1
        vtype = element.value_type
        stats.type_counts[vtype] = stats.type_counts.get(vtype, 0) + 1
        if vtype is ValueType.NUMERIC:
            if numeric_min is None or element.value < numeric_min:
                numeric_min = element.value
            if numeric_max is None or element.value > numeric_max:
                numeric_max = element.value
        elif vtype is ValueType.STRING:
            strings.add(element.value)
        elif vtype is ValueType.TEXT:
            terms.update(element.value)
        for child in element.children:
            stack.append((child, depth + 1, path + (child.label,)))

    if numeric_min is not None:
        stats.numeric_domain = (numeric_min, numeric_max)
    stats.distinct_terms = len(terms)
    stats.distinct_strings = len(strings)
    return stats

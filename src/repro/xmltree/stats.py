"""Structural and value statistics over an XML document.

These feed the experiment harness (Table 1 reports element counts and
sizes) and the workload generator (which biases its sampling toward
high-count paths).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.xmltree.columnar import (
    KIND_NUMERIC,
    KIND_TO_TYPE,
    ColumnarDocument,
)
from repro.xmltree.tree import XMLTree
from repro.xmltree.types import ValueType


@dataclass
class TreeStatistics:
    """Summary statistics for one document.

    Attributes:
        element_count: total number of elements.
        max_depth: maximum element depth (root is 0).
        label_counts: elements per tag.
        path_counts: elements per root-to-element label path.
        type_counts: elements per value type.
        numeric_domain: (min, max) over all NUMERIC values, or ``None``.
        distinct_terms: size of the TEXT term dictionary.
        distinct_strings: number of distinct STRING values.
    """

    element_count: int = 0
    max_depth: int = 0
    label_counts: Dict[str, int] = field(default_factory=dict)
    path_counts: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    type_counts: Dict[ValueType, int] = field(default_factory=dict)
    numeric_domain: Tuple[int, int] = None
    distinct_terms: int = 0
    distinct_strings: int = 0

    @property
    def valued_element_count(self) -> int:
        """Elements carrying a non-NULL value."""
        return self.element_count - self.type_counts.get(ValueType.NULL, 0)

    def top_paths(self, limit: int = 10) -> List[Tuple[Tuple[str, ...], int]]:
        """The ``limit`` most populous label paths, highest count first."""
        ranked = sorted(self.path_counts.items(), key=lambda item: -item[1])
        return ranked[:limit]


def _collect_columnar(doc: ColumnarDocument) -> TreeStatistics:
    """Array-scan statistics over a columnar document.

    Field-for-field equal to the object-tree walk on the equivalent
    document, but every aggregate runs as a whole-column pass:
    ``Counter`` over the interned id columns, depth over the path table
    (whose rows biject with the distinct label paths, so its maximum
    depth is the document's), and ``min``/``max`` straight over the
    packed numeric column with the overflow side table patched in.
    """
    stats = TreeStatistics()
    size = len(doc)
    stats.element_count = size

    # Path-table rows are interned parent-first, so one pass suffices;
    # every row was interned for at least one element, so the deepest
    # row is the deepest element.
    path_parent = doc.path_parent
    path_depths = [0] * len(path_parent)
    for pid, parent_pid in enumerate(path_parent):
        if parent_pid >= 0:
            path_depths[pid] = path_depths[parent_pid] + 1
    stats.max_depth = max(path_depths, default=0)

    stats.label_counts = {
        doc.label_table[label_id]: count
        for label_id, count in Counter(doc.labels).items()
    }
    stats.path_counts = {
        doc.path_tuple(path_id): count
        for path_id, count in Counter(doc.path_ids).items()
    }
    kind_counts = Counter(doc.value_kind)
    stats.type_counts = {
        KIND_TO_TYPE[kind]: count for kind, count in kind_counts.items()
    }

    if kind_counts.get(KIND_NUMERIC):
        values = doc.numeric_values
        if doc.numeric_overflow:
            values = list(values)
            for ref, value in doc.numeric_overflow.items():
                values[ref] = value
        stats.numeric_domain = (min(values), max(values))
    stats.distinct_strings = len(set(doc.string_values))
    # Streamed term sets are id tuples into the interned term table;
    # frozen documents keep literal term sets.  Count distinct terms
    # over the union of both forms.
    term_ids: set = set()
    literal_terms: set = set()
    for term_set in doc.text_values:
        if type(term_set) is tuple:
            term_ids.update(term_set)
        else:
            literal_terms.update(term_set)
    if term_ids:
        literal_terms.update(map(doc.term_table.__getitem__, term_ids))
    stats.distinct_terms = len(literal_terms)
    return stats


def collect_statistics(
    document: Union[XMLTree, ColumnarDocument]
) -> TreeStatistics:
    """Walk the document once and gather :class:`TreeStatistics`.

    Accepts either substrate; the columnar path runs as flat array
    scans and produces field-identical statistics.
    """
    if isinstance(document, ColumnarDocument):
        return _collect_columnar(document)
    tree = document
    stats = TreeStatistics()
    numeric_min = None
    numeric_max = None
    terms = set()
    strings = set()

    # Depth is tracked with an explicit stack to avoid recomputing
    # label paths per element (label_path() is O(depth)).
    stack = [(tree.root, 0, (tree.root.label,))]
    while stack:
        element, depth, path = stack.pop()
        stats.element_count += 1
        stats.max_depth = max(stats.max_depth, depth)
        stats.label_counts[element.label] = stats.label_counts.get(element.label, 0) + 1
        stats.path_counts[path] = stats.path_counts.get(path, 0) + 1
        vtype = element.value_type
        stats.type_counts[vtype] = stats.type_counts.get(vtype, 0) + 1
        if vtype is ValueType.NUMERIC:
            if numeric_min is None or element.value < numeric_min:
                numeric_min = element.value
            if numeric_max is None or element.value > numeric_max:
                numeric_max = element.value
        elif vtype is ValueType.STRING:
            strings.add(element.value)
        elif vtype is ValueType.TEXT:
            terms.update(element.value)
        for child in element.children:
            stack.append((child, depth + 1, path + (child.label,)))

    if numeric_min is not None:
        stats.numeric_domain = (numeric_min, numeric_max)
    stats.distinct_terms = len(terms)
    stats.distinct_strings = len(strings)
    return stats

"""Serialization of :class:`~repro.xmltree.tree.XMLTree` back to XML text.

The serializer is the inverse of :mod:`repro.xmltree.parser` for documents
produced by the dataset generators: NUMERIC values serialize as their
integer literal, STRING values as escaped character data, and TEXT values
as a space-joined, sorted term list (the Boolean IR model does not retain
word order, so a canonical order is used).
"""

from __future__ import annotations

from typing import List

from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ValueType

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}


def _escape(text: str) -> str:
    for raw, replacement in _ESCAPES.items():
        text = text.replace(raw, replacement)
    return text


def _value_text(element: XMLElement) -> str:
    if element.value_type is ValueType.NUMERIC:
        return str(element.value)
    if element.value_type is ValueType.STRING:
        return _escape(element.value)
    if element.value_type is ValueType.TEXT:
        return _escape(" ".join(sorted(element.value)))
    return ""


def _serialize_element(element: XMLElement, indent: int, pieces: List[str]) -> None:
    pad = "  " * indent
    if not element.children and element.value_type is ValueType.NULL:
        pieces.append(f"{pad}<{element.label}/>")
        return
    if not element.children:
        pieces.append(
            f"{pad}<{element.label}>{_value_text(element)}</{element.label}>"
        )
        return
    pieces.append(f"{pad}<{element.label}>")
    for child in element.children:
        _serialize_element(child, indent + 1, pieces)
    pieces.append(f"{pad}</{element.label}>")


def serialize(tree: XMLTree, declaration: bool = True) -> str:
    """Render ``tree`` as indented XML text."""
    pieces: List[str] = []
    if declaration:
        pieces.append('<?xml version="1.0" encoding="utf-8"?>')
    _serialize_element(tree.root, 0, pieces)
    return "\n".join(pieces) + "\n"


def serialized_size_bytes(tree: XMLTree) -> int:
    """The UTF-8 size of the serialized document.

    This is the "File Size" column of the paper's Table 1: the footprint
    of the raw data that a synopsis must compress.
    """
    return len(serialize(tree).encode("utf-8"))

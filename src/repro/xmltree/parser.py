"""A small, self-contained XML parser for the document model.

The parser is a recursive-descent implementation over the subset of XML
needed by this system: elements, nested elements, character data, XML
declarations, comments, and CDATA sections.  Attributes are parsed and
exposed as child elements (attribute ``a="v"`` of ``<e>`` becomes a child
``<@a>`` with STRING value ``v``), which keeps the downstream data model —
a pure node-labeled tree — faithful to the paper.

Element values are typed on the way in.  The caller can force types per
tag or per label path via ``type_map``; otherwise a heuristic applies:
integer character data becomes NUMERIC, character data with at least
``text_word_threshold`` words becomes TEXT (a term set), and anything else
becomes STRING.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ValueType, tokenize_text

#: Keys of a type map: either a bare tag or a root-to-element label path.
TypeKey = Union[str, Tuple[str, ...]]

_ENTITY_TABLE = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

#: Default number of whitespace-separated words at which character data is
#: treated as free TEXT rather than a short STRING.
DEFAULT_TEXT_WORD_THRESHOLD = 8


class XMLParseError(ValueError):
    """Raised on malformed input, with the offset where parsing failed."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class _Cursor:
    """Mutable scan state over the input string."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise XMLParseError(f"expected {token!r}", self.pos)
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        text = self.text
        while self.pos < len(text) and text[self.pos].isspace():
            self.pos += 1

    def read_until(self, token: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise XMLParseError(f"unterminated section, expected {token!r}", self.pos)
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (
            text[self.pos].isalnum() or text[self.pos] in "_-.:@"
        ):
            self.pos += 1
        if self.pos == start:
            raise XMLParseError("expected a name", self.pos)
        return text[start : self.pos]


def _decode_char_reference(digits: str, base: int, position: int) -> str:
    """Decode ``&#n;`` / ``&#xh;`` digits, rejecting malformed references.

    Empty, non-numeric, or out-of-range code points surface as
    :class:`XMLParseError` (found by fuzzing: ``&#;`` previously escaped
    as a raw ``ValueError``).
    """
    try:
        return chr(int(digits, base))
    except (ValueError, OverflowError):
        raise XMLParseError(
            f"malformed character reference &#{digits};", position
        ) from None


def _decode_entities(raw: str) -> str:
    """Replace the five predefined XML entities and numeric references."""
    if "&" not in raw:
        return raw
    pieces = []
    index = 0
    while index < len(raw):
        amp = raw.find("&", index)
        if amp < 0:
            pieces.append(raw[index:])
            break
        pieces.append(raw[index:amp])
        semi = raw.find(";", amp)
        if semi < 0:
            raise XMLParseError("unterminated entity reference", amp)
        name = raw[amp + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            pieces.append(_decode_char_reference(name[2:], 16, amp))
        elif name.startswith("#"):
            pieces.append(_decode_char_reference(name[1:], 10, amp))
        elif name in _ENTITY_TABLE:
            pieces.append(_ENTITY_TABLE[name])
        else:
            raise XMLParseError(f"unknown entity &{name};", amp)
        index = semi + 1
    return "".join(pieces)


def _skip_misc(cursor: _Cursor) -> None:
    """Skip whitespace, comments, processing instructions, and doctypes."""
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->")
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>")
        elif cursor.startswith("<!DOCTYPE"):
            cursor.read_until(">")
        else:
            return


def _typed_value(
    text: str,
    label_path: Tuple[str, ...],
    type_map: Mapping[TypeKey, ValueType],
    text_word_threshold: int,
):
    """Convert raw character data into a typed element value."""
    forced = type_map.get(label_path, type_map.get(label_path[-1]))
    if forced is ValueType.NULL:
        return None
    if forced is ValueType.NUMERIC:
        return int(text.strip())
    if forced is ValueType.STRING:
        return text.strip()
    if forced is ValueType.TEXT:
        return tokenize_text(text)
    stripped = text.strip()
    if not stripped:
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    if len(stripped.split()) >= text_word_threshold:
        return tokenize_text(stripped)
    return stripped


def _parse_attributes(cursor: _Cursor) -> Dict[str, str]:
    attributes: Dict[str, str] = {}
    while True:
        cursor.skip_whitespace()
        char = cursor.peek()
        if char in (">", "/", ""):
            return attributes
        name = cursor.read_name()
        cursor.skip_whitespace()
        cursor.expect("=")
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise XMLParseError("attribute value must be quoted", cursor.pos)
        cursor.pos += 1
        attributes[name] = _decode_entities(cursor.read_until(quote))


def _parse_element(
    cursor: _Cursor,
    parent_path: Tuple[str, ...],
    type_map: Mapping[TypeKey, ValueType],
    text_word_threshold: int,
) -> XMLElement:
    cursor.expect("<")
    label = cursor.read_name()
    label_path = parent_path + (label,)
    element = XMLElement(label)
    for attr_name, attr_value in _parse_attributes(cursor).items():
        element.add("@" + attr_name, attr_value)
    cursor.skip_whitespace()
    if cursor.startswith("/>"):
        cursor.pos += 2
        return element
    cursor.expect(">")

    text_chunks = []
    while True:
        if cursor.eof():
            raise XMLParseError(f"unterminated element <{label}>", cursor.pos)
        if cursor.startswith("</"):
            cursor.pos += 2
            closing = cursor.read_name()
            if closing != label:
                raise XMLParseError(
                    f"mismatched close tag </{closing}> for <{label}>", cursor.pos
                )
            cursor.skip_whitespace()
            cursor.expect(">")
            break
        if cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->")
        elif cursor.startswith("<![CDATA["):
            cursor.pos += 9
            text_chunks.append(cursor.read_until("]]>"))
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>")
        elif cursor.peek() == "<":
            element.append_child(
                _parse_element(cursor, label_path, type_map, text_word_threshold)
            )
        else:
            end = cursor.text.find("<", cursor.pos)
            if end < 0:
                raise XMLParseError(f"unterminated element <{label}>", cursor.pos)
            text_chunks.append(_decode_entities(cursor.text[cursor.pos : end]))
            cursor.pos = end

    raw_text = "".join(text_chunks)
    if raw_text.strip():
        if element.children:
            raise XMLParseError(
                f"element <{label}> mixes character data with child elements",
                cursor.pos,
            )
        element.set_value(
            _typed_value(raw_text, label_path, type_map, text_word_threshold)
        )
    return element


def parse_string(
    text: str,
    type_map: Optional[Mapping[TypeKey, ValueType]] = None,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
) -> XMLTree:
    """Parse an XML document from a string into an :class:`XMLTree`.

    Args:
        text: the document source.
        type_map: optional mapping from a tag (``"year"``) or a full label
            path (``("site", "item", "price")``) to the :class:`ValueType`
            that element's character data should be parsed as.  Without an
            entry, a heuristic applies (integers → NUMERIC, long text →
            TEXT, otherwise STRING).
        text_word_threshold: word count at which untyped character data is
            promoted from STRING to TEXT.

    Returns:
        The parsed document.

    Raises:
        XMLParseError: on malformed input.
    """
    cursor = _Cursor(text)
    _skip_misc(cursor)
    if cursor.peek() != "<":
        raise XMLParseError("document has no root element", cursor.pos)
    root = _parse_element(cursor, (), type_map or {}, text_word_threshold)
    _skip_misc(cursor)
    if not cursor.eof():
        raise XMLParseError("trailing content after root element", cursor.pos)
    return XMLTree(root)


def parse_document(
    path: str,
    type_map: Optional[Mapping[TypeKey, ValueType]] = None,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
) -> XMLTree:
    """Parse an XML document from a file (see :func:`parse_string`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_string(handle.read(), type_map, text_word_threshold)

"""XML tree substrate: node-labeled trees with typed element values.

This package provides the document model that every other subsystem builds
on: :class:`~repro.xmltree.tree.XMLElement` / :class:`~repro.xmltree.tree.XMLTree`
(a node-labeled tree where each element optionally carries a NUMERIC,
STRING, or TEXT value), an XML parser and serializer implemented from
scratch, and structural statistics used by the experiment harness.

Two document substrates are available: the object tree (one
:class:`XMLElement` per element) and the columnar store
(:class:`~repro.xmltree.columnar.ColumnarDocument`, struct-of-arrays
preorder columns fed by the streaming event tokenizer of
:mod:`repro.xmltree.events`).  Synopsis construction accepts either and
produces bit-identical results; the columnar path exists for scale —
chunked file ingestion in bounded memory and array-scan statistics.
"""

from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ValueType, infer_value_type
from repro.xmltree.parser import XMLParseError, parse_document, parse_string
from repro.xmltree.serializer import serialize, serialized_size_bytes
from repro.xmltree.stats import TreeStatistics, collect_statistics
from repro.xmltree.events import iter_events
from repro.xmltree.columnar import (
    ColumnarCursor,
    ColumnarDocument,
    freeze,
    from_events,
    ingest_file,
    ingest_string,
    thaw,
)

__all__ = [
    "XMLElement",
    "XMLTree",
    "ValueType",
    "infer_value_type",
    "XMLParseError",
    "parse_document",
    "parse_string",
    "serialize",
    "serialized_size_bytes",
    "TreeStatistics",
    "collect_statistics",
    "iter_events",
    "ColumnarCursor",
    "ColumnarDocument",
    "freeze",
    "from_events",
    "ingest_file",
    "ingest_string",
    "thaw",
]

"""Value types for XML element content.

The paper's data model (Section 2) assigns each element a value of one of
four types:

* ``NULL`` — the element carries no value (pure structure);
* ``NUMERIC`` — an integer from a domain ``{0 .. M-1}``;
* ``STRING`` — a short string queried with substring (``contains``)
  predicates;
* ``TEXT`` — free text modeled as a Boolean term vector over a term
  dictionary, queried with IR-style ``ftcontains`` predicates.
"""

from __future__ import annotations

import enum
import re
from typing import FrozenSet, Optional, Union

#: A TEXT value is a set of terms (the Boolean-vector IR model of the
#: paper: entry ``t`` is 1 iff term ``t`` occurs in the free text).
TermSet = FrozenSet[str]

#: The union of concrete Python types an element value may take.
ElementValue = Union[int, str, TermSet, None]


class ValueType(enum.Enum):
    """The data type of an XML element's value (paper Section 2)."""

    NULL = "null"
    NUMERIC = "numeric"
    STRING = "string"
    TEXT = "text"

    @property
    def has_value(self) -> bool:
        """Whether elements of this type carry content."""
        return self is not ValueType.NULL

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def infer_value_type(value: ElementValue) -> ValueType:
    """Infer the :class:`ValueType` of a raw element value.

    ``int`` maps to NUMERIC, ``str`` to STRING, and any set of strings to
    TEXT.  ``None`` maps to NULL.

    Raises:
        TypeError: if ``value`` is of an unsupported type.
    """
    if value is None:
        return ValueType.NULL
    if isinstance(value, bool):
        raise TypeError("bool is not a supported XML element value")
    if isinstance(value, int):
        return ValueType.NUMERIC
    if isinstance(value, str):
        return ValueType.STRING
    if isinstance(value, (set, frozenset)):
        if not all(isinstance(term, str) for term in value):
            raise TypeError("TEXT values must be sets of string terms")
        return ValueType.TEXT
    raise TypeError(f"unsupported element value type: {type(value).__name__}")


def normalize_value(value: ElementValue) -> ElementValue:
    """Return ``value`` in canonical form (TEXT values become frozensets)."""
    if isinstance(value, set):
        return frozenset(value)
    return value


#: Maximal runs of alphanumeric characters.  ``\w`` is exactly
#: ``str.isalnum`` plus the underscore, so ``[^\W_]`` matches the same
#: character class the old per-character ``isalnum`` scan accepted —
#: including non-ASCII letters and digits.
_TERM_RE = re.compile(r"[^\W_]+")


def tokenize_text_ordered(text: str) -> list:
    """Distinct text terms in first-occurrence order.

    Exactly the insertion sequence :func:`tokenize_text` feeds its set,
    with duplicates dropped (a repeated ``set.add`` is a no-op, so the
    deduplicated sequence rebuilds a layout-identical set).  The
    columnar store keeps this order so it can reconstruct term sets
    bit-compatible with the object parser's.  Runs as two C-level
    passes: one regex scan, one ``dict.fromkeys`` dedup.
    """
    return list(dict.fromkeys(_TERM_RE.findall(text.lower())))


def tokenize_text(text: str) -> TermSet:
    """Tokenize free text into the Boolean term set of the IR model.

    Lower-cases, splits on non-alphanumeric characters, and drops empty
    tokens; this is the canonical text-to-term-vector mapping used by the
    parser, the datasets, and the exact evaluator alike so that all layers
    agree on term identity.  The interim ``set`` keeps the frozenset's
    insertion sequence identical to the historical ``set.add`` loop, so
    stored term-set layouts are unchanged.
    """
    return frozenset(set(tokenize_text_ordered(text)))

"""A pull-based XML event tokenizer for streaming ingestion.

The recursive-descent parser in :mod:`repro.xmltree.parser` materializes
one :class:`~repro.xmltree.tree.XMLElement` per document element — the
right substrate for small fixtures, but a memory ceiling for XMark-scale
corpora.  This module re-layers the same lexical grammar as a *pull*
tokenizer: :func:`iter_events` scans the input once and yields a flat
stream of ``(START, label)`` / ``(ATTR, name, value)`` /
``(TEXT, data)`` / ``(END, label)`` tuples without ever building nodes.
Consumers (the columnar ingestor, primarily) decide what to materialize.

The tokenizer accepts a whole string, an open text-file handle, or any
iterable of string chunks, so documents can be ingested from disk in
bounded memory: the internal buffer holds only the unconsumed suffix of
the current window plus one lookahead chunk.

Semantics are kept bit-for-bit compatible with the tree parser:

* the same entity table and numeric-character-reference validation
  (``&#;``-style malformed references raise :class:`XMLParseError`);
* the same comment / processing-instruction / DOCTYPE / CDATA handling;
* the same well-formedness errors (mismatched close tags, unterminated
  elements, trailing content), reported at the same document offsets;
* the same duplicate-attribute rule (last value wins, first position);
* the same mixed-content rule — an element whose children (including
  attribute children) coexist with non-whitespace character data is
  rejected — enforced here so every consumer inherits it.

``TEXT`` events carry entity-decoded character data exactly as the tree
parser accumulates it: one event per contiguous run between markup, plus
one per CDATA section (CDATA is never entity-decoded).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union

from repro.xmltree.parser import XMLParseError, _decode_entities

#: Event kinds.  Interned module constants — consumers compare with
#: ``is`` for speed; the values read well in test failures.
START = "start"
ATTR = "attr"
TEXT = "text"
END = "end"

#: One tokenizer event: ``(START, label)``, ``(ATTR, name, value)``,
#: ``(TEXT, data)``, or ``(END, label)``.
XMLEvent = Tuple[str, ...]

#: Anything the tokenizer can scan: a whole document string, an open
#: text-mode file, or an iterable of string chunks.
EventSource = Union[str, "Iterator[str]"]

#: Default read size when pulling from a file handle.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Compact the buffer once this much consumed prefix accumulates, so the
#: resident window stays proportional to the chunk size, not the input.
_COMPACT_THRESHOLD = 1 << 16


class _StreamCursor:
    """Scan state over a chunked input with on-demand refill.

    The same surface as the tree parser's ``_Cursor`` (``peek`` /
    ``startswith`` / ``expect`` / ``read_until`` / ``read_name``), but
    every lookahead that runs off the buffered suffix pulls the next
    chunk first.  ``offset`` converts buffer positions to absolute
    document offsets so errors match the whole-string parser.
    """

    __slots__ = ("buffer", "pos", "offset", "_chunks", "_exhausted")

    def __init__(self, chunks: Iterator[str]) -> None:
        self.buffer = ""
        self.pos = 0
        #: Absolute document offset of ``buffer[0]``.
        self.offset = 0
        self._chunks = chunks
        self._exhausted = False

    # -- buffer management -------------------------------------------------

    def _pull(self) -> bool:
        """Append the next chunk; False once the source is exhausted."""
        if self._exhausted:
            return False
        for chunk in self._chunks:
            if chunk:
                self.buffer += chunk
                return True
        self._exhausted = True
        return False

    def _ensure(self, length: int) -> None:
        """Buffer at least ``length`` characters past ``pos`` if possible."""
        while len(self.buffer) - self.pos < length and self._pull():
            pass

    def compact(self) -> None:
        """Drop the consumed prefix when it grows past the threshold."""
        if self.pos > _COMPACT_THRESHOLD:
            self.offset += self.pos
            self.buffer = self.buffer[self.pos :]
            self.pos = 0

    def tell(self) -> int:
        """The absolute document offset of the scan position."""
        return self.offset + self.pos

    # -- the lexer surface -------------------------------------------------

    def eof(self) -> bool:
        self._ensure(1)
        return self.pos >= len(self.buffer)

    def peek(self) -> str:
        self._ensure(1)
        return self.buffer[self.pos] if self.pos < len(self.buffer) else ""

    def startswith(self, token: str) -> bool:
        self._ensure(len(token))
        return self.buffer.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise XMLParseError(f"expected {token!r}", self.tell())
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while True:
            buffer = self.buffer
            size = len(buffer)
            while self.pos < size and buffer[self.pos].isspace():
                self.pos += 1
            if self.pos < size or not self._pull():
                return

    def read_until(self, token: str) -> str:
        """Consume through ``token``, returning the text before it."""
        while True:
            end = self.buffer.find(token, self.pos)
            if end >= 0:
                chunk = self.buffer[self.pos : end]
                self.pos = end + len(token)
                return chunk
            if not self._pull():
                raise XMLParseError(
                    f"unterminated section, expected {token!r}", self.tell()
                )

    def read_text_run(self) -> str:
        """Consume character data up to (not including) the next ``<``.

        Returns an empty string — without consuming anything — when EOF
        arrives before any markup, so the caller can raise its
        contextual unterminated-element error at the run's offset.
        """
        while True:
            end = self.buffer.find("<", self.pos)
            if end >= 0:
                chunk = self.buffer[self.pos : end]
                self.pos = end
                return chunk
            if not self._pull():
                return ""

    def read_name(self) -> str:
        start = self.pos
        while True:
            buffer = self.buffer
            size = len(buffer)
            while self.pos < size and (
                buffer[self.pos].isalnum() or buffer[self.pos] in "_-.:@"
            ):
                self.pos += 1
            if self.pos < size or not self._pull():
                break
        if self.pos == start:
            raise XMLParseError("expected a name", self.tell())
        return self.buffer[start : self.pos]


def _chunk_iterator(source: EventSource, chunk_size: int) -> Iterator[str]:
    """Normalize any supported source into an iterator of string chunks."""
    if isinstance(source, str):
        return iter((source,))
    read = getattr(source, "read", None)
    if callable(read):

        def _file_chunks() -> Iterator[str]:
            while True:
                chunk = read(chunk_size)
                if not chunk:
                    return
                yield chunk

        return _file_chunks()
    return iter(source)


def _skip_misc(cursor: _StreamCursor) -> None:
    """Skip whitespace, comments, processing instructions, and doctypes."""
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->")
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>")
        elif cursor.startswith("<!DOCTYPE"):
            cursor.read_until(">")
        else:
            return


def _read_start_tag(
    cursor: _StreamCursor,
) -> Tuple[str, List[Tuple[str, str]], bool]:
    """Scan one start tag: ``(label, attributes, self_closed)``.

    Attributes are deduplicated exactly as the tree parser's dict
    accumulation does: a repeated name keeps its first position with the
    last value.
    """
    cursor.expect("<")
    label = cursor.read_name()
    names: List[str] = []
    values = {}
    while True:
        cursor.skip_whitespace()
        char = cursor.peek()
        if char in (">", "/", ""):
            break
        name = cursor.read_name()
        cursor.skip_whitespace()
        cursor.expect("=")
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise XMLParseError("attribute value must be quoted", cursor.tell())
        cursor.pos += 1
        if name not in values:
            names.append(name)
        values[name] = _decode_entities(cursor.read_until(quote))
    cursor.skip_whitespace()
    if cursor.startswith("/>"):
        cursor.pos += 2
        return label, [(name, values[name]) for name in names], True
    cursor.expect(">")
    return label, [(name, values[name]) for name in names], False


def iter_events(
    source: EventSource, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[XMLEvent]:
    """Tokenize an XML document into a flat event stream.

    Args:
        source: the document — a whole string, an open text-mode file,
            or any iterable of string chunks.
        chunk_size: read size used when ``source`` is a file handle.

    Yields:
        ``(START, label)``, ``(ATTR, name, value)``, ``(TEXT, data)``,
        and ``(END, label)`` tuples in document order.  Attribute events
        immediately follow their element's START; every START is paired
        with exactly one END.

    Raises:
        XMLParseError: on malformed input, with the same messages and
            offsets as :func:`repro.xmltree.parser.parse_string`.
    """
    cursor = _StreamCursor(_chunk_iterator(source, chunk_size))
    _skip_misc(cursor)
    if cursor.peek() != "<":
        raise XMLParseError("document has no root element", cursor.tell())

    # Per open element: [label, saw a child element or attribute, saw
    # non-whitespace character data].  The flags drive the mixed-content
    # rule the tree parser applies at element close.
    stack: List[List] = []

    label, attributes, closed = _read_start_tag(cursor)
    yield (START, label)
    for name, value in attributes:
        yield (ATTR, name, value)
    if closed:
        yield (END, label)
    else:
        stack.append([label, bool(attributes), False])

    while stack:
        cursor.compact()
        if cursor.startswith("</"):
            cursor.pos += 2
            closing = cursor.read_name()
            entry = stack.pop()
            if closing != entry[0]:
                raise XMLParseError(
                    f"mismatched close tag </{closing}> for <{entry[0]}>",
                    cursor.tell(),
                )
            cursor.skip_whitespace()
            cursor.expect(">")
            if entry[2] and entry[1]:
                raise XMLParseError(
                    f"element <{entry[0]}> mixes character data with child "
                    "elements",
                    cursor.tell(),
                )
            yield (END, closing)
        elif cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->")
        elif cursor.startswith("<![CDATA["):
            cursor.pos += 9
            data = cursor.read_until("]]>")
            if data:
                if data.strip():
                    stack[-1][2] = True
                yield (TEXT, data)
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>")
        elif cursor.peek() == "<":
            stack[-1][1] = True
            label, attributes, closed = _read_start_tag(cursor)
            yield (START, label)
            for name, value in attributes:
                yield (ATTR, name, value)
            if closed:
                yield (END, label)
            else:
                stack.append([label, bool(attributes), False])
        else:
            if cursor.eof():
                raise XMLParseError(
                    f"unterminated element <{stack[-1][0]}>", cursor.tell()
                )
            run = cursor.read_text_run()
            if not run:
                raise XMLParseError(
                    f"unterminated element <{stack[-1][0]}>", cursor.tell()
                )
            if run.strip():
                stack[-1][2] = True
            yield (TEXT, _decode_entities(run))

    _skip_misc(cursor)
    if not cursor.eof():
        raise XMLParseError("trailing content after root element", cursor.tell())

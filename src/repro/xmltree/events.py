"""A pull-based XML event tokenizer for streaming ingestion.

The recursive-descent parser in :mod:`repro.xmltree.parser` materializes
one :class:`~repro.xmltree.tree.XMLElement` per document element — the
right substrate for small fixtures, but a memory ceiling for XMark-scale
corpora.  This module re-layers the same lexical grammar as a *pull*
tokenizer: :func:`iter_events` scans the input once and yields a flat
stream of ``(START, label)`` / ``(ATTR, name, value)`` /
``(TEXT, data)`` / ``(END, label)`` tuples without ever building nodes.
Consumers (the columnar ingestor, primarily) decide what to materialize.

Two implementations share this contract:

* :func:`iter_events` — the production tokenizer.  It scans **bytes**,
  not characters: markup is located with ``bytes.find`` (one C-level
  seek per inter-markup span instead of per-character dispatch), names
  and whitespace runs are matched with compiled byte patterns, and the
  chunk-boundary carry buffer never copies more than the unconsumed
  tail.  Decoding is on demand — only the label, attribute, and text
  spans that survive tokenization are decoded (labels through a
  per-document memo, so a million ``<item>`` elements decode the tag
  once); comments, processing instructions, and DOCTYPEs are skipped as
  raw bytes.  String sources are UTF-8-encoded up front (one C call)
  and scanned on the same byte path.
* :func:`iter_events_str` — the original character tokenizer, kept as
  the bit-exact parity oracle.  The differential harness pits the two
  against each other on generated (and deliberately corrupted) corpora;
  ``tests/test_columnar.py`` pins stream and error equality.

The tokenizer accepts a whole string or ``bytes``, an open text- or
binary-mode file handle, or any iterable of string/bytes chunks, so
documents can be ingested from disk in bounded memory: the internal
buffer holds only the unconsumed suffix of the current window plus one
lookahead chunk.  Byte chunks may split anywhere — mid-tag, mid-entity,
even mid-way through a multi-byte UTF-8 code point.

Semantics are kept bit-for-bit compatible with the tree parser:

* the same entity table and numeric-character-reference validation
  (``&#;``-style malformed references raise :class:`XMLParseError`);
* the same comment / processing-instruction / DOCTYPE / CDATA handling;
* the same well-formedness errors (mismatched close tags, unterminated
  elements, trailing content), reported at the same document offsets —
  the byte scanner converts byte positions back to *character* offsets
  when raising, so errors match the string parser even after multi-byte
  code points;
* the same name and whitespace alphabets — ASCII name/space bytes are
  classified with byte tables, and non-ASCII bytes fall back to
  decoding one code point and asking ``str.isalnum`` / ``str.isspace``,
  so ``<café>`` and NBSP-separated attributes lex identically to the
  character parser;
* the same duplicate-attribute rule (last value wins, first position);
* the same mixed-content rule — an element whose children (including
  attribute children) coexist with non-whitespace character data is
  rejected — enforced here so every consumer inherits it.

``TEXT`` events carry entity-decoded character data exactly as the tree
parser accumulates it: one event per contiguous run between markup, plus
one per CDATA section (CDATA is never entity-decoded).
"""

from __future__ import annotations

import re
from itertools import chain
from typing import Iterator, List, Tuple, Union

from repro.xmltree.parser import XMLParseError, _decode_entities

#: Event kinds.  Interned module constants — consumers compare with
#: ``is`` for speed; the values read well in test failures.
START = "start"
ATTR = "attr"
TEXT = "text"
END = "end"

#: One tokenizer event: ``(START, label)``, ``(ATTR, name, value)``,
#: ``(TEXT, data)``, or ``(END, label)``.
XMLEvent = Tuple[str, ...]

#: Anything the tokenizer can scan: a whole document (``str`` or
#: ``bytes``), an open file (text or binary mode), or an iterable of
#: string/bytes chunks.
EventSource = Union[str, bytes, "Iterator[str]", "Iterator[bytes]"]

#: Default read size when pulling from a file handle.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Compact the buffer once this much consumed prefix accumulates, so the
#: resident window stays proportional to the chunk size, not the input.
_COMPACT_THRESHOLD = 1 << 16

# -- byte-scan tables ---------------------------------------------------------

#: ASCII name alphabet of ``_Cursor.read_name``: alnum plus ``_-.:@``.
_NAME_RE = re.compile(rb"[0-9A-Za-z_\-.:@]*")

#: ASCII bytes for which ``str.isspace`` is true (note ``\x1c-\x1f``).
_WS_RE = re.compile(rb"[ \t\n\r\x0b\x0c\x1c-\x1f]*")

#: UTF-8 continuation bytes; deleting them from a span leaves one byte
#: per code point, which converts byte offsets to character offsets.
_CONT_BYTES = bytes(range(0x80, 0xC0))

_LT = 0x3C  # <
_GT = 0x3E  # >
_SLASH = 0x2F  # /
_BANG = 0x21  # !
_QMARK = 0x3F  # ?
_AMP = 0x26  # &
_APOS = 0x27  # '
_QUOT = 0x22  # "


def _char_count(data: bytes) -> int:
    """Code points in ``data`` (exact for any UTF-8 byte split)."""
    if data.isascii():
        return len(data)
    return len(data.translate(None, _CONT_BYTES))


def _char_at(buf: bytes, pos: int) -> Tuple[str, int]:
    """Decode one code point at ``pos``: ``(char, byte_length)``.

    Returns ``("", 0)`` when the bytes at ``pos`` are not a valid UTF-8
    sequence, so callers treat malformed bytes as "not a name/space
    character" and let the grammar raise its contextual parse error.
    """
    lead = buf[pos]
    if lead < 0x80:
        return chr(lead), 1
    length = 2 if lead < 0xE0 else 3 if lead < 0xF0 else 4
    seq = buf[pos : pos + length]
    try:
        return seq.decode("utf-8", "surrogatepass"), length
    except UnicodeDecodeError:
        return "", 0


def _byte_chunks(
    source: EventSource, chunk_size: int
) -> Tuple[Iterator[bytes], bool]:
    """Normalize any supported source into ``(byte chunks, bounded)``.

    ``bounded`` marks truly incremental sources (files, chunk
    iterables) whose consumed prefix should be dropped as scanning
    advances; whole-document inputs skip compaction entirely — the
    buffer *is* the input, no copies are ever made.
    """
    if isinstance(source, bytes):
        return iter((source,)), False
    if isinstance(source, str):
        return iter((source.encode("utf-8", "surrogatepass"),)), False
    if isinstance(source, (bytearray, memoryview)):
        return iter((bytes(source),)), False
    read = getattr(source, "read", None)
    if callable(read):

        def _file_chunks() -> Iterator[bytes]:
            while True:
                chunk = read(chunk_size)
                if not chunk:
                    return
                if isinstance(chunk, str):
                    chunk = chunk.encode("utf-8", "surrogatepass")
                yield chunk

        return _file_chunks(), True

    def _encoded(chunks) -> Iterator[bytes]:
        for chunk in chunks:
            if isinstance(chunk, str):
                chunk = chunk.encode("utf-8", "surrogatepass")
            yield chunk

    return _encoded(source), True


def iter_events(
    source: EventSource, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[XMLEvent]:
    """Tokenize an XML document into a flat event stream (byte scan).

    Args:
        source: the document — a whole string or ``bytes``, an open
            file handle (text or binary mode), or any iterable of
            string/bytes chunks.  Byte chunks may split at arbitrary
            positions, including inside multi-byte code points.
        chunk_size: read size used when ``source`` is a file handle.

    Yields:
        ``(START, label)``, ``(ATTR, name, value)``, ``(TEXT, data)``,
        and ``(END, label)`` tuples in document order.  Attribute events
        immediately follow their element's START; every START is paired
        with exactly one END.

    Raises:
        XMLParseError: on malformed input, with the same messages and
            (character) offsets as
            :func:`repro.xmltree.parser.parse_string`.
    """
    chunks, bounded = _byte_chunks(source, chunk_size)
    # The scanner emits events in batches; flattening through
    # ``chain.from_iterable`` keeps the public per-event stream while
    # replacing one Python generator resume per event with one per
    # batch (the batches themselves iterate at C speed).
    return chain.from_iterable(_scan_bytes(chunks, bounded))


#: Events accumulated per scanner batch — bounds transient memory while
#: amortizing generator suspension over hundreds of events.
_BATCH_EVENTS = 512

#: Shared empty attribute sequence for the no-attribute fast path.
_NO_ATTRS: Tuple = ()


def _scan_bytes(
    chunks: Iterator[bytes], bounded: bool
) -> Iterator[List[XMLEvent]]:
    """The byte-level tokenizer core over normalized byte chunks.

    Yields *lists* of events.  Batches split only at event boundaries,
    in document order, and any events scanned before a parse error are
    flushed before the error propagates — so the flattened stream is
    indistinguishable from per-event emission, prefix included.
    """
    buf = b""
    pos = 0
    chars_base = 0  # character count of everything dropped before buf[0]
    exhausted = False
    label_memo: dict = {}  # raw name bytes -> decoded str (per document)

    # -- buffer management (rare path: once per chunk) ---------------------

    def pull() -> bool:
        """Drop the consumed prefix, append the next chunk; False at EOF."""
        nonlocal buf, pos, chars_base, exhausted
        if exhausted:
            return False
        if pos and bounded:
            chars_base += _char_count(buf[:pos])
            buf = buf[pos:]
            pos = 0
        for chunk in chunks:
            if chunk:
                buf += chunk
                return True
        exhausted = True
        return False

    def ensure(length: int) -> None:
        """Buffer at least ``length`` bytes past ``pos`` if possible."""
        while len(buf) - pos < length and pull():
            pass

    def compact() -> None:
        nonlocal buf, pos, chars_base
        chars_base += _char_count(buf[:pos])
        buf = buf[pos:]
        pos = 0

    def tell(at: int) -> int:
        """Character offset of byte position ``at`` (error paths only)."""
        return chars_base + _char_count(buf[:at])

    def fail(message: str, at: int) -> XMLParseError:
        return XMLParseError(message, tell(at))

    # -- the lexer (hot paths: byte-table + C find/match driven) -----------

    def skip_ws() -> None:
        nonlocal pos
        while True:
            end = _WS_RE.match(buf, pos).end()
            if end == len(buf) and not exhausted:
                pos = end
                if pull():
                    continue
                return
            pos = end
            if pos < len(buf) and buf[pos] >= 0x80:
                if len(buf) - pos < 4 and not exhausted:
                    if pull():
                        continue
                char, width = _char_at(buf, pos)
                if width and char.isspace():
                    pos += width
                    continue
            return

    def scan_name() -> str:
        nonlocal pos
        end = pos
        while True:
            end = _NAME_RE.match(buf, end).end()
            if end == len(buf) and not exhausted:
                rel = end - pos
                if pull():
                    end = pos + rel
                    continue
            if end < len(buf) and buf[end] >= 0x80:
                if len(buf) - end < 4 and not exhausted:
                    rel = end - pos
                    if pull():
                        end = pos + rel
                        continue
                char, width = _char_at(buf, end)
                if width and char.isalnum():
                    end += width
                    continue
            break
        if end == pos:
            raise fail("expected a name", pos)
        raw = buf[pos:end]
        pos = end
        name = label_memo.get(raw)
        if name is None:
            name = raw.decode("utf-8", "surrogatepass")
            label_memo[raw] = name
        return name

    def read_until(token: bytes, keep: bool):
        """Consume through ``token``; the bytes before it when ``keep``."""
        nonlocal pos
        scan = pos
        width = len(token)
        while True:
            found = buf.find(token, scan)
            if found >= 0:
                span = buf[pos:found] if keep else None
                pos = found + width
                return span
            rel = len(buf) - pos - (width - 1)
            if rel < 0:
                rel = 0
            if not pull():
                raise fail(
                    f"unterminated section, expected {token.decode()!r}", pos
                )
            scan = pos + rel

    def expect_gt() -> None:
        nonlocal pos
        ensure(1)
        if pos >= len(buf) or buf[pos] != _GT:
            raise fail("expected '>'", pos)
        pos += 1

    def skip_misc() -> None:
        nonlocal pos
        while True:
            skip_ws()
            if len(buf) - pos < 9 and not exhausted:
                ensure(9)
            if buf.startswith(b"<!--", pos):
                pos += 4
                read_until(b"-->", False)
            elif buf.startswith(b"<?", pos):
                pos += 2
                read_until(b"?>", False)
            elif buf.startswith(b"<!DOCTYPE", pos):
                read_until(b">", False)
            else:
                return

    def read_start_tag() -> Tuple[str, List[Tuple[str, str]], bool]:
        """Scan one start tag past its ``<``: ``(label, attrs, closed)``.

        Attributes are deduplicated exactly as the tree parser's dict
        accumulation does: a repeated name keeps its first position
        with the last value.
        """
        nonlocal pos
        pos += 1  # consume "<"
        # Inline the common case of scan_name: a non-empty ASCII name
        # run ending at an ASCII delimiter inside the buffer (no refill,
        # no unicode continuation possible).  Everything else — buffer
        # edge, non-ASCII follower, empty match — takes the full scan.
        end = _NAME_RE.match(buf, pos).end()
        if pos < end < len(buf) and buf[end] < 0x80:
            raw = buf[pos:end]
            label = label_memo.get(raw)
            if label is None:
                label = raw.decode("utf-8", "surrogatepass")
                label_memo[raw] = label
            pos = end
        else:
            label = scan_name()
        # Fast path: no attributes, tag closes right after the name.
        # (``scan_name`` leaves ``pos`` inside the buffer unless the
        # source is exhausted, so the peek needs no refill.)
        if pos + 1 < len(buf):
            head = buf[pos]
            if head == _GT:
                pos += 1
                return label, _NO_ATTRS, False
            if head == _SLASH and buf[pos + 1] == _GT:
                pos += 2
                return label, _NO_ATTRS, True
        names: List[str] = []
        values = {}
        while True:
            skip_ws()
            ensure(1)
            head = buf[pos] if pos < len(buf) else -1
            if head == _GT or head == _SLASH or head == -1:
                break
            name = scan_name()
            skip_ws()
            ensure(1)
            if pos >= len(buf) or buf[pos] != 0x3D:  # "="
                raise fail("expected '='", pos)
            pos += 1
            skip_ws()
            ensure(1)
            quote = buf[pos] if pos < len(buf) else -1
            if quote != _APOS and quote != _QUOT:
                raise fail("attribute value must be quoted", pos)
            pos += 1
            raw = read_until(b"'" if quote == _APOS else b'"', True)
            value = raw.decode("utf-8", "surrogatepass")
            if _AMP in raw:
                value = _decode_entities(value)
            if name not in values:
                names.append(name)
            values[name] = value
        if head == _SLASH:
            ensure(2)
            if buf.startswith(b"/>", pos):
                pos += 2
                return label, [(name, values[name]) for name in names], True
            raise fail("expected '>'", pos)
        if head == _GT:
            pos += 1
            return label, [(name, values[name]) for name in names], False
        raise fail("expected '>'", pos)

    # -- the document grammar ----------------------------------------------

    out: List[XMLEvent] = []
    append = out.append
    try:
        skip_misc()
        if pos >= len(buf) or buf[pos] != _LT:
            raise fail("document has no root element", pos)

        # Per open element: [label, saw a child element or attribute,
        # saw non-whitespace character data].  The flags drive the
        # mixed-content rule the tree parser applies at element close.
        stack: List[List] = []

        label, attributes, closed = read_start_tag()
        append((START, label))
        for name, value in attributes:
            append((ATTR, name, value))
        if closed:
            append((END, label))
        else:
            stack.append([label, bool(attributes), False])

        while stack:
            if len(out) >= _BATCH_EVENTS:
                yield out
                out = []
                append = out.append
            if bounded and pos > _COMPACT_THRESHOLD and pos * 2 >= len(buf):
                compact()
            if len(buf) - pos < 9 and not exhausted:
                ensure(9)
            if pos >= len(buf):
                raise fail(f"unterminated element <{stack[-1][0]}>", pos)
            if buf[pos] == _LT:
                nxt = buf[pos + 1] if pos + 1 < len(buf) else -1
                if nxt == _SLASH:
                    pos += 2
                    # Fast path: a memoized name directly before ">" —
                    # matching close tags always hit once their start tag
                    # interned the name bytes.  Anything else (chunk
                    # boundary, whitespace, bad name) falls back to the
                    # scanning path.  Error positions are identical: a
                    # mismatch reports right after the name (``gt`` is
                    # exactly where ``scan_name`` would leave ``pos``).
                    gt = buf.find(_GT, pos)
                    closing = (
                        label_memo.get(buf[pos:gt]) if gt >= 0 else None
                    )
                    if closing is not None:
                        entry = stack.pop()
                        if closing != entry[0]:
                            raise fail(
                                f"mismatched close tag </{closing}> "
                                f"for <{entry[0]}>",
                                gt,
                            )
                        pos = gt + 1
                    else:
                        closing = scan_name()
                        entry = stack.pop()
                        if closing != entry[0]:
                            raise fail(
                                f"mismatched close tag </{closing}> "
                                f"for <{entry[0]}>",
                                pos,
                            )
                        skip_ws()
                        expect_gt()
                    if entry[2] and entry[1]:
                        raise fail(
                            f"element <{entry[0]}> mixes character data "
                            "with child elements",
                            pos,
                        )
                    append((END, closing))
                elif nxt == _BANG and buf.startswith(b"<!--", pos):
                    pos += 4
                    read_until(b"-->", False)
                elif nxt == _BANG and buf.startswith(b"<![CDATA[", pos):
                    pos += 9
                    raw = read_until(b"]]>", True)
                    if raw:
                        data = raw.decode("utf-8", "surrogatepass")
                        if data.strip():
                            stack[-1][2] = True
                        append((TEXT, data))
                elif nxt == _QMARK:
                    pos += 2
                    read_until(b"?>", False)
                else:
                    stack[-1][1] = True
                    label, attributes, closed = read_start_tag()
                    append((START, label))
                    for name, value in attributes:
                        append((ATTR, name, value))
                    if closed:
                        append((END, label))
                    else:
                        stack.append([label, bool(attributes), False])
            else:
                found = buf.find(b"<", pos)
                while found < 0:
                    rel = len(buf) - pos
                    if not pull():
                        break
                    found = buf.find(b"<", pos + rel)
                if found < 0:
                    raise fail(f"unterminated element <{stack[-1][0]}>", pos)
                raw = buf[pos:found]
                pos = found
                run = raw.decode("utf-8", "surrogatepass")
                if run.strip():
                    stack[-1][2] = True
                append((TEXT, _decode_entities(run) if _AMP in raw else run))

        skip_misc()
        ensure(1)
        if pos < len(buf):
            raise fail("trailing content after root element", pos)
    except XMLParseError:
        # Deliver every event scanned before the error, then re-raise on
        # the consumer's next pull — the flattened stream shows the same
        # prefix-then-error behavior as per-event emission.
        if out:
            yield out
        raise
    if out:
        yield out


# -- the character-scan oracle ------------------------------------------------


class _StreamCursor:
    """Scan state over a chunked string input with on-demand refill.

    The same surface as the tree parser's ``_Cursor`` (``peek`` /
    ``startswith`` / ``expect`` / ``read_until`` / ``read_name``), but
    every lookahead that runs off the buffered suffix pulls the next
    chunk first.  ``offset`` converts buffer positions to absolute
    document offsets so errors match the whole-string parser.

    This cursor backs :func:`iter_events_str`, the character-level
    parity oracle of the production byte tokenizer.
    """

    __slots__ = ("buffer", "pos", "offset", "_chunks", "_exhausted")

    def __init__(self, chunks: Iterator[str]) -> None:
        self.buffer = ""
        self.pos = 0
        #: Absolute document offset of ``buffer[0]``.
        self.offset = 0
        self._chunks = chunks
        self._exhausted = False

    # -- buffer management -------------------------------------------------

    def _pull(self) -> bool:
        """Append the next chunk; False once the source is exhausted."""
        if self._exhausted:
            return False
        for chunk in self._chunks:
            if chunk:
                self.buffer += chunk
                return True
        self._exhausted = True
        return False

    def _ensure(self, length: int) -> None:
        """Buffer at least ``length`` characters past ``pos`` if possible."""
        while len(self.buffer) - self.pos < length and self._pull():
            pass

    def compact(self) -> None:
        """Drop the consumed prefix when it grows past the threshold."""
        if self.pos > _COMPACT_THRESHOLD:
            self.offset += self.pos
            self.buffer = self.buffer[self.pos :]
            self.pos = 0

    def tell(self) -> int:
        """The absolute document offset of the scan position."""
        return self.offset + self.pos

    # -- the lexer surface -------------------------------------------------

    def eof(self) -> bool:
        self._ensure(1)
        return self.pos >= len(self.buffer)

    def peek(self) -> str:
        self._ensure(1)
        return self.buffer[self.pos] if self.pos < len(self.buffer) else ""

    def startswith(self, token: str) -> bool:
        self._ensure(len(token))
        return self.buffer.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise XMLParseError(f"expected {token!r}", self.tell())
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while True:
            buffer = self.buffer
            size = len(buffer)
            while self.pos < size and buffer[self.pos].isspace():
                self.pos += 1
            if self.pos < size or not self._pull():
                return

    def read_until(self, token: str) -> str:
        """Consume through ``token``, returning the text before it."""
        while True:
            end = self.buffer.find(token, self.pos)
            if end >= 0:
                chunk = self.buffer[self.pos : end]
                self.pos = end + len(token)
                return chunk
            if not self._pull():
                raise XMLParseError(
                    f"unterminated section, expected {token!r}", self.tell()
                )

    def read_text_run(self) -> str:
        """Consume character data up to (not including) the next ``<``.

        Returns an empty string — without consuming anything — when EOF
        arrives before any markup, so the caller can raise its
        contextual unterminated-element error at the run's offset.
        """
        while True:
            end = self.buffer.find("<", self.pos)
            if end >= 0:
                chunk = self.buffer[self.pos : end]
                self.pos = end
                return chunk
            if not self._pull():
                return ""

    def read_name(self) -> str:
        start = self.pos
        while True:
            buffer = self.buffer
            size = len(buffer)
            while self.pos < size and (
                buffer[self.pos].isalnum() or buffer[self.pos] in "_-.:@"
            ):
                self.pos += 1
            if self.pos < size or not self._pull():
                break
        if self.pos == start:
            raise XMLParseError("expected a name", self.tell())
        return self.buffer[start : self.pos]


def _str_chunk_iterator(source: EventSource, chunk_size: int) -> Iterator[str]:
    """Normalize any supported source into an iterator of string chunks."""
    if isinstance(source, str):
        return iter((source,))
    if isinstance(source, bytes):
        return iter((source.decode("utf-8", "surrogatepass"),))
    read = getattr(source, "read", None)
    if callable(read):

        def _file_chunks() -> Iterator[str]:
            while True:
                chunk = read(chunk_size)
                if not chunk:
                    return
                if isinstance(chunk, bytes):
                    chunk = chunk.decode("utf-8", "surrogatepass")
                yield chunk

        return _file_chunks()

    def _decoded(chunks) -> Iterator[str]:
        for chunk in chunks:
            if isinstance(chunk, bytes):
                chunk = chunk.decode("utf-8", "surrogatepass")
            yield chunk

    return _decoded(source)


def _skip_misc(cursor: _StreamCursor) -> None:
    """Skip whitespace, comments, processing instructions, and doctypes."""
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->")
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>")
        elif cursor.startswith("<!DOCTYPE"):
            cursor.read_until(">")
        else:
            return


def _read_start_tag(
    cursor: _StreamCursor,
) -> Tuple[str, List[Tuple[str, str]], bool]:
    """Scan one start tag: ``(label, attributes, self_closed)``.

    Attributes are deduplicated exactly as the tree parser's dict
    accumulation does: a repeated name keeps its first position with the
    last value.
    """
    cursor.expect("<")
    label = cursor.read_name()
    names: List[str] = []
    values = {}
    while True:
        cursor.skip_whitespace()
        char = cursor.peek()
        if char in (">", "/", ""):
            break
        name = cursor.read_name()
        cursor.skip_whitespace()
        cursor.expect("=")
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise XMLParseError("attribute value must be quoted", cursor.tell())
        cursor.pos += 1
        if name not in values:
            names.append(name)
        values[name] = _decode_entities(cursor.read_until(quote))
    cursor.skip_whitespace()
    if cursor.startswith("/>"):
        cursor.pos += 2
        return label, [(name, values[name]) for name in names], True
    cursor.expect(">")
    return label, [(name, values[name]) for name in names], False


def iter_events_str(
    source: EventSource, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[XMLEvent]:
    """Tokenize with the original character scanner (the parity oracle).

    Same contract as :func:`iter_events` — identical event streams,
    identical errors at identical offsets — implemented over ``str``
    buffers.  The production path is the byte scanner; this one is kept
    for the differential harness's tokenizer round and for tests.
    """
    cursor = _StreamCursor(_str_chunk_iterator(source, chunk_size))
    _skip_misc(cursor)
    if cursor.peek() != "<":
        raise XMLParseError("document has no root element", cursor.tell())

    # Per open element: [label, saw a child element or attribute, saw
    # non-whitespace character data].  The flags drive the mixed-content
    # rule the tree parser applies at element close.
    stack: List[List] = []

    label, attributes, closed = _read_start_tag(cursor)
    yield (START, label)
    for name, value in attributes:
        yield (ATTR, name, value)
    if closed:
        yield (END, label)
    else:
        stack.append([label, bool(attributes), False])

    while stack:
        cursor.compact()
        if cursor.startswith("</"):
            cursor.pos += 2
            closing = cursor.read_name()
            entry = stack.pop()
            if closing != entry[0]:
                raise XMLParseError(
                    f"mismatched close tag </{closing}> for <{entry[0]}>",
                    cursor.tell(),
                )
            cursor.skip_whitespace()
            cursor.expect(">")
            if entry[2] and entry[1]:
                raise XMLParseError(
                    f"element <{entry[0]}> mixes character data with child "
                    "elements",
                    cursor.tell(),
                )
            yield (END, closing)
        elif cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->")
        elif cursor.startswith("<![CDATA["):
            cursor.pos += 9
            data = cursor.read_until("]]>")
            if data:
                if data.strip():
                    stack[-1][2] = True
                yield (TEXT, data)
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>")
        elif cursor.peek() == "<":
            stack[-1][1] = True
            label, attributes, closed = _read_start_tag(cursor)
            yield (START, label)
            for name, value in attributes:
                yield (ATTR, name, value)
            if closed:
                yield (END, label)
            else:
                stack.append([label, bool(attributes), False])
        else:
            if cursor.eof():
                raise XMLParseError(
                    f"unterminated element <{stack[-1][0]}>", cursor.tell()
                )
            run = cursor.read_text_run()
            if not run:
                raise XMLParseError(
                    f"unterminated element <{stack[-1][0]}>", cursor.tell()
                )
            if run.strip():
                stack[-1][2] = True
            yield (TEXT, _decode_entities(run))

    _skip_misc(cursor)
    if not cursor.eof():
        raise XMLParseError("trailing content after root element", cursor.tell())

"""Label-path utilities shared across the library.

A *label path* is the root-to-element sequence of tags.  Experiment
configurations name the paths that carry value summaries; a path entry
may use the ``"*"`` wildcard for a single segment (e.g. one pattern
covering XMark's six region elements).
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: A root-to-element label path (or pattern, when segments include "*").
LabelPath = Tuple[str, ...]

#: The single-segment wildcard usable in label-path patterns.
WILDCARD_SEGMENT = "*"


def path_matches(path: LabelPath, pattern: LabelPath) -> bool:
    """Whether a concrete label path matches a pattern.

    Matching is segment-wise and length-strict; a ``*`` pattern segment
    matches any single label.
    """
    if len(path) != len(pattern):
        return False
    return all(
        expected == WILDCARD_SEGMENT or expected == segment
        for segment, expected in zip(path, pattern)
    )


def matches_any(path: LabelPath, patterns: Iterable[LabelPath]) -> bool:
    """Whether ``path`` matches at least one of ``patterns``."""
    return any(path_matches(path, pattern) for pattern in patterns)

"""A struct-of-arrays columnar encoding of an XML document.

:class:`ColumnarDocument` stores one document as parallel preorder
columns instead of one Python object per element:

* ``labels`` — interned label ids into ``label_table``;
* ``parent`` / ``first_child`` / ``next_sibling`` — ``array('i')``
  structure columns encoding the tree (-1 is the null link), which make
  both parent-chasing and subtree scans cache-friendly array walks;
* ``post`` / ``level`` — post-order ranks and root-distance depths,
  completing the *pre/post/level* interval encoding of the XPath
  accelerator: together with the implicit preorder index they make
  descendant-or-self a pair of integer comparisons (``a <= d`` and
  ``post[d] <= post[a]``), which the interval join engine of
  :mod:`repro.query.interval` exploits for exact twig evaluation;
* ``path_ids`` — interned root-to-element label-path ids; the path table
  itself is columnar (``path_parent`` / ``path_label``), so a document
  with millions of elements stores each distinct path once;
* ``value_kind`` / ``value_ref`` — per-element value type codes and
  references into the typed value stores (``array('q')`` numerics with
  an overflow dict for big ints, a string list, and a term store that
  interns every distinct text term once in ``term_table`` and keeps
  per-element term-id runs in first-occurrence order).

Documents are built in one pass from the event stream of
:mod:`repro.xmltree.events` (:func:`ingest_string` / :func:`ingest_file`
— the streaming path never materializes the source or a node tree), or
converted from/to the object model with :func:`freeze` and
:func:`thaw`.  :class:`ColumnarCursor` offers object-like navigation
over the columns for callers that need it.

Typing semantics are identical to the tree parser: attributes become
``@name`` children with raw STRING values, and element character data
flows through the same ``_typed_value`` heuristic — so
``thaw(ingest_string(x))`` equals ``parse_string(x)`` element for
element, which ``tests/test_columnar.py`` pins down.
"""

from __future__ import annotations

from array import array
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.xmltree.events import (
    ATTR,
    DEFAULT_CHUNK_SIZE,
    END,
    START,
    TEXT,
    XMLEvent,
    iter_events,
)
from repro.xmltree.parser import (
    DEFAULT_TEXT_WORD_THRESHOLD,
    TypeKey,
    _typed_value,
)
from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ElementValue, ValueType, tokenize_text_ordered

#: ``value_kind`` codes, aligned with :data:`KIND_TO_TYPE`.
KIND_NULL = 0
KIND_NUMERIC = 1
KIND_STRING = 2
KIND_TEXT = 3

#: kind code -> :class:`ValueType` (position-aligned).
KIND_TO_TYPE = (
    ValueType.NULL,
    ValueType.NUMERIC,
    ValueType.STRING,
    ValueType.TEXT,
)

#: :class:`ValueType` -> kind code.
TYPE_TO_KIND = {vtype: kind for kind, vtype in enumerate(KIND_TO_TYPE)}

#: Signed 64-bit bounds of the ``array('q')`` numeric column; values
#: outside it go to the overflow dict (Python ints are unbounded).
_Q_MIN = -(1 << 63)
_Q_MAX = (1 << 63) - 1


class ColumnarDocument:
    """One XML document as parallel preorder columns (see module doc)."""

    __slots__ = (
        "label_table",
        "label_index",
        "labels",
        "parent",
        "first_child",
        "next_sibling",
        "post",
        "level",
        "_subtree_ends",
        "_label_positions",
        "path_ids",
        "path_parent",
        "path_label",
        "_path_tuples",
        "value_kind",
        "value_ref",
        "numeric_values",
        "numeric_overflow",
        "string_values",
        "text_values",
        "term_table",
        "term_index",
    )

    def __init__(self) -> None:
        #: Distinct labels in first-occurrence order; ``labels`` indexes it.
        self.label_table: List[str] = []
        self.label_index: Dict[str, int] = {}
        self.labels = array("i")
        self.parent = array("i")
        self.first_child = array("i")
        self.next_sibling = array("i")
        #: Post-order rank and root-distance depth per element.  With the
        #: implicit preorder index these form the pre/post/level interval
        #: encoding: ``d`` is in the subtree of ``a`` iff ``a <= d`` and
        #: ``post[d] <= post[a]``.
        self.post = array("i")
        self.level = array("i")
        #: Lazily built interval-join indexes (immutable documents only).
        self._subtree_ends: Optional[array] = None
        self._label_positions: Optional[List[array]] = None
        #: Per-element interned path ids; the path table is itself
        #: columnar: ``path_parent[p]`` is the path id of the prefix and
        #: ``path_label[p]`` the last label id (-1 parent for roots).
        self.path_ids = array("i")
        self.path_parent = array("i")
        self.path_label = array("i")
        self._path_tuples: Dict[int, Tuple[str, ...]] = {}
        self.value_kind = array("b")
        self.value_ref = array("i")
        self.numeric_values = array("q")
        self.numeric_overflow: Dict[int, int] = {}
        self.string_values: List[str] = []
        #: Per-TEXT-element term sets.  Streamed values are stored as
        #: term-id tuples in first-occurrence order (ids into
        #: ``term_table``, one string per distinct term document-wide);
        #: frozen values keep their original frozensets verbatim, since
        #: their construction order is no longer recoverable and term-id
        #: interning downstream is sensitive to set layout.
        self.text_values: List = []
        self.term_table: List[str] = []
        self.term_index: Dict[str, int] = {}

    # -- interning ---------------------------------------------------------

    def _label_id(self, label: str) -> int:
        lid = self.label_index.get(label)
        if lid is None:
            lid = len(self.label_table)
            self.label_index[label] = lid
            self.label_table.append(label)
        return lid

    # -- per-element accessors ---------------------------------------------

    def __len__(self) -> int:
        return len(self.labels)

    def label(self, index: int) -> str:
        """The tag of element ``index``."""
        return self.label_table[self.labels[index]]

    def value_type(self, index: int) -> ValueType:
        """The :class:`ValueType` of element ``index``."""
        return KIND_TO_TYPE[self.value_kind[index]]

    def value(self, index: int) -> ElementValue:
        """The typed value of element ``index`` (``None`` when NULL)."""
        kind = self.value_kind[index]
        if kind == KIND_NULL:
            return None
        ref = self.value_ref[index]
        if kind == KIND_NUMERIC:
            overflow = self.numeric_overflow.get(ref)
            return overflow if overflow is not None else self.numeric_values[ref]
        if kind == KIND_STRING:
            return self.string_values[ref]
        stored = self.text_values[ref]
        if type(stored) is not tuple:
            return stored
        # Rebuild through the same set-insertion sequence tokenize_text
        # used, so the frozenset layout (and thus downstream term-id
        # interning order) matches the object parser's bit for bit.
        table = self.term_table
        terms = set()
        for term_id in stored:
            terms.add(table[term_id])
        return frozenset(terms)

    def path_tuple(self, path_id: int) -> Tuple[str, ...]:
        """The label tuple of one interned path id (memoized)."""
        known = self._path_tuples.get(path_id)
        if known is not None:
            return known
        pending = []
        pid = path_id
        while pid >= 0 and pid not in self._path_tuples:
            pending.append(pid)
            pid = self.path_parent[pid]
        prefix = self._path_tuples[pid] if pid >= 0 else ()
        for pid in reversed(pending):
            prefix = prefix + (self.label_table[self.path_label[pid]],)
            self._path_tuples[pid] = prefix
        return self._path_tuples[path_id]

    def label_path(self, index: int) -> Tuple[str, ...]:
        """The root-to-element label path of element ``index``."""
        return self.path_tuple(self.path_ids[index])

    def children(self, index: int) -> Iterator[int]:
        """Child indexes of element ``index`` in document order."""
        child = self.first_child[index]
        while child >= 0:
            yield child
            child = self.next_sibling[child]

    def subtree_end(self, index: int) -> int:
        """One past the last preorder index of the subtree at ``index``.

        Preorder layout makes every subtree a contiguous index range:
        the subtree of ``index`` is exactly ``range(index,
        subtree_end(index))``.
        """
        sibling = self.next_sibling[index]
        if sibling >= 0:
            return sibling
        node = self.parent[index]
        while node >= 0:
            sibling = self.next_sibling[node]
            if sibling >= 0:
                return sibling
            node = self.parent[node]
        return len(self.labels)

    def is_descendant(self, index: int, ancestor: int) -> bool:
        """Whether ``index`` lies in the proper subtree of ``ancestor``.

        Two integer comparisons over the pre/post encoding — no pointer
        chasing, O(1).
        """
        return ancestor < index and self.post[index] < self.post[ancestor]

    def subtree_ends(self) -> array:
        """The cached subtree-end column: ``ends[i]`` is one past the
        last preorder index of the subtree at ``i``.

        The subtree of ``i`` is exactly ``range(i, ends[i])``, so
        bisecting a sorted preorder array against ``(i, ends[i])``
        yields the descendant window of ``i``.  Built once per document
        in a single stack pass over the ``level`` column; documents are
        immutable after construction, so the cache never invalidates.
        """
        ends = self._subtree_ends
        if ends is None:
            count = len(self.labels)
            ends = array("i", [count]) * count if count else array("i")
            level = self.level
            stack: List[int] = []
            for index in range(count):
                depth = level[index]
                while stack and level[stack[-1]] >= depth:
                    ends[stack.pop()] = index
                stack.append(index)
            # Whatever remains open runs to the end of the document and
            # keeps the initialized value ``count``.
            self._subtree_ends = ends
        return ends

    def label_positions(self) -> List[array]:
        """Per-label sorted preorder index arrays (cached).

        ``label_positions()[label_id]`` holds the preorder indexes of
        every element tagged ``label_table[label_id]``, ascending — the
        accelerator relation the interval join engine bisects its
        descendant windows into.  Built in one pass over ``labels``.
        """
        positions = self._label_positions
        if positions is None:
            positions = [array("i") for _ in self.label_table]
            appends = [column.append for column in positions]
            for index, label_id in enumerate(self.labels):
                appends[label_id](index)
            self._label_positions = positions
        return positions

    def cursor(self, index: int = 0) -> "ColumnarCursor":
        """An object-like navigator positioned on element ``index``."""
        return ColumnarCursor(self, index)

    # -- document-level helpers --------------------------------------------

    def value_paths(self) -> List[Tuple[str, ...]]:
        """Sorted distinct label paths of valued elements.

        Matches :meth:`repro.xmltree.tree.XMLTree.value_paths` on the
        equivalent object tree.
        """
        valued_pids = set()
        kinds = self.value_kind
        pids = self.path_ids
        for index in range(len(kinds)):
            if kinds[index] != KIND_NULL:
                valued_pids.add(pids[index])
        return sorted(self.path_tuple(pid) for pid in valued_pids)

    def nbytes(self) -> int:
        """Approximate resident bytes of the columns (diagnostics)."""
        total = 0
        for column in (
            self.labels,
            self.parent,
            self.first_child,
            self.next_sibling,
            self.post,
            self.level,
            self.path_ids,
            self.path_parent,
            self.path_label,
            self.value_kind,
            self.value_ref,
            self.numeric_values,
        ):
            total += len(column) * column.itemsize
        total += sum(len(text) for text in self.string_values)
        for terms in self.text_values:
            if type(terms) is tuple:
                total += 8 * len(terms)
            else:
                total += sum(len(term) for term in terms)
        total += sum(len(term) for term in self.term_table)
        total += sum(len(label) for label in self.label_table)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ColumnarDocument elements={len(self)} "
            f"labels={len(self.label_table)} paths={len(self.path_parent)}>"
        )


class ColumnarCursor:
    """Navigation over one :class:`ColumnarDocument` element."""

    __slots__ = ("doc", "index")

    def __init__(self, doc: ColumnarDocument, index: int) -> None:
        self.doc = doc
        self.index = index

    @property
    def label(self) -> str:
        return self.doc.label(self.index)

    @property
    def value(self) -> ElementValue:
        return self.doc.value(self.index)

    @property
    def value_type(self) -> ValueType:
        return self.doc.value_type(self.index)

    def label_path(self) -> Tuple[str, ...]:
        """The root-to-element sequence of labels."""
        return self.doc.label_path(self.index)

    def parent(self) -> Optional["ColumnarCursor"]:
        """A cursor on the parent element, or ``None`` at the root."""
        parent = self.doc.parent[self.index]
        return ColumnarCursor(self.doc, parent) if parent >= 0 else None

    def children(self) -> Iterator["ColumnarCursor"]:
        """Cursors on the child elements, in document order."""
        doc = self.doc
        for child in doc.children(self.index):
            yield ColumnarCursor(doc, child)

    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        return self.doc.level[self.index]

    def subtree_size(self) -> int:
        """Number of elements in the subtree rooted here (inclusive)."""
        return self.doc.subtree_end(self.index) - self.index

    def iter(self) -> Iterator["ColumnarCursor"]:
        """This element and all descendants, in preorder."""
        doc = self.doc
        for index in range(self.index, doc.subtree_end(self.index)):
            yield ColumnarCursor(doc, index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ColumnarCursor #{self.index} {self.label!r}>"


# -- construction ------------------------------------------------------------


def _store_value(doc: ColumnarDocument, index: int, value) -> None:
    """Place an already-typed value into the typed columns."""
    if value is None:
        return
    if isinstance(value, bool):
        raise TypeError("bool is not a supported XML element value")
    if isinstance(value, int):
        ref = len(doc.numeric_values)
        if _Q_MIN <= value <= _Q_MAX:
            doc.numeric_values.append(value)
        else:
            doc.numeric_values.append(0)
            doc.numeric_overflow[ref] = value
        doc.value_kind[index] = KIND_NUMERIC
        doc.value_ref[index] = ref
    elif isinstance(value, str):
        doc.value_kind[index] = KIND_STRING
        doc.value_ref[index] = len(doc.string_values)
        doc.string_values.append(value)
    elif isinstance(value, (set, frozenset)):
        # Kept verbatim (no id interning): reconstruction from ids is
        # only layout-safe when the original insertion order is known,
        # which it is not for an already-built set.
        doc.value_kind[index] = KIND_TEXT
        doc.value_ref[index] = len(doc.text_values)
        doc.text_values.append(frozenset(value))
    else:
        raise TypeError(
            f"unsupported element value type: {type(value).__name__}"
        )


def _store_text_terms(
    doc: ColumnarDocument, index: int, ordered_terms: List[str]
) -> None:
    """Store a streamed term set as interned ids, preserving order."""
    term_index = doc.term_index
    table = doc.term_table
    ids = []
    for term in ordered_terms:
        term_id = term_index.get(term)
        if term_id is None:
            term_id = len(table)
            term_index[term] = term_id
            table.append(term)
        ids.append(term_id)
    doc.value_kind[index] = KIND_TEXT
    doc.value_ref[index] = len(doc.text_values)
    doc.text_values.append(tuple(ids))


def _append_node(
    doc: ColumnarDocument,
    label_id: int,
    parent_index: int,
    last_child: array,
) -> int:
    """Append one element row, linking it into the structure columns."""
    index = len(doc.labels)
    doc.labels.append(label_id)
    doc.parent.append(parent_index)
    doc.first_child.append(-1)
    doc.next_sibling.append(-1)
    # Post-order ranks need the whole subtree; the builder backfills
    # them afterwards (:func:`_fill_postorder`).
    doc.post.append(-1)
    doc.level.append(doc.level[parent_index] + 1 if parent_index >= 0 else 0)
    doc.value_kind.append(KIND_NULL)
    doc.value_ref.append(-1)
    last_child.append(-1)
    if parent_index >= 0:
        previous = last_child[parent_index]
        if previous >= 0:
            doc.next_sibling[previous] = index
        else:
            doc.first_child[parent_index] = index
        last_child[parent_index] = index
    return index


def _intern_path(
    doc: ColumnarDocument, parent_path_id: int, label_id: int,
    path_index: Dict[Tuple[int, int], int],
) -> int:
    key = (parent_path_id, label_id)
    pid = path_index.get(key)
    if pid is None:
        pid = len(doc.path_parent)
        path_index[key] = pid
        doc.path_parent.append(parent_path_id)
        doc.path_label.append(label_id)
    return pid


def _fill_postorder(doc: ColumnarDocument) -> None:
    """Backfill the ``post`` column of a structurally complete document.

    :func:`from_events` assigns post-order ranks inline as elements
    close; tree-built documents (:func:`freeze`) only know the full
    structure after the walk, so ranks are derived here with an
    explicit-stack post-order traversal over the structure columns.
    The two routes are bit-identical — pinned by the freeze-vs-ingest
    column test.
    """
    if not len(doc.labels):
        return
    post = doc.post
    first_child = doc.first_child
    next_sibling = doc.next_sibling
    rank = 0
    #: (element, children already expanded?) frames.
    stack: List[Tuple[int, bool]] = [(0, False)]
    while stack:
        index, expanded = stack.pop()
        if expanded:
            post[index] = rank
            rank += 1
            continue
        stack.append((index, True))
        children = []
        child = first_child[index]
        while child >= 0:
            children.append(child)
            child = next_sibling[child]
        for child in reversed(children):
            stack.append((child, False))


def from_events(
    events: Iterable[XMLEvent],
    type_map: Optional[Mapping[TypeKey, ValueType]] = None,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
) -> ColumnarDocument:
    """Build a :class:`ColumnarDocument` from one tokenizer event stream.

    Consumes the stream in a single pass with O(depth) transient state;
    value typing applies the tree parser's exact heuristic (``type_map``
    and ``text_word_threshold`` have :func:`~repro.xmltree.parser.
    parse_string` semantics).

    This is the ingest hot loop: every column, intern table, and stack
    is bound to a local, and node/path appends are inlined rather than
    routed through :func:`_append_node` / :func:`_intern_path` (which
    remain the readable single-node reference used by :func:`freeze`).
    The stored columns are bit-identical either way — pinned by the
    freeze-vs-ingest equality test.
    """
    type_map = type_map or {}
    doc = ColumnarDocument()
    path_index: Dict[Tuple[int, int], int] = {}
    #: Per-element last-child index, for sibling linking during the pass.
    last_child = array("i")
    #: Open-element stacks: node index, path id, buffered text chunks.
    open_nodes: List[int] = []
    open_pids: List[int] = []
    open_text: List[List[str]] = []

    labels_col = doc.labels
    parent_col = doc.parent
    first_child = doc.first_child
    next_sibling = doc.next_sibling
    post_col = doc.post
    level_col = doc.level
    #: Next post-order rank; attributes close instantly, elements at END.
    post_rank = 0
    path_ids = doc.path_ids
    path_parent = doc.path_parent
    path_label = doc.path_label
    value_kind = doc.value_kind
    value_ref = doc.value_ref
    label_table = doc.label_table
    label_index = doc.label_index
    string_values = doc.string_values
    numeric_values = doc.numeric_values
    numeric_overflow = doc.numeric_overflow

    for event in events:
        kind = event[0]
        if kind is START or kind is ATTR or kind == START or kind == ATTR:
            if kind is START or kind == START:
                label = event[1]
                parent_index = open_nodes[-1] if open_nodes else -1
                parent_pid = open_pids[-1] if open_pids else -1
            else:
                # Attributes become @name children with raw STRING
                # values, exactly as the tree parser materializes them.
                label = "@" + event[1]
                parent_index = open_nodes[-1]
                parent_pid = open_pids[-1]
            label_id = label_index.get(label)
            if label_id is None:
                label_id = len(label_table)
                label_index[label] = label_id
                label_table.append(label)
            index = len(labels_col)
            labels_col.append(label_id)
            parent_col.append(parent_index)
            first_child.append(-1)
            next_sibling.append(-1)
            # Depth equals the open-element count for both kinds: a new
            # element is not yet on the stack, and an attribute hangs
            # off the stack top.
            level_col.append(len(open_nodes))
            value_kind.append(KIND_NULL)
            value_ref.append(-1)
            last_child.append(-1)
            if parent_index >= 0:
                previous = last_child[parent_index]
                if previous >= 0:
                    next_sibling[previous] = index
                else:
                    first_child[parent_index] = index
                last_child[parent_index] = index
            key = (parent_pid, label_id)
            pid = path_index.get(key)
            if pid is None:
                pid = len(path_parent)
                path_index[key] = pid
                path_parent.append(parent_pid)
                path_label.append(label_id)
            path_ids.append(pid)
            if kind is START or kind == START:
                post_col.append(-1)
                open_nodes.append(index)
                open_pids.append(pid)
                open_text.append([])
            else:
                # An attribute is a childless leaf: it closes the moment
                # it opens, so its post-order rank is assigned inline.
                post_col.append(post_rank)
                post_rank += 1
                value_kind[index] = KIND_STRING
                value_ref[index] = len(string_values)
                string_values.append(event[2])
        elif kind is END or kind == END:
            index = open_nodes.pop()
            post_col[index] = post_rank
            post_rank += 1
            pid = open_pids.pop()
            chunks = open_text.pop()
            if chunks:
                raw = chunks[0] if len(chunks) == 1 else "".join(chunks)
                stripped = raw.strip()
                if not stripped:
                    pass
                elif type_map:
                    # Forced types are rare enough to route through the
                    # parser's helper verbatim (it needs the path tuple).
                    typed = _typed_value(
                        raw, doc.path_tuple(pid), type_map,
                        text_word_threshold,
                    )
                    if type(typed) is frozenset:
                        _store_text_terms(
                            doc, index, tokenize_text_ordered(raw)
                        )
                    elif typed is not None:
                        _store_value(doc, index, typed)
                else:
                    # ``_typed_value``'s default heuristic, inlined so
                    # TEXT values tokenize exactly once and no label-path
                    # tuple is materialized per valued element.
                    try:
                        number = int(stripped)
                    except ValueError:
                        if len(stripped.split()) >= text_word_threshold:
                            _store_text_terms(
                                doc, index, tokenize_text_ordered(raw)
                            )
                        else:
                            value_kind[index] = KIND_STRING
                            value_ref[index] = len(string_values)
                            string_values.append(stripped)
                    else:
                        ref = len(numeric_values)
                        if _Q_MIN <= number <= _Q_MAX:
                            numeric_values.append(number)
                        else:
                            numeric_values.append(0)
                            numeric_overflow[ref] = number
                        value_kind[index] = KIND_NUMERIC
                        value_ref[index] = ref
        elif kind is TEXT or kind == TEXT:
            open_text[-1].append(event[1])
        else:  # pragma: no cover - the tokenizer emits no other kinds
            raise ValueError(f"unknown event kind {kind!r}")
    return doc


def ingest_string(
    text: str,
    type_map: Optional[Mapping[TypeKey, ValueType]] = None,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
) -> ColumnarDocument:
    """Tokenize and columnarize an XML document held in memory."""
    return from_events(iter_events(text), type_map, text_word_threshold)


def _newline_normalized(chunks) -> Iterator[bytes]:
    """Apply universal-newline translation to a byte-chunk stream.

    ``parse_document`` reads its file in text mode, which maps ``\\r\\n``
    and lone ``\\r`` to ``\\n``; the streaming path reads raw bytes for
    speed, so the same translation happens here (two C-level replaces
    per chunk, with a one-byte carry for a ``\\r`` on a chunk edge) to
    keep byte-for-byte input parity between the substrates.
    """
    pending_cr = False
    for chunk in chunks:
        if pending_cr:
            chunk = b"\r" + chunk
        pending_cr = chunk.endswith(b"\r")
        if pending_cr:
            chunk = chunk[:-1]
        chunk = chunk.replace(b"\r\n", b"\n").replace(b"\r", b"\n")
        if chunk:
            yield chunk
    if pending_cr:
        yield b"\n"


def ingest_file(
    path: str,
    type_map: Optional[Mapping[TypeKey, ValueType]] = None,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ColumnarDocument:
    """Stream an XML file from disk into a :class:`ColumnarDocument`.

    Unlike :func:`repro.xmltree.parser.parse_document`, the source is
    never fully resident: the tokenizer holds one bounded window of the
    file while the columns grow.  The file is read in binary mode —
    the byte tokenizer never decodes markup — with universal-newline
    translation matching the object parser's text-mode read.
    """
    with open(path, "rb") as handle:

        def _chunks() -> Iterator[bytes]:
            while True:
                chunk = handle.read(chunk_size)
                if not chunk:
                    return
                yield chunk

        return from_events(
            iter_events(_newline_normalized(_chunks())),
            type_map,
            text_word_threshold,
        )


# -- object-model adapters ----------------------------------------------------


def freeze(tree: XMLTree) -> ColumnarDocument:
    """Encode an object :class:`XMLTree` into columnar form.

    Values are already typed on the tree, so they are stored as-is (no
    re-typing); the preorder of the columns matches ``tree.root.iter()``.
    """
    doc = ColumnarDocument()
    path_index: Dict[Tuple[int, int], int] = {}
    last_child = array("i")
    stack: List[Tuple[XMLElement, int, int]] = [(tree.root, -1, -1)]
    while stack:
        element, parent_index, parent_pid = stack.pop()
        label_id = doc._label_id(element.label)
        index = _append_node(doc, label_id, parent_index, last_child)
        pid = _intern_path(doc, parent_pid, label_id, path_index)
        doc.path_ids.append(pid)
        _store_value(doc, index, element.value)
        for child in reversed(element.children):
            stack.append((child, index, pid))
    _fill_postorder(doc)
    return doc


def thaw(doc: ColumnarDocument) -> XMLTree:
    """Materialize the object :class:`XMLTree` of a columnar document."""
    if not len(doc):
        raise ValueError("cannot thaw an empty ColumnarDocument")
    elements: List[XMLElement] = []
    parent_column = doc.parent
    for index in range(len(doc)):
        element = XMLElement(doc.label(index), doc.value(index))
        parent_index = parent_column[index]
        if parent_index >= 0:
            elements[parent_index].append_child(element)
        elements.append(element)
    return XMLTree(elements[0])

"""Twig query model: AST, XPath-subset parser, predicates, exact evaluation.

Twig queries (paper Section 2) are node- and edge-labeled trees.  Each
node is a query variable; each edge carries an XPath expression over the
child/descendant axes with optional wildcards; value predicates —
numeric ranges, ``contains`` substring matches, and ``ftcontains`` keyword
matches — attach to query nodes.  :mod:`repro.query.evaluator` computes a
query's *exact* selectivity (its number of binding tuples) over a
document, which serves as ground truth for every error measurement in the
experiments.
"""

from repro.query.predicates import (
    AtLeastKPredicate,
    KeywordPredicate,
    Predicate,
    RangePredicate,
    SubstringPredicate,
    TruePredicate,
)
from repro.query.ast import AxisStep, EdgePath, QueryNode, TwigQuery
from repro.query.xpath import XPathSyntaxError, parse_edge_path, parse_twig
from repro.query.jsonast import (
    QueryFormatError,
    predicate_from_dict,
    predicate_to_dict,
    twig_from_dict,
    twig_to_dict,
)
from repro.query.evaluator import evaluate_selectivity, match_elements

__all__ = [
    "Predicate",
    "TruePredicate",
    "RangePredicate",
    "SubstringPredicate",
    "KeywordPredicate",
    "AtLeastKPredicate",
    "AxisStep",
    "EdgePath",
    "QueryNode",
    "TwigQuery",
    "XPathSyntaxError",
    "parse_edge_path",
    "parse_twig",
    "QueryFormatError",
    "twig_to_dict",
    "twig_from_dict",
    "predicate_to_dict",
    "predicate_from_dict",
    "evaluate_selectivity",
    "match_elements",
]

"""Value predicates for twig queries (paper Section 2, "Query Model").

Three predicate classes mirror the three value types:

* :class:`RangePredicate` — ``[l, h]`` ranges over NUMERIC values;
* :class:`SubstringPredicate` — ``contains(qs)`` over STRING values (the
  SQL ``LIKE '%qs%'`` semantics);
* :class:`KeywordPredicate` — ``ftcontains(t1, ..., tk)`` exact term
  matches over TEXT values under the Boolean IR model.

:class:`TruePredicate` is the trivial always-true predicate used for
query nodes without a value constraint and for NULL-typed synopsis nodes
in the Δ metric.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.xmltree.types import ElementValue, ValueType


class Predicate:
    """Base class for value predicates.

    A predicate knows which :class:`ValueType` it applies to and can test
    a concrete element value.  Subclasses must be immutable and hashable
    so they can serve as atomic predicates in the Δ metric's error sums.
    """

    #: The value type this predicate constrains.
    value_type: ValueType = ValueType.NULL

    def matches(self, value: ElementValue) -> bool:
        """Whether a concrete element value satisfies this predicate."""
        raise NotImplementedError

    def applicable_to(self, value_type: ValueType) -> bool:
        """Whether this predicate can be evaluated on elements of ``value_type``."""
        return self.value_type is value_type


class TruePredicate(Predicate):
    """The always-true predicate (no value constraint)."""

    value_type = ValueType.NULL

    def matches(self, value: ElementValue) -> bool:
        return True

    def applicable_to(self, value_type: ValueType) -> bool:
        return True

    def __repr__(self) -> str:
        return "TruePredicate()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash(TruePredicate)


class RangePredicate(Predicate):
    """A NUMERIC range predicate ``[low, high]`` (both bounds inclusive)."""

    value_type = ValueType.NUMERIC

    #: Sentinel bounds used when one side of the range is open
    #: (``year > 2000`` parses to ``[2001, UNBOUNDED_HIGH]``).
    UNBOUNDED_LOW = -(2**62)
    UNBOUNDED_HIGH = 2**62

    __slots__ = ("low", "high")

    def __init__(self, low: int = None, high: int = None) -> None:
        self.low = self.UNBOUNDED_LOW if low is None else low
        self.high = self.UNBOUNDED_HIGH if high is None else high
        if self.low > self.high:
            raise ValueError(f"empty range [{self.low}, {self.high}]")

    def matches(self, value: ElementValue) -> bool:
        return isinstance(value, int) and self.low <= value <= self.high

    def __repr__(self) -> str:
        return f"RangePredicate({self.low}, {self.high})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePredicate)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self) -> int:
        return hash((RangePredicate, self.low, self.high))


class SubstringPredicate(Predicate):
    """A STRING predicate ``contains(needle)``.

    Matching is case-sensitive, mirroring SQL ``LIKE``; dataset generators
    emit consistently-cased strings so workloads remain meaningful.
    """

    value_type = ValueType.STRING

    __slots__ = ("needle",)

    def __init__(self, needle: str) -> None:
        if not needle:
            raise ValueError("substring predicate needs a non-empty needle")
        self.needle = needle

    def matches(self, value: ElementValue) -> bool:
        return isinstance(value, str) and self.needle in value

    def __repr__(self) -> str:
        return f"SubstringPredicate({self.needle!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubstringPredicate) and self.needle == other.needle

    def __hash__(self) -> int:
        return hash((SubstringPredicate, self.needle))


class AtLeastKPredicate(Predicate):
    """A Boolean-model set-similarity predicate: ``>= k`` of ``m`` terms.

    The paper notes (§2) that its techniques "can also handle other
    Boolean-model predicates, such as set-theoretic notions of
    document-similarity"; matching at least ``k`` of a probe term set is
    the canonical such notion (a thresholded overlap).  ``k = m``
    degenerates to :class:`KeywordPredicate`; ``k = 1`` is Boolean OR.
    """

    value_type = ValueType.TEXT

    __slots__ = ("terms", "threshold")

    def __init__(self, terms: Iterable[str], threshold: int) -> None:
        term_set = frozenset(term.lower() for term in terms)
        if not term_set or not all(term_set):
            raise ValueError("similarity predicate needs non-empty terms")
        if not 1 <= threshold <= len(term_set):
            raise ValueError(
                f"threshold must be in [1, {len(term_set)}], got {threshold}"
            )
        self.terms: FrozenSet[str] = term_set
        self.threshold = threshold

    def matches(self, value: ElementValue) -> bool:
        if not isinstance(value, frozenset):
            return False
        return len(self.terms & value) >= self.threshold

    def sorted_terms(self) -> Tuple[str, ...]:
        """Terms in deterministic order (for display and hashing)."""
        return tuple(sorted(self.terms))

    def __repr__(self) -> str:
        return f"AtLeastKPredicate({self.sorted_terms()!r}, k={self.threshold})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AtLeastKPredicate)
            and self.terms == other.terms
            and self.threshold == other.threshold
        )

    def __hash__(self) -> int:
        return hash((AtLeastKPredicate, self.terms, self.threshold))


class KeywordPredicate(Predicate):
    """A TEXT predicate ``ftcontains(t1, ..., tk)``: all terms must occur."""

    value_type = ValueType.TEXT

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[str]) -> None:
        term_set = frozenset(term.lower() for term in terms)
        if not term_set:
            raise ValueError("keyword predicate needs at least one term")
        if not all(term for term in term_set):
            raise ValueError("keyword predicate terms must be non-empty")
        self.terms: FrozenSet[str] = term_set

    def matches(self, value: ElementValue) -> bool:
        return isinstance(value, frozenset) and self.terms <= value

    def sorted_terms(self) -> Tuple[str, ...]:
        """Terms in deterministic order (for display and hashing)."""
        return tuple(sorted(self.terms))

    def __repr__(self) -> str:
        return f"KeywordPredicate({self.sorted_terms()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KeywordPredicate) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash((KeywordPredicate, self.terms))

"""The twig-query abstract syntax tree (paper Section 2, Figure 2).

A twig query ``Q(V_Q, E_Q)`` is a tree of *query variables*.  The root
variable ``q0`` always maps to the (virtual) document root; every other
variable is connected to its parent by an :class:`EdgePath` — an XPath
expression over the child (``/``) and descendant (``//``) axes with
optional ``*`` wildcards — and may carry a value :class:`Predicate`.

The selectivity ``s(Q)`` of a twig is the number of *binding tuples*:
complete assignments of document elements to all query variables that
satisfy every structural and value constraint.  Branches therefore
contribute multiplicatively (as in the paper's worked example of Section
5), not existentially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.query.predicates import Predicate, TruePredicate

#: The wildcard name test, matching any element label.
WILDCARD = "*"


@dataclass(frozen=True)
class AxisStep:
    """One location step: an axis plus a name test.

    Attributes:
        axis: ``"child"`` or ``"descendant"``.
        label: a tag name, or :data:`WILDCARD`.
    """

    axis: str
    label: str

    def __post_init__(self) -> None:
        if self.axis not in ("child", "descendant"):
            raise ValueError(f"unknown axis {self.axis!r}")
        if not self.label:
            raise ValueError("step label must be non-empty (use '*' for wildcard)")

    @property
    def is_wildcard(self) -> bool:
        return self.label == WILDCARD

    def matches_label(self, label: str) -> bool:
        """Whether this step's name test accepts ``label``."""
        return self.is_wildcard or self.label == label

    def __str__(self) -> str:
        separator = "/" if self.axis == "child" else "//"
        return f"{separator}{self.label}"


@dataclass(frozen=True)
class EdgePath:
    """An XPath expression labeling one twig edge: a chain of steps."""

    steps: Tuple[AxisStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("an edge path needs at least one step")

    @property
    def target_label(self) -> str:
        """The name test of the final step (the bound variable's label)."""
        return self.steps[-1].label

    def __str__(self) -> str:
        return "." + "".join(str(step) for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


class QueryNode:
    """One query variable: incoming edge path, value predicate, children."""

    __slots__ = ("name", "edge", "predicate", "children")

    def __init__(
        self,
        name: str,
        edge: Optional[EdgePath] = None,
        predicate: Optional[Predicate] = None,
    ) -> None:
        self.name = name
        self.edge = edge
        self.predicate: Predicate = predicate if predicate is not None else TruePredicate()
        self.children: List[QueryNode] = []

    def add_child(self, child: "QueryNode") -> "QueryNode":
        """Attach a child variable (which must carry an edge path)."""
        if child.edge is None:
            raise ValueError("non-root query nodes need an edge path")
        self.children.append(child)
        return child

    @property
    def has_value_predicate(self) -> bool:
        return not isinstance(self.predicate, TruePredicate)

    def iter(self) -> Iterator["QueryNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edge = str(self.edge) if self.edge else "(root)"
        return f"<QueryNode {self.name} edge={edge} children={len(self.children)}>"


class TwigQuery:
    """A whole twig query, rooted at the virtual document-root variable."""

    def __init__(self, root: Optional[QueryNode] = None) -> None:
        self.root = root if root is not None else QueryNode("q0")
        if self.root.edge is not None:
            raise ValueError("the twig root maps to the document root and has no edge")

    def nodes(self) -> List[QueryNode]:
        """All query variables in pre-order (root first)."""
        return list(self.root.iter())

    @property
    def variable_count(self) -> int:
        return len(self.nodes())

    @property
    def predicate_count(self) -> int:
        """Number of variables carrying a non-trivial value predicate."""
        return sum(1 for node in self.nodes() if node.has_value_predicate)

    @property
    def is_structural(self) -> bool:
        """True when the twig has no value predicates at all."""
        return self.predicate_count == 0

    def to_xpath(self) -> str:
        """Render the twig back to the bracketed XPath-like surface syntax."""
        return _render(self.root, is_root=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TwigQuery {self.to_xpath()}>"


def _render_arg(text: str) -> str:
    # The parser trims bare arguments and splits on delimiters, so a
    # needle with significant edge whitespace (or a delimiter char)
    # must render quoted to survive the round trip.
    if text == text.strip() and not any(c in text for c in ',()"\\'):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _render_predicate(predicate: Predicate) -> str:
    from repro.query.predicates import (
        AtLeastKPredicate,
        KeywordPredicate,
        RangePredicate,
        SubstringPredicate,
    )

    if isinstance(predicate, AtLeastKPredicate):
        terms = ", ".join(_render_arg(t) for t in predicate.sorted_terms())
        return f" ftatleast({predicate.threshold}, {terms})"

    if isinstance(predicate, RangePredicate):
        if predicate.low == RangePredicate.UNBOUNDED_LOW:
            return f" <= {predicate.high}"
        if predicate.high == RangePredicate.UNBOUNDED_HIGH:
            return f" >= {predicate.low}"
        return f" in [{predicate.low}, {predicate.high}]"
    if isinstance(predicate, SubstringPredicate):
        return f" contains({_render_arg(predicate.needle)})"
    if isinstance(predicate, KeywordPredicate):
        terms = ", ".join(_render_arg(t) for t in predicate.sorted_terms())
        return f" ftcontains({terms})"
    return ""


def _render(node: QueryNode, is_root: bool = False) -> str:
    # The parser appends branch children before the main-path child, so
    # the last child is the main continuation; rendering mirrors that,
    # making parse(render(q)) a fixpoint.
    pieces = []
    if not is_root:
        pieces.append("".join(str(step) for step in node.edge.steps))
        if node.has_value_predicate:
            pieces.append(f"[.{_render_predicate(node.predicate)}]")
    branches = node.children
    if is_root:
        if not branches:
            return "/"
        rendered = [_render(child) for child in branches]
        main = rendered[-1]
        prefix = "".join(f"[.{branch}]" for branch in rendered[:-1])
        # Root-level extra branches must attach to the first step of the
        # main path, so splice them after its first step's name test.
        return _splice_branches(main, prefix)
    if branches:
        rendered = [_render(child) for child in branches]
        for branch in rendered[:-1]:
            pieces.append(f"[.{branch}]")
        pieces.append(rendered[-1])
    return "".join(pieces)


def _splice_branches(main: str, branch_text: str) -> str:
    """Insert root-level branch brackets after the main path's first step."""
    if not branch_text:
        return main
    index = 0
    while index < len(main) and main[index] == "/":
        index += 1
    while index < len(main) and (main[index].isalnum() or main[index] in "_-@*"):
        index += 1
    return main[:index] + branch_text + main[index:]

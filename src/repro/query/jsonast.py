"""A JSON codec for twig queries (the daemon's structured wire format).

``repro serve`` accepts twigs either as XPath-subset text (parsed by
:mod:`repro.query.xpath`) or as an explicit JSON AST, which clients that
build queries programmatically prefer: no escaping rules, no surface
grammar, and branch/predicate structure is spelled out.

The encoding mirrors the AST one-to-one:

.. code-block:: json

    {"name": "q1",
     "edge": [["descendant", "item"], ["child", "name"]],
     "predicate": {"kind": "substring", "needle": "gold"},
     "children": [...]}

A :class:`TwigQuery` document is the root node object (no ``edge``).
``twig_from_dict(twig_to_dict(q))`` reproduces ``q`` exactly, including
predicate equality, so plan signatures — and therefore the daemon's
coalescing and cross-user cache keys — are identical for both wire
formats.  Malformed input raises :class:`QueryFormatError`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.query.ast import AxisStep, EdgePath, QueryNode, TwigQuery
from repro.query.predicates import (
    AtLeastKPredicate,
    KeywordPredicate,
    Predicate,
    RangePredicate,
    SubstringPredicate,
    TruePredicate,
)


class QueryFormatError(ValueError):
    """Raised when decoding a malformed JSON twig AST."""


def predicate_to_dict(predicate: Predicate) -> Optional[Dict[str, Any]]:
    """Encode a value predicate; ``None`` for the trivial predicate."""
    if isinstance(predicate, TruePredicate):
        return None
    if isinstance(predicate, RangePredicate):
        encoded: Dict[str, Any] = {"kind": "range"}
        if predicate.low != RangePredicate.UNBOUNDED_LOW:
            encoded["low"] = predicate.low
        if predicate.high != RangePredicate.UNBOUNDED_HIGH:
            encoded["high"] = predicate.high
        return encoded
    if isinstance(predicate, SubstringPredicate):
        return {"kind": "substring", "needle": predicate.needle}
    if isinstance(predicate, AtLeastKPredicate):
        return {
            "kind": "atleast",
            "terms": list(predicate.sorted_terms()),
            "threshold": predicate.threshold,
        }
    if isinstance(predicate, KeywordPredicate):
        return {"kind": "keyword", "terms": list(predicate.sorted_terms())}
    raise QueryFormatError(f"cannot encode predicate {type(predicate).__name__}")


def predicate_from_dict(data: Optional[Dict[str, Any]]) -> Predicate:
    """Decode a predicate object (``None`` → :class:`TruePredicate`)."""
    if data is None:
        return TruePredicate()
    if not isinstance(data, dict):
        raise QueryFormatError(f"predicate must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    try:
        if kind == "true":
            return TruePredicate()
        if kind == "range":
            low = data.get("low")
            high = data.get("high")
            if low is None and high is None:
                raise QueryFormatError("range predicate needs low and/or high")
            return RangePredicate(
                None if low is None else int(low),
                None if high is None else int(high),
            )
        if kind == "substring":
            return SubstringPredicate(str(data["needle"]))
        if kind == "keyword":
            return KeywordPredicate([str(term) for term in data["terms"]])
        if kind == "atleast":
            return AtLeastKPredicate(
                [str(term) for term in data["terms"]], int(data["threshold"])
            )
    except QueryFormatError:
        raise
    except (KeyError, TypeError, ValueError) as err:
        raise QueryFormatError(f"malformed {kind!r} predicate: {err}") from err
    raise QueryFormatError(f"unknown predicate kind {kind!r}")


def _edge_to_list(edge: EdgePath) -> List[List[str]]:
    return [[step.axis, step.label] for step in edge.steps]


def _edge_from_list(data: Any) -> EdgePath:
    if not isinstance(data, list) or not data:
        raise QueryFormatError("edge must be a non-empty list of [axis, label] steps")
    steps = []
    for step in data:
        if not isinstance(step, (list, tuple)) or len(step) != 2:
            raise QueryFormatError(f"malformed edge step {step!r}")
        axis, label = step
        try:
            steps.append(AxisStep(str(axis), str(label)))
        except ValueError as err:
            raise QueryFormatError(str(err)) from err
    return EdgePath(tuple(steps))


def _node_to_dict(node: QueryNode, is_root: bool) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {"name": node.name}
    if not is_root:
        encoded["edge"] = _edge_to_list(node.edge)
    predicate = predicate_to_dict(node.predicate)
    if predicate is not None:
        encoded["predicate"] = predicate
    if node.children:
        encoded["children"] = [
            _node_to_dict(child, is_root=False) for child in node.children
        ]
    return encoded


def _node_from_dict(data: Any, is_root: bool, depth: int = 0) -> QueryNode:
    if not isinstance(data, dict):
        raise QueryFormatError(f"query node must be an object, got {type(data).__name__}")
    if depth > 64:
        raise QueryFormatError("twig AST nested deeper than 64 levels")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise QueryFormatError("query node needs a non-empty string name")
    if is_root:
        if "edge" in data:
            raise QueryFormatError("the twig root has no edge")
        edge = None
    else:
        edge = _edge_from_list(data.get("edge"))
    node = QueryNode(name, edge, predicate_from_dict(data.get("predicate")))
    children = data.get("children", [])
    if not isinstance(children, list):
        raise QueryFormatError("children must be a list")
    for child in children:
        node.add_child(_node_from_dict(child, is_root=False, depth=depth + 1))
    return node


def twig_to_dict(query: TwigQuery) -> Dict[str, Any]:
    """Encode a twig query as its JSON AST (the root node object)."""
    return _node_to_dict(query.root, is_root=True)


def twig_from_dict(data: Dict[str, Any]) -> TwigQuery:
    """Decode a JSON AST produced by :func:`twig_to_dict` (or a client)."""
    try:
        return TwigQuery(_node_from_dict(data, is_root=True))
    except QueryFormatError:
        raise
    except ValueError as err:
        raise QueryFormatError(str(err)) from err

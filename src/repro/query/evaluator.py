"""Exact twig-query evaluation over a document tree.

This module computes the true selectivity ``s(Q)`` of a twig query — the
number of binding tuples (paper Section 2) — by dynamic programming over
the document.  It is the ground truth against which all XCluster
estimates are scored, and it shares the paper's path-counting semantics:
an element reachable from its context through several distinct axis paths
contributes once per path.

The query root ``q0`` binds the *virtual document root*, whose single
child is the document's root element.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.query.ast import AxisStep, EdgePath, QueryNode, TwigQuery
from repro.xmltree.tree import XMLElement, XMLTree


def _expand_step(
    frontier: Dict[int, Tuple[XMLElement, int]], step: AxisStep
) -> Dict[int, Tuple[XMLElement, int]]:
    """Advance a weighted element frontier through one axis step.

    The frontier maps ``id(element) -> (element, multiplicity)`` where the
    multiplicity is the number of distinct paths that reached the element.
    """
    result: Dict[int, Tuple[XMLElement, int]] = {}
    for element, multiplicity in frontier.values():
        if step.axis == "child":
            candidates: Iterable[XMLElement] = element.children
        else:
            candidates = element.descendants()
        for candidate in candidates:
            if step.matches_label(candidate.label):
                key = id(candidate)
                if key in result:
                    result[key] = (candidate, result[key][1] + multiplicity)
                else:
                    result[key] = (candidate, multiplicity)
    return result


def match_elements(
    context: XMLElement, edge: EdgePath
) -> List[Tuple[XMLElement, int]]:
    """Elements reached from ``context`` via ``edge``, with path multiplicity."""
    frontier = {id(context): (context, 1)}
    for step in edge.steps:
        frontier = _expand_step(frontier, step)
        if not frontier:
            return []
    return list(frontier.values())


class _VirtualRoot(XMLElement):
    """The document node sitting above the root element.

    Its only child is the document's root element, so a leading ``/site``
    step selects the root element and ``//item`` reaches any element.
    """

    def __init__(self, document_root: XMLElement) -> None:
        super().__init__("#document")
        # Bypass append_child: the document root keeps parent == None so
        # the tree itself remains valid and reusable.
        self.children = [document_root]


class ExactEvaluator:
    """Counts binding tuples of twig queries over one document.

    The evaluator memoizes per (query-variable, element) sub-results, so
    evaluating many queries against the same tree is efficient.
    """

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree
        self._virtual_root = _VirtualRoot(tree.root)

    def selectivity(self, query: TwigQuery) -> int:
        """The exact number of binding tuples of ``query``."""
        memo: Dict[Tuple[int, int], int] = {}
        return self._tuples(query.root, self._virtual_root, memo)

    def _tuples(
        self,
        variable: QueryNode,
        element: XMLElement,
        memo: Dict[Tuple[int, int], int],
    ) -> int:
        """Binding tuples of the subtree rooted at ``variable`` given that
        ``variable`` is bound to ``element``."""
        key = (id(variable), id(element))
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = 1
        for child in variable.children:
            branch_total = 0
            for matched, multiplicity in match_elements(element, child.edge):
                if not child.predicate.matches(matched.value):
                    continue
                branch_total += multiplicity * self._tuples(child, matched, memo)
            if branch_total == 0:
                total = 0
                break
            total *= branch_total
        memo[key] = total
        return total

    def matches(self, query: TwigQuery) -> bool:
        """Whether the query has at least one binding tuple."""
        return self.selectivity(query) > 0


def evaluate_selectivity(tree: XMLTree, query: TwigQuery) -> int:
    """One-shot exact selectivity (see :class:`ExactEvaluator`)."""
    return ExactEvaluator(tree).selectivity(query)

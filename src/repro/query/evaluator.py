"""Exact twig-query evaluation — tree-walk oracle and engine dispatch.

This module computes the true selectivity ``s(Q)`` of a twig query — the
number of binding tuples (paper Section 2).  It is the ground truth
against which all XCluster estimates are scored, and it shares the
paper's path-counting semantics: an element reachable from its context
through several distinct axis paths contributes once per path.

Two engines share those semantics bit-exactly:

* :class:`TreeWalkEvaluator` — the reference oracle.  Dynamic
  programming over ``XMLElement`` objects with per-step weighted
  frontiers, exactly the paper's recurrence.
* :class:`repro.query.interval.IntervalEvaluator` — the production
  engine.  Pre/post/level interval joins over sorted
  :class:`ColumnarDocument` columns; the default, because the oracle's
  object walk caps accuracy experiments at toy document scales.

:class:`ExactEvaluator` dispatches between them and accepts either an
``XMLTree`` or a ``ColumnarDocument`` (freezing/thawing to the
substrate its engine needs), so callers keep one entry point.

The query root ``q0`` binds the *virtual document root*, whose single
child is the document's root element.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from repro.query.ast import AxisStep, EdgePath, QueryNode, TwigQuery
from repro.xmltree.columnar import ColumnarDocument, freeze, thaw
from repro.xmltree.tree import XMLElement, XMLTree

#: Engine names accepted by :class:`ExactEvaluator`.
ENGINES = ("interval", "treewalk")

#: Either document substrate; both engines can serve both.
DocumentSource = Union[XMLTree, ColumnarDocument]


def _expand_step(
    frontier: Dict[int, Tuple[XMLElement, int]], step: AxisStep
) -> Dict[int, Tuple[XMLElement, int]]:
    """Advance a weighted element frontier through one axis step.

    The frontier maps ``id(element) -> (element, multiplicity)`` where the
    multiplicity is the number of distinct paths that reached the element.
    """
    result: Dict[int, Tuple[XMLElement, int]] = {}
    for element, multiplicity in frontier.values():
        if step.axis == "child":
            candidates: Iterable[XMLElement] = element.children
        else:
            candidates = element.descendants()
        for candidate in candidates:
            if step.matches_label(candidate.label):
                key = id(candidate)
                if key in result:
                    result[key] = (candidate, result[key][1] + multiplicity)
                else:
                    result[key] = (candidate, multiplicity)
    return result


def match_elements(
    context: XMLElement, edge: EdgePath
) -> List[Tuple[XMLElement, int]]:
    """Elements reached from ``context`` via ``edge``, with path multiplicity."""
    frontier = {id(context): (context, 1)}
    for step in edge.steps:
        frontier = _expand_step(frontier, step)
        if not frontier:
            return []
    return list(frontier.values())


class _VirtualRoot(XMLElement):
    """The document node sitting above the root element.

    Its only child is the document's root element, so a leading ``/site``
    step selects the root element and ``//item`` reaches any element.
    """

    def __init__(self, document_root: XMLElement) -> None:
        super().__init__("#document")
        # Bypass append_child: the document root keeps parent == None so
        # the tree itself remains valid and reusable.
        self.children = [document_root]


class TreeWalkEvaluator:
    """The reference oracle: counts binding tuples by walking objects.

    The evaluator memoizes per (query-variable, element) sub-results, so
    evaluating many queries against the same tree is efficient.
    """

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree
        self._virtual_root = _VirtualRoot(tree.root)

    def selectivity(self, query: TwigQuery) -> int:
        """The exact number of binding tuples of ``query``."""
        memo: Dict[Tuple[int, int], int] = {}
        return self._tuples(query.root, self._virtual_root, memo)

    def _tuples(
        self,
        variable: QueryNode,
        element: XMLElement,
        memo: Dict[Tuple[int, int], int],
    ) -> int:
        """Binding tuples of the subtree rooted at ``variable`` given that
        ``variable`` is bound to ``element``."""
        key = (id(variable), id(element))
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = 1
        for child in variable.children:
            branch_total = 0
            for matched, multiplicity in match_elements(element, child.edge):
                if not child.predicate.matches(matched.value):
                    continue
                branch_total += multiplicity * self._tuples(child, matched, memo)
            if branch_total == 0:
                total = 0
                break
            total *= branch_total
        memo[key] = total
        return total

    def matches(self, query: TwigQuery) -> bool:
        """Whether the query has at least one binding tuple."""
        return self.selectivity(query) > 0


class ExactEvaluator:
    """Engine-dispatching exact evaluator over either substrate.

    ``source`` may be an ``XMLTree`` or a ``ColumnarDocument``; the
    chosen engine's substrate is derived once up front (``freeze`` for
    the interval engine over a tree, ``thaw`` for the oracle over
    columns), so evaluating a whole workload amortizes the conversion.
    """

    def __init__(
        self, source: DocumentSource, engine: str = "interval"
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown evaluation engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine
        if isinstance(source, ColumnarDocument):
            tree, doc = None, source
        else:
            tree, doc = source, None
        if engine == "interval":
            from repro.query.interval import IntervalEvaluator

            self._impl = IntervalEvaluator(doc if doc is not None else freeze(tree))
        else:
            self._impl = TreeWalkEvaluator(tree if tree is not None else thaw(doc))
        self.source = source

    @property
    def tree(self) -> XMLTree:
        """The object tree, materializing it on demand (oracle compat)."""
        if isinstance(self.source, ColumnarDocument):
            return thaw(self.source)
        return self.source

    def selectivity(self, query: TwigQuery) -> int:
        """The exact number of binding tuples of ``query``."""
        return self._impl.selectivity(query)

    def matches(self, query: TwigQuery) -> bool:
        """Whether the query has at least one binding tuple."""
        return self._impl.matches(query)


def evaluate_selectivity(
    source: DocumentSource, query: TwigQuery, engine: str = "interval"
) -> int:
    """One-shot exact selectivity (see :class:`ExactEvaluator`)."""
    return ExactEvaluator(source, engine=engine).selectivity(query)

"""Interval-join exact twig evaluation over a columnar document.

This is the optimized twin of the tree-walk evaluator
(:mod:`repro.query.evaluator`): it computes the same binding-tuple
count ``s(Q)`` (paper Section 2) without touching a single
``XMLElement``.  The document is a :class:`ColumnarDocument`, whose
implicit preorder index plus ``post``/``level`` columns form an XPath
accelerator-style pre/post/level encoding: ``d`` is a descendant of
``a`` iff ``a < d`` and ``post[d] < post[a]``, and the subtree of
``a`` is the contiguous preorder interval ``[a, ends[a])``.

Evaluation is one forward/backward sweep per query variable:

* **forward** — advance a sorted ``array('i')`` frontier of candidate
  elements through each axis step of the variable's edge.  Child steps
  bisect a per-label sorted preorder index into the contexts' window
  and filter by the ``parent`` column; descendant steps are classic
  stack-based structural-join merges over the same index (or interval
  unions for wildcards).  No node objects, no per-element dicts.
* **backward** — seed each final-frontier element that passes the
  variable's predicate with the binding-tuple count of its own query
  subtree (a product over child variables, computed by recursing this
  same sweep), then push the weights back through the per-step
  frontiers: child steps accumulate onto ``parent``, descendant steps
  take prefix-sum differences over bisected subtree windows.

The backward pass counts, for every context element, the number of
distinct step-paths to every weighted match — which is exactly the
tree walk's "once per path" multiplicity rule, so counts are bit-equal
by construction.  Weights are carried as plain Python ints: binding
tuple counts are products over branches and can exceed 64 bits, which
the oracle's unbounded ints would represent exactly while an
``array('q')`` column would overflow.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import List, Sequence

from repro.query.ast import EdgePath, QueryNode, TwigQuery, WILDCARD
from repro.query.predicates import (
    AtLeastKPredicate,
    KeywordPredicate,
    RangePredicate,
    SubstringPredicate,
    TruePredicate,
)
from repro.xmltree.columnar import (
    KIND_NUMERIC,
    KIND_STRING,
    KIND_TEXT,
    ColumnarDocument,
)

#: Preorder index of the virtual document root (paper Section 2): the
#: node above the root element, one level above preorder 0.
VIRTUAL_ROOT = -1


class IntervalEvaluator:
    """Counts binding tuples of twig queries over one columnar document.

    The per-label preorder indexes and the subtree-end column are built
    lazily by the document and shared across queries, so evaluating a
    whole workload against one document pays the indexing cost once.
    """

    def __init__(self, doc: ColumnarDocument) -> None:
        self.doc = doc
        self._count = len(doc)
        self._ends = doc.subtree_ends()
        self._positions = doc.label_positions()

    # -- public API --------------------------------------------------------

    def selectivity(self, query: TwigQuery) -> int:
        """The exact number of binding tuples of ``query``."""
        total = 1
        for child in query.root.children:
            branch = self._branch_totals(child, (VIRTUAL_ROOT,))[0]
            if branch == 0:
                return 0
            total *= branch
        return total

    def matches(self, query: TwigQuery) -> bool:
        """Whether the query has at least one binding tuple."""
        return self.selectivity(query) > 0

    # -- helpers -----------------------------------------------------------

    def _end(self, index: int) -> int:
        """Exclusive preorder end of ``index``'s subtree interval."""
        return self._count if index < 0 else self._ends[index]

    def _branch_totals(
        self, variable: QueryNode, contexts: Sequence[int]
    ) -> List[int]:
        """Per-context branch totals for one query variable.

        For each context element ``e`` this returns ``B[variable][e]``:
        the sum over elements ``m`` reached from ``e`` via the
        variable's edge of (number of distinct step-paths ``e -> m``)
        times the binding-tuple count of ``variable``'s own query
        subtree with ``variable`` bound to ``m`` — the tree walk's
        ``branch_total`` term, for all contexts in one sweep.
        """
        frontiers: List[Sequence[int]] = [contexts]
        frontier: Sequence[int] = contexts
        for step in variable.edge.steps:
            frontier = self._forward_step(frontier, step)
            if not frontier:
                return [0] * len(contexts)
            frontiers.append(frontier)

        matched, weights = self._subtree_weights(variable, frontiers[-1])
        for depth in range(len(variable.edge.steps) - 1, -1, -1):
            step = variable.edge.steps[depth]
            matched, weights = self._backward_step(
                frontiers[depth], step.axis, matched, weights
            )
        return weights

    def _subtree_weights(self, variable, frontier):
        """Weight each final-frontier element by its own subtree count.

        Predicate failures are dropped here (weight would be zero);
        the surviving elements recurse into ``variable``'s children,
        mirroring the oracle's ``multiplicity * _tuples(child, m)``
        with the multiplicity left to the backward pass.
        """
        matched = self._predicate_filter(variable.predicate, frontier)
        weights = [1] * len(matched)
        if matched:
            for child in variable.children:
                branch = self._branch_totals(child, matched)
                for i, factor in enumerate(branch):
                    weights[i] *= factor
        return matched, weights

    def _predicate_filter(self, predicate, frontier):
        """Frontier elements passing ``predicate``, straight off columns.

        The three concrete predicate families are evaluated against the
        typed value columns without materializing per-element values
        (TEXT values in particular would rebuild a frozenset per probe).
        Semantics mirror ``Predicate.matches`` bit for bit: a kind
        mismatch is simply ``False``.  Unknown predicate types fall back
        to materializing values.
        """
        kind = type(predicate)
        if kind is TruePredicate:
            return list(frontier)
        doc = self.doc
        value_kind = doc.value_kind
        value_ref = doc.value_ref
        if kind is RangePredicate:
            low, high = predicate.low, predicate.high
            numeric = doc.numeric_values
            overflow = doc.numeric_overflow
            if overflow:
                return [
                    e
                    for e in frontier
                    if value_kind[e] == KIND_NUMERIC
                    and low
                    <= overflow.get(value_ref[e], numeric[value_ref[e]])
                    <= high
                ]
            return [
                e
                for e in frontier
                if value_kind[e] == KIND_NUMERIC
                and low <= numeric[value_ref[e]] <= high
            ]
        if kind is SubstringPredicate:
            needle = predicate.needle
            strings = doc.string_values
            return [
                e
                for e in frontier
                if value_kind[e] == KIND_STRING and needle in strings[value_ref[e]]
            ]
        if kind is KeywordPredicate or kind is AtLeastKPredicate:
            return self._text_filter(predicate, frontier)
        value = doc.value
        pred_matches = predicate.matches
        return [e for e in frontier if pred_matches(value(e))]

    def _text_filter(self, predicate, frontier):
        """TEXT predicates over interned term-id tuples.

        Streamed documents store each TEXT value as a tuple of term ids;
        interning the probe terms once turns every per-element check
        into small-int membership tests.  A probe term absent from the
        document-wide term table can never match.  Frozen documents
        keep original frozensets — those few fall back to
        ``Predicate.matches``.
        """
        term_index = self.doc.term_index
        probe_ids = set()
        missing = 0
        for term in predicate.terms:
            term_id = term_index.get(term)
            if term_id is None:
                missing += 1
            else:
                probe_ids.add(term_id)
        if type(predicate) is KeywordPredicate:
            required = len(predicate.terms)
        else:
            required = predicate.threshold
        if len(probe_ids) < required:
            # Enough probe terms are absent from the whole document
            # that the threshold is unreachable through the id path —
            # but frozenset-stored values must still be probed exactly.
            probe_ids = None
        value_kind = self.doc.value_kind
        value_ref = self.doc.value_ref
        texts = self.doc.text_values
        pred_matches = predicate.matches
        value = self.doc.value
        out = []
        for e in frontier:
            if value_kind[e] != KIND_TEXT:
                continue
            stored = texts[value_ref[e]]
            if type(stored) is not tuple:
                if pred_matches(stored):
                    out.append(e)
            elif probe_ids is not None and (
                sum(1 for term_id in stored if term_id in probe_ids)
                >= required
            ):
                out.append(e)
        return out

    # -- forward sweep -----------------------------------------------------

    def _forward_step(self, contexts, step):
        """All elements reachable from any context via one axis step.

        Returns a sorted, duplicate-free sequence of preorder indexes.
        Contexts are laminar (tree nodes: their subtree intervals nest
        or are disjoint), which every merge below relies on.
        """
        if step.axis == "child":
            if step.label == WILDCARD:
                return self._children_of(contexts)
            return self._labeled_children(contexts, step.label)
        if step.label == WILDCARD:
            return self._descendant_union(contexts)
        return self._labeled_descendants(contexts, step.label)

    def _label_window(self, contexts, label):
        """The per-label index sliced to the contexts' covering window."""
        label_id = self.doc.label_index.get(label)
        if label_id is None:
            return None
        positions = self._positions[label_id]
        if len(contexts) == 1:
            limit = self._end(contexts[0])
        else:
            limit = max(self._end(e) for e in contexts)
        low = bisect_right(positions, contexts[0])
        high = bisect_left(positions, limit, low)
        return positions[low:high]

    def _labeled_children(self, contexts, label):
        window = self._label_window(contexts, label)
        if not window:
            return ()
        parent = self.doc.parent
        if len(contexts) == 1:
            context = contexts[0]
            return [x for x in window if parent[x] == context]
        context_set = set(contexts)
        return [x for x in window if parent[x] in context_set]

    def _children_of(self, contexts):
        """Wildcard child step: follow the sibling links per context.

        Children of nested contexts interleave in preorder, so the
        concatenation is re-sorted; distinct parents cannot share a
        child, so no dedup is needed.
        """
        first_child = self.doc.first_child
        next_sibling = self.doc.next_sibling
        out: List[int] = []
        for context in contexts:
            child = 0 if context < 0 else first_child[context]
            if context < 0 and not self._count:
                child = -1
            while child >= 0:
                out.append(child)
                child = next_sibling[child]
        out.sort()
        return out

    def _labeled_descendants(self, contexts, label):
        """Structural join: label occurrences inside any context subtree.

        The classic stack merge — walk the label's preorder index once,
        pushing context subtree-ends as they start and popping them as
        they close; an occurrence is emitted while any context interval
        is open.  Laminar contexts keep the stack nested.
        """
        window = self._label_window(contexts, label)
        if not window:
            return ()
        if len(contexts) == 1:
            # The window is already exactly the context's strict
            # subtree: every occurrence in it is a descendant.
            return window
        out: List[int] = []
        ends_stack: List[int] = []
        pending = iter(contexts)
        next_context = next(pending)
        for x in window:
            while next_context is not None and next_context < x:
                ends_stack.append(self._end(next_context))
                next_context = next(pending, None)
            while ends_stack and ends_stack[-1] <= x:
                ends_stack.pop()
            if ends_stack:
                out.append(x)
        return out

    def _descendant_union(self, contexts):
        """Wildcard descendant step: the union of strict-subtree intervals."""
        if len(contexts) == 1:
            return range(contexts[0] + 1, self._end(contexts[0]))
        out: List[int] = []
        covered = 0
        for context in contexts:
            start, stop = context + 1, self._end(context)
            if stop <= covered:
                continue
            out.extend(range(max(start, covered), stop))
            covered = stop
        return out

    # -- backward sweep ----------------------------------------------------

    def _backward_step(self, contexts, axis, targets, weights):
        """Pull target weights one step back onto the context frontier.

        A single axis step reaches each target at most once from a
        given context, so summing target weights per context counts
        step-paths exactly.
        """
        if axis == "child":
            by_parent: dict = {}
            parent = self.doc.parent
            for x, w in zip(targets, weights):
                if w:
                    p = parent[x]
                    by_parent[p] = by_parent.get(p, 0) + w
            return contexts, [by_parent.get(e, 0) for e in contexts]
        # Descendant: each context sums the weights inside its strict
        # subtree window — a prefix-sum difference over the sorted
        # target frontier.
        prefix = [0]
        acc = 0
        for w in weights:
            acc += w
            prefix.append(acc)
        pulled = []
        ends = self._ends
        count = self._count
        for e in contexts:
            low = bisect_right(targets, e)
            high = bisect_left(targets, count if e < 0 else ends[e], low)
            pulled.append(prefix[high] - prefix[low])
        return contexts, pulled


def evaluate_columnar(doc: ColumnarDocument, query: TwigQuery) -> int:
    """One-shot exact selectivity over a columnar document."""
    return IntervalEvaluator(doc).selectivity(query)

"""Parser for the XPath subset used by twig queries.

The surface syntax covers the fragment of the paper's query model:
child (``/``) and descendant (``//``) axes, ``*`` wildcards, structural
branches, and value predicates::

    //paper[./year >= 2001][./abstract ftcontains(synopsis, xml)]/title[. contains(Tree)]

Each location step becomes one query variable (the paper's estimation
arithmetic counts *paths*, which is exactly the semantics of binding
every step).  A bracketed branch is a subtree of variables; the optional
value test attaches to the branch's deepest variable.  A value test whose
relative path is just ``.`` constrains the current variable.

Supported value tests::

    > n      >= n      < n      <= n      = n      in [l, h]
    contains(needle)
    ftcontains(term1, term2, ...)
    ftatleast(k, term1, term2, ...)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.query.ast import AxisStep, EdgePath, QueryNode, TwigQuery, WILDCARD
from repro.query.predicates import (
    AtLeastKPredicate,
    KeywordPredicate,
    Predicate,
    RangePredicate,
    SubstringPredicate,
)


class XPathSyntaxError(ValueError):
    """Raised on malformed twig/XPath syntax."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class _Scanner:
    """Character scanner with the few lookahead helpers the grammar needs."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise XPathSyntaxError(f"expected {token!r}", self.pos)

    def skip_spaces(self) -> None:
        while not self.eof() and self.text[self.pos] == " ":
            self.pos += 1

    def read_name(self) -> str:
        if self.take("*"):
            return WILDCARD
        start = self.pos
        while not self.eof() and (self.peek().isalnum() or self.peek() in "_-@"):
            self.pos += 1
        if self.pos == start:
            raise XPathSyntaxError("expected a name test", self.pos)
        return self.text[start : self.pos]

    def read_int(self) -> int:
        self.skip_spaces()
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while not self.eof() and self.peek().isdigit():
            self.pos += 1
        if self.pos == start or self.text[start : self.pos] == "-":
            raise XPathSyntaxError("expected an integer", self.pos)
        return int(self.text[start : self.pos])


def _read_axis(scanner: _Scanner) -> Optional[str]:
    """Consume a path separator, returning its axis (or None)."""
    if scanner.take("//"):
        return "descendant"
    if scanner.take("/"):
        return "child"
    return None


def _read_quoted(scanner: _Scanner) -> str:
    """Consume a double-quoted string (backslash-escaped ``\"`` / ``\\``)."""
    scanner.expect('"')
    chars: List[str] = []
    while True:
        if scanner.eof():
            raise XPathSyntaxError("unterminated string literal", scanner.pos)
        char = scanner.text[scanner.pos]
        scanner.pos += 1
        if char == '"':
            return "".join(chars)
        if char == "\\":
            if scanner.eof():
                raise XPathSyntaxError("dangling escape", scanner.pos)
            char = scanner.text[scanner.pos]
            scanner.pos += 1
        chars.append(char)


def _parse_call_args(scanner: _Scanner) -> List[str]:
    """Parse the argument list of contains(...) / ftcontains(...).

    Bare arguments are whitespace-trimmed; a double-quoted argument is
    taken verbatim (minus escapes), which is how ``to_xpath`` keeps
    needles with significant edge whitespace or delimiter characters
    round-trippable.
    """
    scanner.expect("(")
    args: List[str] = []
    while True:
        scanner.skip_spaces()
        if scanner.peek() == '"':
            # A quoted string is a whole argument, taken verbatim.
            args.append(_read_quoted(scanner))
            scanner.skip_spaces()
            if scanner.take(","):
                continue
            scanner.expect(")")
            return args
        # Bare argument: consume up to a top-level ',' or the close.
        depth = 0
        chars: List[str] = []
        while True:
            if scanner.eof():
                raise XPathSyntaxError(
                    "unterminated argument list", scanner.pos
                )
            char = scanner.text[scanner.pos]
            scanner.pos += 1
            if char == "(":
                depth += 1
                chars.append(char)
            elif char == ")":
                if depth == 0:
                    text = "".join(chars).strip()
                    if text or args:
                        args.append(text)
                    return args
                depth -= 1
                chars.append(char)
            elif char == "," and depth == 0:
                args.append("".join(chars).strip())
                break
            else:
                chars.append(char)


def _parse_value_test(scanner: _Scanner) -> Optional[Predicate]:
    """Parse an optional value test at the current position."""
    scanner.skip_spaces()
    if scanner.startswith("ftatleast"):
        scanner.pos += len("ftatleast")
        args = _parse_call_args(scanner)
        if len(args) < 2:
            raise XPathSyntaxError(
                "ftatleast() needs a threshold and at least one term", scanner.pos
            )
        try:
            threshold = int(args[0])
        except ValueError:
            raise XPathSyntaxError(
                "ftatleast() threshold must be an integer", scanner.pos
            ) from None
        return AtLeastKPredicate(args[1:], threshold)
    if scanner.startswith("ftcontains"):
        scanner.pos += len("ftcontains")
        args = _parse_call_args(scanner)
        return KeywordPredicate(args)
    if scanner.startswith("contains"):
        scanner.pos += len("contains")
        args = _parse_call_args(scanner)
        if len(args) != 1:
            raise XPathSyntaxError("contains() takes exactly one argument", scanner.pos)
        return SubstringPredicate(args[0])
    if scanner.startswith("in"):
        scanner.pos += 2
        scanner.skip_spaces()
        scanner.expect("[")
        low = scanner.read_int()
        scanner.skip_spaces()
        scanner.expect(",")
        high = scanner.read_int()
        scanner.skip_spaces()
        scanner.expect("]")
        return RangePredicate(low, high)
    for operator in (">=", "<=", ">", "<", "="):
        if scanner.startswith(operator):
            scanner.pos += len(operator)
            bound = scanner.read_int()
            if operator == ">=":
                return RangePredicate(low=bound)
            if operator == "<=":
                return RangePredicate(high=bound)
            if operator == ">":
                return RangePredicate(low=bound + 1)
            if operator == "<":
                return RangePredicate(high=bound - 1)
            return RangePredicate(bound, bound)
    return None


class _TwigParser:
    """Recursive-descent parser producing a :class:`TwigQuery`."""

    def __init__(self, text: str) -> None:
        self.scanner = _Scanner(text)
        self.counter = 0

    def _next_name(self) -> str:
        self.counter += 1
        return f"q{self.counter}"

    def parse(self) -> TwigQuery:
        twig = TwigQuery()
        scanner = self.scanner
        scanner.skip_spaces()
        leaf = self._parse_path(twig.root, require_leading_axis=True)
        scanner.skip_spaces()
        if not scanner.eof():
            raise XPathSyntaxError("trailing characters after query", scanner.pos)
        del leaf  # the main path's leaf needs no further handling
        return twig

    def _parse_path(self, parent: QueryNode, require_leading_axis: bool) -> QueryNode:
        """Parse ``(sep nametest branch*)+`` under ``parent``; return the leaf."""
        scanner = self.scanner
        current = parent
        first = True
        while True:
            axis = _read_axis(scanner)
            if axis is None:
                if first and require_leading_axis:
                    raise XPathSyntaxError("a path must start with '/' or '//'", scanner.pos)
                return current
            label = scanner.read_name()
            step = AxisStep(axis, label)
            node = QueryNode(self._next_name(), EdgePath((step,)))
            current.add_child(node)
            current = node
            first = False
            while scanner.startswith("["):
                self._parse_branch(current)

    def _parse_branch(self, owner: QueryNode) -> None:
        """Parse ``[ relpath? valuetest? ]`` attached to ``owner``."""
        scanner = self.scanner
        scanner.expect("[")
        scanner.skip_spaces()

        target = owner
        had_path = False
        if scanner.take("."):
            # "." means the current node; ".//x" or "./x" descends from it.
            if scanner.peek() == "/":
                target = self._parse_path(owner, require_leading_axis=True)
                had_path = True
        elif scanner.peek() not in ("]",) and not _at_value_test(scanner):
            # Bare relative path like "year > 2000": implicit child axis.
            label = scanner.read_name()
            node = QueryNode(
                self._next_name(), EdgePath((AxisStep("child", label),))
            )
            owner.add_child(node)
            target = self._parse_path(node, require_leading_axis=False)
            had_path = True

        predicate = _parse_value_test(scanner)
        if predicate is not None:
            if target.has_value_predicate:
                raise XPathSyntaxError(
                    "query node already carries a value predicate", scanner.pos
                )
            target.predicate = predicate
        elif not had_path:
            raise XPathSyntaxError("empty branch", scanner.pos)

        scanner.skip_spaces()
        scanner.expect("]")


def _at_value_test(scanner: _Scanner) -> bool:
    """Whether the scanner is positioned at a value test (not a path)."""
    for token in ("contains", "ftcontains", "in", ">=", "<=", ">", "<", "="):
        if scanner.startswith(token):
            # "contains"/"in" could also be element names; a value test is
            # followed by '(' or a bracketed range / number.
            probe = scanner.pos + len(token)
            rest = scanner.text[probe : probe + 2].lstrip()
            if token in ("contains", "ftcontains"):
                return rest.startswith("(")
            if token == "in":
                return rest.startswith("[")
            return True
    return False


def parse_twig(text: str) -> TwigQuery:
    """Parse a twig query from its XPath-like surface syntax.

    Raises:
        XPathSyntaxError: on malformed input.
    """
    return _TwigParser(text).parse()


def parse_edge_path(text: str) -> EdgePath:
    """Parse a bare edge path such as ``"./a//b"`` (no branches/predicates)."""
    scanner = _Scanner(text)
    scanner.take(".")
    steps: List[AxisStep] = []
    while True:
        axis = _read_axis(scanner)
        if axis is None:
            break
        steps.append(AxisStep(axis, scanner.read_name()))
    if not steps or not scanner.eof():
        raise XPathSyntaxError("malformed edge path", scanner.pos)
    return EdgePath(tuple(steps))

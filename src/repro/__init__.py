"""XCluster synopses for structured XML content — ICDE 2006 reproduction.

A complete implementation of the XCluster summarization model of
Polyzotis & Garofalakis: structure-value clustering synopses for XML
documents with heterogeneous (numeric / string / text) element values,
supporting selectivity estimation for twig queries with range, substring,
and IR-style keyword predicates.

Quickstart::

    from repro import (
        build_xcluster, estimate_selectivity, evaluate_selectivity, parse_twig,
    )
    from repro.datasets import generate_imdb

    dataset = generate_imdb(scale=0.2)
    synopsis = build_xcluster(
        dataset.tree, structural_budget=4096, value_budget=32768,
        value_paths=dataset.value_paths,
    )
    query = parse_twig("//movie[./year >= 2000]/title")
    print(estimate_selectivity(synopsis, query))      # synopsis estimate
    print(evaluate_selectivity(dataset.tree, query))  # exact count
"""

from repro.core import (
    BuildConfig,
    CompiledEstimator,
    WorkloadEstimator,
    XClusterBuilder,
    XClusterEstimator,
    XClusterSynopsis,
    build_reference_synopsis,
    build_tag_synopsis,
    build_xcluster,
    estimate_many,
    estimate_selectivity,
    structural_size_bytes,
    total_size_bytes,
    value_size_bytes,
)
from repro.check import audit_synopsis, run_differential_check
from repro.query import evaluate_selectivity, parse_twig
from repro.xmltree import XMLElement, XMLTree, parse_string

__version__ = "1.0.0"

__all__ = [
    "BuildConfig",
    "audit_synopsis",
    "run_differential_check",
    "CompiledEstimator",
    "WorkloadEstimator",
    "XClusterBuilder",
    "XClusterEstimator",
    "XClusterSynopsis",
    "build_reference_synopsis",
    "build_tag_synopsis",
    "build_xcluster",
    "estimate_many",
    "estimate_selectivity",
    "evaluate_selectivity",
    "parse_twig",
    "structural_size_bytes",
    "total_size_bytes",
    "value_size_bytes",
    "XMLElement",
    "XMLTree",
    "parse_string",
    "__version__",
]

"""The XCluster synopsis graph model (paper Definition 3.1).

An :class:`XClusterSynopsis` is a node- and edge-labeled, type-respecting
graph synopsis: every node represents a structure-value cluster of
identically-labeled, identically-typed document elements and stores

1. the element count ``|u|`` of its extent,
2. per-edge average child counters ``count(u, v)``, and
3. an optional value summary ``vsumm(u)`` approximating the distribution
   of the extent's values.

The synopsis is mutable — the builder compresses it in place via node
merges and value-compression steps — and self-indexing: nodes are keyed
by integer id, and reverse (parent) adjacency is maintained alongside the
forward edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.values.summary import ValueSummary, fuse_summaries
from repro.xmltree.types import ValueType


class SynopsisNode:
    """One structure-value cluster.

    Attributes:
        node_id: unique id within the synopsis.
        label: the common tag of all extent elements.
        value_type: the common value type of all extent elements.
        count: ``|extent(u)|``.
        vsumm: the value summary, or ``None`` for structure-only nodes.
            The summary may be *deferred* (:meth:`defer_summary`): loaders
            can park a decode thunk instead of a materialized summary, and
            the first ``vsumm`` access pays the decode.  Every consumer
            sees the same object either way.
        children: forward edges ``child id -> count(u, child)`` (average
            number of child-cluster children per extent element).
        parents: ids of nodes with an edge into this one.
    """

    __slots__ = (
        "node_id",
        "label",
        "value_type",
        "count",
        "_vsumm",
        "_vsumm_thunk",
        "children",
        "parents",
    )

    def __init__(
        self,
        node_id: int,
        label: str,
        value_type: ValueType,
        count: int,
        vsumm: Optional[ValueSummary] = None,
    ) -> None:
        self.node_id = node_id
        self.label = label
        self.value_type = value_type
        self.count = count
        self._vsumm = vsumm
        self._vsumm_thunk = None
        self.children: Dict[int, float] = {}
        self.parents: Set[int] = set()

    @property
    def vsumm(self) -> Optional[ValueSummary]:
        thunk = self._vsumm_thunk
        if thunk is not None:
            # Materialize only on success: a corrupt payload keeps the
            # thunk parked, so every access raises the same format error
            # instead of silently degrading to "no summary".
            self._vsumm = thunk()
            self._vsumm_thunk = None
        return self._vsumm

    @vsumm.setter
    def vsumm(self, summary: Optional[ValueSummary]) -> None:
        self._vsumm = summary
        self._vsumm_thunk = None

    def defer_summary(self, thunk) -> None:
        """Park a zero-argument decode callable as the value summary.

        The thunk runs (once) on the first ``vsumm`` read; until then the
        node holds no materialized summary, which is what lets snapshot
        and relaxed JSON loading skip per-family decoding entirely for
        summaries a workload never touches.
        """
        self._vsumm = None
        self._vsumm_thunk = thunk

    @property
    def summary_deferred(self) -> bool:
        """Whether the value summary is still an undecoded thunk."""
        return self._vsumm_thunk is not None

    def __getstate__(self):
        # Decode thunks close over load-time buffers and are not
        # picklable; materialize before crossing a process boundary
        # (the spawn-pool fallback pickles the synopsis into workers).
        return (
            self.node_id,
            self.label,
            self.value_type,
            self.count,
            self.vsumm,
            self.children,
            self.parents,
        )

    def __setstate__(self, state) -> None:
        (
            self.node_id,
            self.label,
            self.value_type,
            self.count,
            self._vsumm,
            self.children,
            self.parents,
        ) = state
        self._vsumm_thunk = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def has_summary(self) -> bool:
        return self._vsumm is not None or self._vsumm_thunk is not None

    def merge_key(self) -> Tuple[str, ValueType]:
        """Nodes are merge-compatible iff their merge keys are equal.

        Label and value type must match (the type-respecting condition of
        Definition 3.1).  A summarized cluster may absorb an unsummarized
        one of the same label/type: the fused cluster keeps the summary,
        which then approximates the whole extent — exactly the semantics
        of the tag-level summary, whose per-tag clusters also count
        elements beyond the summarized value paths.
        """
        return (self.label, self.value_type)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SynopsisNode #{self.node_id} {self.label}({self.count}) "
            f"type={self.value_type} children={len(self.children)}>"
        )


class XClusterSynopsis:
    """A mutable XCluster synopsis graph."""

    def __init__(self) -> None:
        self.nodes: Dict[int, SynopsisNode] = {}
        self.root_id: Optional[int] = None
        self._next_id = 0
        #: Structural-mutation counter.  Every operation that changes the
        #: node or edge set bumps it, so derived caches (descendant
        #: closures, transition tables in :mod:`repro.core.estimation`)
        #: can detect staleness with one integer comparison.  Value-summary
        #: replacement does not bump it: selectivity caches key on the
        #: summary object itself and self-invalidate.
        self.version = 0

    # -- construction -----------------------------------------------------

    def add_node(
        self,
        label: str,
        value_type: ValueType,
        count: int,
        vsumm: Optional[ValueSummary] = None,
    ) -> SynopsisNode:
        """Create and register a new cluster node."""
        node = SynopsisNode(self._next_id, label, value_type, count, vsumm)
        self.nodes[node.node_id] = node
        self._next_id += 1
        self.version += 1
        return node

    def set_root(self, node: SynopsisNode) -> None:
        """Designate the cluster holding the document root element."""
        self.root_id = node.node_id

    @property
    def root(self) -> SynopsisNode:
        if self.root_id is None:
            raise ValueError("synopsis has no root")
        return self.nodes[self.root_id]

    def add_edge(self, parent: SynopsisNode, child: SynopsisNode, count: float) -> None:
        """Set the average child counter ``count(parent, child)``."""
        if count <= 0:
            raise ValueError("edge counts must be positive")
        parent.children[child.node_id] = count
        child.parents.add(parent.node_id)
        self.version += 1

    # -- inspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[SynopsisNode]:
        return iter(self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(node.children) for node in self.nodes.values())

    def node(self, node_id: int) -> SynopsisNode:
        """The node with the given id (KeyError if absent)."""
        return self.nodes[node_id]

    def children_of(self, node: SynopsisNode) -> List[SynopsisNode]:
        """The nodes this node has edges to."""
        return [self.nodes[child_id] for child_id in node.children]

    def parents_of(self, node: SynopsisNode) -> List[SynopsisNode]:
        """The nodes with edges into this node."""
        return [self.nodes[parent_id] for parent_id in node.parents]

    def nodes_by_label(self, label: str) -> List[SynopsisNode]:
        """All clusters carrying the given tag."""
        return [node for node in self.nodes.values() if node.label == label]

    def valued_nodes(self) -> List[SynopsisNode]:
        """Nodes carrying a value summary (materialized or deferred)."""
        return [node for node in self.nodes.values() if node.has_summary]

    def total_element_count(self) -> int:
        """Sum of all extent sizes (equals the document size)."""
        return sum(node.count for node in self.nodes.values())

    def levels(self) -> Dict[int, int]:
        """Level of each node: shortest outgoing distance to a leaf.

        Leaves are level 0, their parents at least 1, and so on (paper
        Section 4.3).  Nodes that cannot reach a leaf without revisiting a
        cycle get the maximum finite level plus one.
        """
        level: Dict[int, int] = {}
        frontier = [node.node_id for node in self.nodes.values() if node.is_leaf]
        for node_id in frontier:
            level[node_id] = 0
        current = 0
        while frontier:
            next_frontier = []
            for node_id in frontier:
                for parent_id in self.nodes[node_id].parents:
                    if parent_id not in level:
                        level[parent_id] = current + 1
                        next_frontier.append(parent_id)
            frontier = next_frontier
            current += 1
        overflow = current + 1
        for node_id in self.nodes:
            level.setdefault(node_id, overflow)
        return level

    # -- the node-merge operation (paper Section 4.1) ---------------------------

    def merge_nodes(self, u_id: int, v_id: int) -> SynopsisNode:
        """Apply ``merge(S, u, v)`` in place and return the merged node.

        The new node ``w`` inherits the union of both extents, parents,
        and children; edge counts follow the paper's weighted-average
        (outgoing) and sum (incoming) semantics; value summaries are
        fused with the type-specific fusion function.
        """
        if u_id == v_id:
            raise ValueError("cannot merge a node with itself")
        u = self.nodes[u_id]
        v = self.nodes[v_id]
        if u.merge_key() != v.merge_key():
            raise ValueError(
                f"nodes {u_id} and {v_id} are not merge-compatible: "
                f"{u.merge_key()} vs {v.merge_key()}"
            )
        w = self.add_node(
            u.label,
            u.value_type,
            u.count + v.count,
            fuse_summaries(u.vsumm, v.vsumm),
        )

        # Outgoing edges: count(w, c) = (|u| count(u,c) + |v| count(v,c)) / |w|.
        for source in (u, v):
            for child_id, avg in source.children.items():
                w.children[child_id] = w.children.get(child_id, 0.0) + source.count * avg
        for child_id in list(w.children):
            w.children[child_id] /= w.count

        # Incoming edges: count(p, w) = count(p, u) + count(p, v).
        for parent_id in u.parents | v.parents:
            parent = self.nodes[parent_id]
            incoming = parent.children.pop(u_id, 0.0) + parent.children.pop(v_id, 0.0)
            if parent_id in (u_id, v_id):
                continue  # handled below as a self-loop on w
            parent.children[w.node_id] = incoming
            w.parents.add(parent_id)

        # Self-loops: edges between u and v (or loops on them) become w->w,
        # keeping the weighted-average outgoing-count semantics.
        self_loop = w.children.pop(u_id, 0.0) + w.children.pop(v_id, 0.0)
        if self_loop > 0.0:
            w.children[w.node_id] = self_loop
            w.parents.add(w.node_id)

        # Rewire children's parent sets.
        for child_id in w.children:
            child = self.nodes[child_id]
            child.parents.discard(u_id)
            child.parents.discard(v_id)
            child.parents.add(w.node_id)

        if self.root_id in (u_id, v_id):
            self.root_id = w.node_id
        del self.nodes[u_id]
        del self.nodes[v_id]
        self.version += 1
        return w

    # -- integrity ----------------------------------------------------------------

    def iter_integrity_issues(self) -> Iterator[Tuple[str, Optional[int]]]:
        """Yield ``(message, node_id)`` for every graph-invariant breach.

        Checks edge symmetry, positive counts, and root referential
        integrity.  This is the introspection hook behind both
        :meth:`validate` (which raises on the first issue) and the
        :class:`repro.check.invariants.InvariantAuditor` (which collects
        every issue as a structured ``Violation``).
        """
        if self.root_id is not None and self.root_id not in self.nodes:
            yield ("root id does not reference a node", self.root_id)
        for node in self.nodes.values():
            if node.count <= 0:
                yield (f"node {node.node_id} has non-positive count", node.node_id)
            for child_id, avg in node.children.items():
                if child_id not in self.nodes:
                    yield (
                        f"edge {node.node_id}->{child_id} points at a missing node",
                        node.node_id,
                    )
                    continue
                if avg <= 0:
                    yield (
                        f"edge {node.node_id}->{child_id} has non-positive count",
                        node.node_id,
                    )
                if node.node_id not in self.nodes[child_id].parents:
                    yield (
                        f"edge {node.node_id}->{child_id} missing reverse link",
                        node.node_id,
                    )
            for parent_id in node.parents:
                if parent_id not in self.nodes:
                    yield (
                        f"node {node.node_id} lists a missing parent {parent_id}",
                        node.node_id,
                    )
                    continue
                if node.node_id not in self.nodes[parent_id].children:
                    yield (
                        f"parent link {parent_id}->{node.node_id} has no forward edge",
                        node.node_id,
                    )

    def validate(self) -> None:
        """Check graph invariants (edge symmetry, positive counts, root).

        Raises:
            ValueError: on the first inconsistency found.
        """
        for message, _ in self.iter_integrity_issues():
            raise ValueError(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XClusterSynopsis nodes={len(self.nodes)} edges={self.edge_count}>"

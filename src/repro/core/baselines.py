"""Baseline summaries and naive policies for the ablation benchmarks.

* :func:`compress_with_policy` — structural compression driven by a
  *naive* merge-selection policy (random, or smallest-count-first)
  instead of the localized Δ marginal-loss metric; used by the
  metric-ablation bench to show the metric earns its keep.
* :func:`build_structure_only_synopsis` — a TreeSketch-style synopsis
  (no value summaries), the comparison anchor for the paper's ``Struct``
  series.
* :func:`naive_prune_pst` — count-based PST leaf pruning (smallest count
  first), the baseline for the ``st_cmprs`` pruning-error scheme.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.reference import LabelPath, build_reference_synopsis
from repro.core.sizing import structural_size_bytes
from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.pst import PrunedSuffixTree
from repro.xmltree.tree import XMLTree

#: A policy receives the merge-compatible groups and returns a pair of
#: node ids to merge, or ``None`` when it declines.
MergePolicy = Callable[[Dict[Tuple, List[int]], random.Random], Optional[Tuple[int, int]]]


def random_policy(
    groups: Dict[Tuple, List[int]], rng: random.Random
) -> Optional[Tuple[int, int]]:
    """Pick a uniformly random merge-compatible pair."""
    eligible = [members for members in groups.values() if len(members) >= 2]
    if not eligible:
        return None
    members = rng.choice(eligible)
    u_id, v_id = rng.sample(members, 2)
    return (u_id, v_id)


def make_smallest_count_policy(synopsis: XClusterSynopsis) -> MergePolicy:
    """A policy merging the two smallest-extent compatible clusters.

    This mimics a size-greedy heuristic that ignores structure/value
    similarity entirely.
    """

    def policy(
        groups: Dict[Tuple, List[int]], rng: random.Random
    ) -> Optional[Tuple[int, int]]:
        del rng
        best: Optional[Tuple[int, int]] = None
        best_size = None
        for members in groups.values():
            if len(members) < 2:
                continue
            ranked = sorted(members, key=lambda m: synopsis.node(m).count)
            size = synopsis.node(ranked[0]).count + synopsis.node(ranked[1]).count
            if best_size is None or size < best_size:
                best_size = size
                best = (ranked[0], ranked[1])
        return best

    return policy


def compress_with_policy(
    synopsis: XClusterSynopsis,
    structural_budget: int,
    policy: MergePolicy,
    seed: int = 0,
) -> XClusterSynopsis:
    """Compress ``synopsis`` structurally using a naive merge policy.

    Applies policy-chosen merges until the structural budget is met or no
    merge-compatible pair remains.  Value summaries still fuse correctly;
    only the *choice* of merges differs from XCLUSTERBUILD.
    """
    rng = random.Random(seed)
    while structural_size_bytes(synopsis) > structural_budget:
        groups: Dict[Tuple, List[int]] = {}
        for node in synopsis:
            if node.node_id == synopsis.root_id:
                continue
            groups.setdefault(node.merge_key(), []).append(node.node_id)
        pair = policy(groups, rng)
        if pair is None:
            break
        synopsis.merge_nodes(*pair)
    return synopsis


def build_structure_only_synopsis(
    tree: XMLTree,
    value_paths: Optional[Sequence[LabelPath]] = None,
) -> XClusterSynopsis:
    """A TreeSketch-style reference synopsis without value summaries."""
    return build_reference_synopsis(tree, value_paths, with_summaries=False)


def naive_prune_pst(pst: PrunedSuffixTree, count: int) -> int:
    """Prune ``count`` PST leaves smallest-count-first (no error model).

    Returns the number of leaves actually pruned.  The ablation bench
    contrasts this with the pruning-error scheme of
    :meth:`~repro.values.pst.PrunedSuffixTree.prune_leaves`.
    """
    pruned = 0
    while pruned < count:
        leaves = pst._prunable_leaves()
        if not leaves:
            break
        leaves.sort(key=lambda node: (node.count, node.char))
        for node in leaves:
            if pruned >= count:
                break
            del node.parent.children[node.char]
            pst._node_count -= 1
            pruned += 1
    return pruned

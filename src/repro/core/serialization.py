"""Synopsis persistence: save/load XCluster synopses as JSON.

A synopsis built once (possibly from a large document) is reused across
many optimizer sessions, so it must round-trip through storage.  The
format is a single JSON document containing the shared term vocabulary,
every node with its value summary, and the edge list; loading rebuilds
an estimator-ready :class:`~repro.core.synopsis.XClusterSynopsis` that
produces byte-identical estimates.

The JSON encoding is deliberately simple and versioned; the byte-level
size accounting of :mod:`repro.core.sizing` models the equivalent packed
binary layout, not this interchange format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.ebth import EndBiasedTermHistogram
from repro.values.histogram import Histogram, HistogramBucket
from repro.values.pst import PrunedSuffixTree, _Node
from repro.values.rle import RunLengthBitmap
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    TextSummary,
    ValueSummary,
    WaveletSummary,
)
from repro.values.wavelet import HaarWavelet
from repro.values.termvector import Vocabulary
from repro.xmltree.types import ValueType

FORMAT_VERSION = 1


class SynopsisFormatError(ValueError):
    """Raised when loading malformed or incompatible synopsis data."""


# -- value-summary encoding ---------------------------------------------------


def _encode_histogram(summary: HistogramSummary) -> Dict[str, Any]:
    return {
        "kind": "histogram",
        "buckets": [
            [bucket.lo, bucket.hi, bucket.count]
            for bucket in summary.histogram.buckets
        ],
    }


def _decode_histogram(data: Dict[str, Any]) -> HistogramSummary:
    buckets = [
        HistogramBucket(int(lo), int(hi), float(count))
        for lo, hi, count in data["buckets"]
    ]
    return HistogramSummary(Histogram(buckets))


def _encode_wavelet(summary: WaveletSummary) -> Dict[str, Any]:
    wavelet = summary.wavelet
    return {
        "kind": "wavelet",
        "domain_lo": wavelet.domain_lo,
        "cell_width": wavelet.cell_width,
        "length": wavelet.length,
        "coefficients": sorted(wavelet.coefficients.items()),
        "total": wavelet.total,
    }


def _decode_wavelet(data: Dict[str, Any]) -> WaveletSummary:
    coefficients = {int(index): float(value) for index, value in data["coefficients"]}
    return WaveletSummary(
        HaarWavelet(
            int(data["domain_lo"]),
            int(data["cell_width"]),
            int(data["length"]),
            coefficients,
            float(data["total"]),
        )
    )


def _encode_pst_node(node: _Node) -> List[Any]:
    return [
        node.char,
        node.count,
        [_encode_pst_node(child) for child in node.children.values()],
    ]


def _encode_pst(summary: StringSummary) -> Dict[str, Any]:
    tree = summary.pst
    return {
        "kind": "pst",
        "max_depth": tree.max_depth,
        "string_count": tree.string_count,
        "children": [_encode_pst_node(child) for child in tree.root.children.values()],
    }


def _decode_pst(data: Dict[str, Any]) -> StringSummary:
    tree = PrunedSuffixTree(int(data["max_depth"]))
    tree.root.count = int(data["string_count"])
    node_count = 0

    def attach(parent: _Node, encoded: List[Any]) -> None:
        nonlocal node_count
        char, count, children = encoded
        node = _Node(char, parent)
        node.count = int(count)
        parent.children[char] = node
        node_count += 1
        for child in children:
            attach(node, child)

    for encoded in data["children"]:
        attach(tree.root, encoded)
    tree._node_count = node_count
    return StringSummary(tree)


def _encode_ebth(summary: TextSummary) -> Dict[str, Any]:
    ebth = summary.ebth
    return {
        "kind": "ebth",
        "exact": sorted(ebth.exact.items()),
        "runs": list(ebth.bitmap.runs),
        "bucket_average": ebth.bucket_average,
        "bucket_member_count": ebth.bucket_member_count,
        "count": ebth.count,
    }


def _decode_ebth(data: Dict[str, Any], vocabulary: Vocabulary) -> TextSummary:
    bitmap = RunLengthBitmap([tuple(run) for run in data["runs"]])
    exact = {int(term_id): float(freq) for term_id, freq in data["exact"]}
    return TextSummary(
        EndBiasedTermHistogram(
            vocabulary,
            exact,
            bitmap,
            float(data["bucket_average"]),
            int(data["bucket_member_count"]),
            int(data["count"]),
        )
    )


def _encode_summary(summary: Optional[ValueSummary]) -> Optional[Dict[str, Any]]:
    if summary is None:
        return None
    if isinstance(summary, HistogramSummary):
        return _encode_histogram(summary)
    if isinstance(summary, WaveletSummary):
        return _encode_wavelet(summary)
    if isinstance(summary, StringSummary):
        return _encode_pst(summary)
    if isinstance(summary, TextSummary):
        return _encode_ebth(summary)
    raise SynopsisFormatError(f"cannot encode summary {type(summary).__name__}")


def _decode_summary(
    data: Optional[Dict[str, Any]], vocabulary: Vocabulary
) -> Optional[ValueSummary]:
    if data is None:
        return None
    try:
        kind = data.get("kind")
        if kind == "histogram":
            return _decode_histogram(data)
        if kind == "wavelet":
            return _decode_wavelet(data)
        if kind == "pst":
            return _decode_pst(data)
        if kind == "ebth":
            return _decode_ebth(data, vocabulary)
    except SynopsisFormatError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as err:
        raise SynopsisFormatError(f"corrupt {kind!r} summary: {err}") from err
    raise SynopsisFormatError(f"unknown summary kind {kind!r}")


# -- synopsis encoding --------------------------------------------------------


def synopsis_to_dict(synopsis: XClusterSynopsis) -> Dict[str, Any]:
    """Encode a synopsis (and its shared vocabulary) as plain data."""
    vocabulary = _find_vocabulary(synopsis)
    return {
        "format": FORMAT_VERSION,
        "root": synopsis.root_id,
        "vocabulary": list(vocabulary) if vocabulary is not None else [],
        "nodes": [
            {
                "id": node.node_id,
                "label": node.label,
                "type": node.value_type.value,
                "count": node.count,
                "vsumm": _encode_summary(node.vsumm),
                "children": sorted(
                    (child_id, avg) for child_id, avg in node.children.items()
                ),
            }
            for node in sorted(synopsis, key=lambda n: n.node_id)
        ],
    }


def _find_vocabulary(synopsis: XClusterSynopsis) -> Optional[Vocabulary]:
    for node in synopsis.valued_nodes():
        if isinstance(node.vsumm, TextSummary):
            return node.vsumm.ebth.vocabulary
    return None


def synopsis_from_dict(
    data: Dict[str, Any], verify: bool = True
) -> XClusterSynopsis:
    """Rebuild a synopsis previously encoded by :func:`synopsis_to_dict`.

    Args:
        data: the encoded synopsis.
        verify: validate graph invariants after decoding (default).
            Pass ``False`` to load a suspect synopsis *without* raising,
            e.g. so ``python -m repro check`` can hand it to the
            invariant auditor and report every breach structurally.
            Relaxed loads also defer value-summary decoding to first
            access, so auditing a huge synopsis's graph shape does not
            pay the full payload decode; a corrupt summary then raises
            :class:`SynopsisFormatError` when dereferenced.
    """
    if data.get("format") != FORMAT_VERSION:
        raise SynopsisFormatError(
            f"unsupported format version {data.get('format')!r}"
        )
    vocabulary = Vocabulary()
    for term in data.get("vocabulary", []):
        vocabulary.intern(term)

    synopsis = XClusterSynopsis()
    nodes_by_id: Dict[int, SynopsisNode] = {}
    for encoded in data["nodes"]:
        node = SynopsisNode(
            int(encoded["id"]),
            encoded["label"],
            ValueType(encoded["type"]),
            int(encoded["count"]),
        )
        raw_summary = encoded.get("vsumm")
        if raw_summary is not None:
            if verify:
                node.vsumm = _decode_summary(raw_summary, vocabulary)
            else:
                node.defer_summary(
                    lambda raw=raw_summary: _decode_summary(raw, vocabulary)
                )
        if node.node_id in nodes_by_id:
            raise SynopsisFormatError(f"duplicate node id {node.node_id}")
        nodes_by_id[node.node_id] = node
        synopsis.nodes[node.node_id] = node
    synopsis._next_id = max(nodes_by_id, default=-1) + 1

    for encoded in data["nodes"]:
        node = nodes_by_id[int(encoded["id"])]
        for child_id, average in encoded["children"]:
            child = nodes_by_id.get(int(child_id))
            if child is None:
                raise SynopsisFormatError(
                    f"edge {node.node_id}->{child_id} targets a missing node"
                )
            synopsis.add_edge(node, child, float(average))

    root_id = data.get("root")
    if root_id is not None:
        if int(root_id) not in nodes_by_id:
            raise SynopsisFormatError(f"root id {root_id} missing")
        synopsis.root_id = int(root_id)
    if verify:
        synopsis.validate()
    return synopsis


def save_synopsis(synopsis: XClusterSynopsis, path: str) -> None:
    """Write a synopsis to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(synopsis_to_dict(synopsis), handle)


def load_synopsis(path: str, verify: bool = True) -> XClusterSynopsis:
    """Read a synopsis saved as JSON *or* as a binary snapshot.

    The format is auto-detected from the file's magic bytes, so every
    loading surface (``estimate``, ``check --synopsis``, the daemon)
    accepts both interchange JSON and the mmap snapshot format of
    :mod:`repro.core.snapshot` transparently.

    ``verify=False`` skips graph validation (see :func:`synopsis_from_dict`).
    """
    from repro.core import snapshot as _snapshot

    with open(path, "rb") as handle:
        head = handle.read(len(_snapshot.SNAPSHOT_MAGIC))
    if head == _snapshot.SNAPSHOT_MAGIC:
        return _snapshot.load_snapshot(path, verify=verify)
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as err:
            raise SynopsisFormatError(f"not a synopsis file: {err}") from err
    return synopsis_from_dict(data, verify=verify)

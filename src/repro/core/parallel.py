"""Process-pool start-method selection for the parallel paths.

The candidate-scoring pool (:func:`repro.core.scoring.
score_pairs_parallel`) and the batched estimation pool
(:func:`repro.core.estimation.serving.estimate_many`) both prefer the
``fork`` start method: the synopsis is inherited by the children
through copy-on-write and never pickled.  Platforms without ``fork``
(Windows, macOS spawn-default builds, sandboxes that disable it) fall
back to ``spawn``, where the pool initargs are pickled into each worker
instead — a slower start, but the same results.  When neither start
method is available the callers run serially.

Both pools route their context selection through :func:`pool_context`
so the fallback order lives in one place and tests can force a specific
path by monkeypatching :data:`START_METHODS`.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

#: Pool start methods in preference order.  ``fork`` shares the parent
#: address space; ``spawn`` pickles the initializer arguments.  Tests
#: monkeypatch this tuple to force the spawn or serial fallback.
START_METHODS = ("fork", "spawn")


def pool_context() -> Optional[multiprocessing.context.BaseContext]:
    """The first available start method's context; ``None`` means serial.

    Unknown or unsupported method names (``multiprocessing.get_context``
    raises ``ValueError``) are skipped rather than raised, so callers
    can treat ``None`` as the single "no pools here" signal.
    """
    for method in START_METHODS:
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return None

"""XCLUSTERBUILD: two-phase synopsis construction (paper Section 4.3).

Phase 1 — **structure-value merge** — compresses the reference synopsis'
graph down to the structural budget ``B_str`` by repeatedly applying the
candidate merge with the smallest *marginal loss* (Δ per byte saved),
using the level-bounded candidate pool of :mod:`repro.core.pool`:
merges start among leaves (level 0/1) and the level bound grows as
merged nodes make their parents' merges attractive.

Phase 2 — **value-summary compression** — compresses the per-node value
summaries down to the value budget ``B_val`` by repeatedly applying the
cheapest ``hist_cmprs`` / ``st_cmprs`` / ``tv_cmprs`` step, ranked by the
same marginal-loss rule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.distance import SelectivityCache, compression_delta
from repro.core.pool import CandidatePool, build_pool
from repro.core.scoring import ScoringEngine
from repro.core.reference import Document, LabelPath, build_reference_synopsis
from repro.core.sizing import structural_size_bytes, value_size_bytes
from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.kernels.queue import SummaryStepper, make_stepper
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    SummaryConfig,
    TextSummary,
    ValueSummary,
)
#: Stepper family -> the BuildStats timer its advances accumulate into.
def _profile_violation(message: str):
    """Wrap a scoring-engine staleness finding as a check Violation."""
    from repro.check.invariants import Violation

    return Violation("scoring-profile", message)


_FAMILY_TIMERS = {
    "hist_cmprs": "hist_cmprs_seconds",
    "st_cmprs": "st_cmprs_seconds",
    "tv_cmprs": "tv_cmprs_seconds",
    "value_cmprs": "other_cmprs_seconds",
}


@dataclass
class BuildConfig:
    """Parameters of XCLUSTERBUILD.

    Attributes:
        structural_budget: ``B_str`` in bytes (graph nodes + edges).
        value_budget: ``B_val`` in bytes (all value summaries).
        pool_max: ``H_m``, the maximum candidate-pool size.
        pool_min: ``H_l``, the pool size at which it is replenished.
        predicate_limit: atomic predicates per summary in the Δ metric.
        neighbors: similarity neighbors per node during pool generation.
        histogram_step: buckets removed per ``hist_cmprs`` step.
        string_step: PST leaves pruned per ``st_cmprs`` step.
        text_step: terms demoted per ``tv_cmprs`` step.
        scoring: candidate-scoring implementation — ``"vectorized"``
            (the profile-backed engine, default) or ``"scalar"`` (the
            reference Δ implementation, kept for parity testing and
            benchmarking against the pre-optimization path).
        value_engine: phase-2 compression execution — ``"kernel"``
            (incremental per-node steppers backed by
            :mod:`repro.values.kernels`, default) or ``"reference"``
            (the scalar oracles re-run from scratch per step; same
            decisions bit-for-bit, kept for parity and benchmarking).
        workers: processes for parallel pool construction; 1 (default)
            keeps pool builds serial.  Only the vectorized engine fans
            out; scalar scoring ignores this knob.
        audit: run the :mod:`repro.check` invariant auditor on the
            compressed synopsis; violations land in
            :attr:`BuildStats.audit_violations`.  Off by default (it
            adds a full synopsis walk per build).
        summary: construction knobs for the detailed reference summaries.
    """

    structural_budget: int = 4096
    value_budget: int = 16384
    pool_max: int = 10000
    pool_min: int = 5000
    predicate_limit: int = 32
    neighbors: int = 8
    histogram_step: int = 1
    string_step: int = 8
    text_step: int = 4
    scoring: str = "vectorized"
    value_engine: str = "kernel"
    workers: int = 1
    audit: bool = False
    summary: SummaryConfig = field(default_factory=SummaryConfig)


@dataclass
class BuildStats:
    """Diagnostics of one construction run.

    Beyond the outcome counters, the stats carry the construction
    profiling layer: per-phase wall-clock timers, Δ-evaluation counts,
    selectivity-cache and profile hit rates (vectorized scoring only),
    and the candidate-pool trim churn.
    """

    merges_applied: int = 0
    value_steps_applied: int = 0
    pool_rebuilds: int = 0
    final_structural_bytes: int = 0
    final_value_bytes: int = 0
    structural_budget_met: bool = False
    value_budget_met: bool = False
    reference_nodes: int = 0
    final_nodes: int = 0
    #: Wall-clock seconds spent inside ``build_pool`` calls.
    pool_build_seconds: float = 0.0
    #: Wall-clock seconds of phase 1 (structure-value merge).
    merge_phase_seconds: float = 0.0
    #: Wall-clock seconds of phase 2 (value-summary compression).
    value_phase_seconds: float = 0.0
    #: Δ evaluations: merge scoring (pool + rescoring) and value steps.
    scoring_calls: int = 0
    #: Selectivity resolutions served from / missing the shared cache.
    selectivity_cache_hits: int = 0
    selectivity_cache_misses: int = 0
    #: Selectivity-profile reuse across candidates and pool rebuilds.
    profile_hits: int = 0
    profile_misses: int = 0
    #: Candidate-pool capacity trims and candidates evicted by them.
    pool_trims: int = 0
    candidates_trimmed: int = 0
    #: Processes used for pool construction (1 = serial).
    workers_used: int = 1
    #: Phase-2 compression engine actually used ("kernel"/"reference").
    value_engine_used: str = "kernel"
    #: Phase-2 wall-clock split: seconds inside compression advances,
    #: per summary family, plus Δ evaluation of the resulting candidates.
    hist_cmprs_seconds: float = 0.0
    st_cmprs_seconds: float = 0.0
    tv_cmprs_seconds: float = 0.0
    other_cmprs_seconds: float = 0.0
    value_delta_seconds: float = 0.0
    #: Phase-2 heap pops discarded by lazy revalidation.
    value_stale_pops: int = 0
    #: Invariant violations found by the post-build audit (only
    #: populated when :attr:`BuildConfig.audit` is on; each entry is a
    #: ``repro.check.invariants.Violation``).
    audit_violations: list = field(default_factory=list)

    @property
    def selectivity_cache_hit_rate(self) -> float:
        """Fraction of cache-eligible selectivity lookups served cached."""
        total = self.selectivity_cache_hits + self.selectivity_cache_misses
        return self.selectivity_cache_hits / total if total else 0.0

    @property
    def profile_hit_rate(self) -> float:
        """Fraction of profile requests served without a rebuild."""
        total = self.profile_hits + self.profile_misses
        return self.profile_hits / total if total else 0.0


@dataclass(order=True)
class _ValueCandidate:
    """One entry of the phase-2 lazy-revalidation priority queue.

    Ordered by ``(marginal_loss, node_id)`` — the node id makes equal
    losses pop in a canonical order, independent of heap history (and
    therefore identical between the kernel and reference engines).
    """

    marginal_loss: float
    node_id: int
    #: The summary this candidate was computed against; the candidate is
    #: stale once the node carries a different object.
    source_summary: ValueSummary = field(compare=False)
    compressed: ValueSummary = field(compare=False)
    delta: float = field(compare=False)
    saving: int = field(compare=False)


class XClusterBuilder:
    """Builds an XCluster synopsis for a storage budget (paper Figure 5)."""

    def __init__(self, config: Optional[BuildConfig] = None) -> None:
        self.config = config if config is not None else BuildConfig()
        if self.config.scoring not in ("vectorized", "scalar"):
            raise ValueError(
                f"unknown scoring mode {self.config.scoring!r}; "
                "expected 'vectorized' or 'scalar'"
            )
        if self.config.value_engine not in ("kernel", "reference"):
            raise ValueError(
                f"unknown value engine {self.config.value_engine!r}; "
                "expected 'kernel' or 'reference'"
            )
        self.stats = BuildStats()
        self._cache: SelectivityCache = {}
        self._engine: Optional[ScoringEngine] = None

    # -- public API -----------------------------------------------------------

    def build(
        self,
        document: Document,
        value_paths: Optional[Sequence[LabelPath]] = None,
    ) -> XClusterSynopsis:
        """Construct a budgeted synopsis directly from a document.

        ``document`` is either an object :class:`XMLTree` or a
        :class:`~repro.xmltree.columnar.ColumnarDocument`; the two
        substrates produce bit-identical synopses.
        """
        reference = build_reference_synopsis(
            document, value_paths, self.config.summary
        )
        return self.compress(reference)

    def compress(self, synopsis: XClusterSynopsis) -> XClusterSynopsis:
        """Compress an existing (reference) synopsis in place to budget.

        Returns the same synopsis object for convenience.
        """
        self.stats = BuildStats(reference_nodes=len(synopsis))
        self.stats.workers_used = max(1, self.config.workers)
        self.stats.value_engine_used = self.config.value_engine
        self._cache = {}
        self._engine = (
            ScoringEngine(synopsis, self.config.predicate_limit, self._cache)
            if self.config.scoring == "vectorized"
            else None
        )
        started = perf_counter()
        self._merge_phase(synopsis)
        self.stats.merge_phase_seconds = perf_counter() - started
        started = perf_counter()
        self._value_phase(synopsis)
        self.stats.value_phase_seconds = perf_counter() - started
        if self._engine is not None:
            self.stats.selectivity_cache_hits = self._engine.cache_hits
            self.stats.selectivity_cache_misses = self._engine.cache_misses
            self.stats.profile_hits = self._engine.profile_hits
            self.stats.profile_misses = self._engine.profile_misses
        self.stats.final_structural_bytes = structural_size_bytes(synopsis)
        self.stats.final_value_bytes = value_size_bytes(synopsis)
        self.stats.structural_budget_met = (
            self.stats.final_structural_bytes <= self.config.structural_budget
        )
        self.stats.value_budget_met = (
            self.stats.final_value_bytes <= self.config.value_budget
        )
        self.stats.final_nodes = len(synopsis)
        if self.config.audit:
            # Imported lazily: repro.check depends on this module.
            from repro.check.invariants import InvariantAuditor

            auditor = InvariantAuditor(
                predicate_limit=self.config.predicate_limit
            )
            self.stats.audit_violations = auditor.audit(synopsis)
            if self._engine is not None:
                self.stats.audit_violations.extend(
                    _profile_violation(message)
                    for message in self._engine.audit_profiles()
                )
        return synopsis

    # -- phase 1: structure-value merge ------------------------------------------

    def _build_pool(
        self,
        synopsis: XClusterSynopsis,
        level_limit: int,
        levels: Dict[int, int],
    ) -> CandidatePool:
        """One timed ``build_pool`` call with the configured scoring path."""
        config = self.config
        started = perf_counter()
        pool = build_pool(
            synopsis,
            config.pool_max,
            level_limit,
            levels,
            config.predicate_limit,
            config.neighbors,
            self._cache,
            engine=self._engine,
            workers=config.workers if self._engine is not None else 1,
        )
        self.stats.pool_build_seconds += perf_counter() - started
        self.stats.pool_rebuilds += 1
        return pool

    def _collect_pool_stats(self, pool: CandidatePool) -> None:
        """Fold a retiring pool's counters into the build stats."""
        self.stats.scoring_calls += pool.scoring_calls
        self.stats.pool_trims += pool.trims
        self.stats.candidates_trimmed += pool.candidates_trimmed

    def _merge_phase(self, synopsis: XClusterSynopsis) -> None:
        config = self.config
        structural = structural_size_bytes(synopsis)
        if structural <= config.structural_budget:
            return

        levels = synopsis.levels()
        max_level_cap = max(levels.values(), default=0) + 1
        level_limit = 1
        pool = self._build_pool(synopsis, level_limit, levels)
        group_index = self._group_index(synopsis)

        while structural > config.structural_budget:
            drain_floor = (
                0
                if level_limit >= max_level_cap
                else min(config.pool_min, len(pool) // 2)
            )
            stage_max_new_level = 0
            progressed = False
            while len(pool) > drain_floor and structural > config.structural_budget:
                candidate = pool.pop_best()
                if candidate is None:
                    break
                u_id, v_id = candidate.u_id, candidate.v_id
                new_level = min(levels.get(u_id, 0), levels.get(v_id, 0))
                merged = synopsis.merge_nodes(u_id, v_id)
                structural -= candidate.size_saving
                progressed = True
                self.stats.merges_applied += 1
                levels[merged.node_id] = new_level
                stage_max_new_level = max(stage_max_new_level, new_level)
                self._update_group_index(group_index, merged, u_id, v_id)
                pool.bump_versions(
                    [merged.node_id, *merged.parents, *merged.children]
                )
                self._add_local_candidates(
                    pool, group_index, merged, levels, level_limit
                )
            if structural <= config.structural_budget:
                break
            next_limit = max(level_limit + 1, stage_max_new_level + 1)
            if not progressed and len(pool) == 0 and level_limit >= max_level_cap:
                break  # no compatible merges remain anywhere
            level_limit = min(next_limit, max_level_cap)
            levels = synopsis.levels()
            max_level_cap = max(levels.values(), default=0) + 1
            self._collect_pool_stats(pool)
            pool = self._build_pool(synopsis, level_limit, levels)
            if len(pool) == 0 and level_limit >= max_level_cap:
                break
        self._collect_pool_stats(pool)

    @staticmethod
    def _group_index(synopsis: XClusterSynopsis) -> Dict[Tuple, List[int]]:
        groups: Dict[Tuple, List[int]] = {}
        for node in synopsis:
            groups.setdefault(node.merge_key(), []).append(node.node_id)
        return groups

    @staticmethod
    def _update_group_index(
        groups: Dict[Tuple, List[int]],
        merged: SynopsisNode,
        u_id: int,
        v_id: int,
    ) -> None:
        members = groups.setdefault(merged.merge_key(), [])
        members[:] = [m for m in members if m not in (u_id, v_id)]
        members.append(merged.node_id)

    def _add_local_candidates(
        self,
        pool: CandidatePool,
        groups: Dict[Tuple, List[int]],
        merged: SynopsisNode,
        levels: Dict[int, int],
        level_limit: int,
    ) -> None:
        """Pair a freshly merged node with a few compatible peers.

        Full similarity-sorted generation happens at pool replenish time;
        here a bounded number of peers keeps per-merge cost constant.
        """
        members = groups.get(merged.merge_key(), [])
        budget = self.config.neighbors * 2
        added = 0
        for peer_id in reversed(members):
            if peer_id == merged.node_id:
                continue
            if levels.get(peer_id, 0) > level_limit:
                continue
            pool.push_pair(merged.node_id, peer_id)
            added += 1
            if added >= budget:
                break
        pool.enforce_capacity()

    # -- phase 2: value-summary compression -----------------------------------------

    def _compression_step(self, summary: ValueSummary) -> int:
        if isinstance(summary, HistogramSummary):
            return self.config.histogram_step
        if isinstance(summary, StringSummary):
            return self.config.string_step
        if isinstance(summary, TextSummary):
            return self.config.text_step
        return 1

    def _advance_stepper(
        self, node: SynopsisNode, steppers: Dict[int, SummaryStepper]
    ) -> Optional[ValueSummary]:
        """One timed compression advance on the node's persistent stepper.

        The stepper is lazily revalidated: if the node's summary is no
        longer the one the stepper's state continues from (first visit,
        or the summary was replaced outside the stepper's own chain), a
        fresh stepper is created from the current summary.
        """
        summary = node.vsumm
        stepper = steppers.get(node.node_id)
        if stepper is None or stepper.expected is not summary:
            stepper = make_stepper(summary, self.config.value_engine)
            steppers[node.node_id] = stepper
        started = perf_counter()
        compressed = stepper.advance(self._compression_step(summary))
        elapsed = perf_counter() - started
        timer = _FAMILY_TIMERS.get(stepper.family, "other_cmprs_seconds")
        setattr(self.stats, timer, getattr(self.stats, timer) + elapsed)
        return compressed

    def _value_candidate(
        self, node: SynopsisNode, steppers: Dict[int, SummaryStepper]
    ) -> Optional[_ValueCandidate]:
        summary = node.vsumm
        if summary is None or not summary.can_compress:
            return None
        compressed = self._advance_stepper(node, steppers)
        if compressed is None:
            return None
        saving = summary.size_bytes() - compressed.size_bytes()
        if saving <= 0:
            return None
        self.stats.scoring_calls += 1
        started = perf_counter()
        if self._engine is not None:
            delta = self._engine.compression_delta(node, compressed)
        else:
            delta = compression_delta(
                node, compressed, self.config.predicate_limit, self._cache
            )
        self.stats.value_delta_seconds += perf_counter() - started
        return _ValueCandidate(
            marginal_loss=delta / saving,
            node_id=node.node_id,
            source_summary=summary,
            compressed=compressed,
            delta=delta,
            saving=saving,
        )

    def _value_phase(self, synopsis: XClusterSynopsis) -> None:
        config = self.config
        value_size = value_size_bytes(synopsis)
        if value_size <= config.value_budget:
            return
        #: node id -> the persistent compression stepper for its summary
        #: chain (kernel engine: incremental heaps/orders carried across
        #: successive steps on the same node).
        steppers: Dict[int, SummaryStepper] = {}
        heap: List[_ValueCandidate] = []
        for node in synopsis.valued_nodes():
            candidate = self._value_candidate(node, steppers)
            if candidate is not None:
                heap.append(candidate)
        heapq.heapify(heap)
        while heap and value_size > config.value_budget:
            candidate = heapq.heappop(heap)
            node = synopsis.nodes.get(candidate.node_id)
            if node is None or node.vsumm is not candidate.source_summary:
                self.stats.value_stale_pops += 1
                continue  # stale: node merged away or summary replaced
            node.vsumm = candidate.compressed
            value_size -= candidate.saving
            self.stats.value_steps_applied += 1
            follow_up = self._value_candidate(node, steppers)
            if follow_up is not None:
                heapq.heappush(heap, follow_up)


def build_xcluster(
    document: Document,
    structural_budget: int,
    value_budget: int,
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[BuildConfig] = None,
) -> XClusterSynopsis:
    """One-call construction of a budgeted XCluster synopsis.

    Args:
        document: the document to summarize — an object
            :class:`XMLTree` or a columnar document.
        structural_budget: ``B_str`` in bytes.
        value_budget: ``B_val`` in bytes.
        value_paths: label paths under which value summaries are kept.
        config: overrides for the remaining knobs; the caller's object
            is never mutated — the budgets are applied to a copy.

    Returns:
        The compressed synopsis.
    """
    if config is None:
        config = BuildConfig(
            structural_budget=structural_budget, value_budget=value_budget
        )
    else:
        config = replace(
            config,
            structural_budget=structural_budget,
            value_budget=value_budget,
        )
    builder = XClusterBuilder(config)
    return builder.build(document, value_paths)

"""XCluster core: the synopsis model, construction, and estimation.

This package implements the paper's primary contribution:

* :mod:`repro.core.synopsis` — the type-respecting node-partitioning
  graph-synopsis model with element counts, average per-edge child
  counters, and per-node value summaries (Definition 3.1);
* :mod:`repro.core.reference` — the detailed reference synopsis (a
  path-respecting count-stable refinement, Section 4.3);
* :mod:`repro.core.distance` — the localized Δ(S, S′) structure-value
  clustering error metric over atomic query paths (Section 4.1);
* :mod:`repro.core.scoring` — the vectorized candidate-scoring engine
  (per-node selectivity profiles, factored child moments, and opt-in
  parallel pool construction);
* :mod:`repro.core.builder` — the two-phase XCLUSTERBUILD algorithm
  (structure-value merge with a marginal-loss candidate pool, then
  value-summary compression; Figures 5 and 6);
* :mod:`repro.core.estimator` — embedding-based twig selectivity
  estimation under generalized Path-Value Independence (Section 5; the
  scalar reference oracle);
* :mod:`repro.core.estimation` — the compiled twig-plan estimation
  engine: synopsis-level transition/reach indexes with cross-query
  caching, batched workload serving over a process pool, and the
  ``EstimatorStats`` observability layer;
* :mod:`repro.core.sizing` — byte-accurate storage accounting;
* :mod:`repro.core.baselines` — tag-only and structure-only summaries
  plus naive merge policies used by the ablation benchmarks.
"""

from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.core.reference import build_reference_synopsis, build_tag_synopsis
from repro.core.distance import merge_delta, compression_delta
from repro.core.scoring import ScoringEngine, SelectivityProfile
from repro.core.builder import BuildConfig, BuildStats, XClusterBuilder, build_xcluster
from repro.core.approximate import DocumentSynthesizer, synthesize_document
from repro.core.autobudget import (
    AutoBudgetResult,
    allocate_budget,
    build_xcluster_auto,
)
from repro.core.estimator import XClusterEstimator, estimate_selectivity
from repro.core.estimation import (
    CompiledEstimator,
    CompiledPlan,
    EstimatorStats,
    SynopsisIndex,
    WorkloadEstimator,
    estimate_many,
)
from repro.core.explain import EstimateExplanation, explain
from repro.core.serialization import (
    SynopsisFormatError,
    load_synopsis,
    save_synopsis,
    synopsis_from_dict,
    synopsis_to_dict,
)
from repro.core.snapshot import (
    SNAPSHOT_MAGIC,
    is_snapshot,
    load_snapshot,
    save_snapshot,
    snapshot_to_bytes,
    synopsis_from_snapshot,
)
from repro.core.sizing import structural_size_bytes, value_size_bytes, total_size_bytes

__all__ = [
    "SynopsisNode",
    "XClusterSynopsis",
    "build_reference_synopsis",
    "build_tag_synopsis",
    "merge_delta",
    "compression_delta",
    "ScoringEngine",
    "SelectivityProfile",
    "BuildConfig",
    "BuildStats",
    "XClusterBuilder",
    "build_xcluster",
    "XClusterEstimator",
    "estimate_selectivity",
    "CompiledEstimator",
    "CompiledPlan",
    "EstimatorStats",
    "SynopsisIndex",
    "WorkloadEstimator",
    "estimate_many",
    "DocumentSynthesizer",
    "synthesize_document",
    "EstimateExplanation",
    "explain",
    "AutoBudgetResult",
    "allocate_budget",
    "build_xcluster_auto",
    "SynopsisFormatError",
    "save_synopsis",
    "load_synopsis",
    "synopsis_to_dict",
    "synopsis_from_dict",
    "SNAPSHOT_MAGIC",
    "is_snapshot",
    "save_snapshot",
    "load_snapshot",
    "snapshot_to_bytes",
    "synopsis_from_snapshot",
    "structural_size_bytes",
    "value_size_bytes",
    "total_size_bytes",
]

"""Reference-synopsis construction (paper Section 4.3).

The reference synopsis is the detailed starting point of XCLUSTERBUILD:
a refinement of the lossless *count-stable* summary in which

* every cluster groups elements with the same number of children in every
  other cluster (count stability), and
* every cluster has exactly one incoming path — all member elements have
  their parents in a single cluster — capturing path-to-value
  correlations (the reference synopsis of a tree document is itself a
  tree).

The partition is the coarsest fixpoint of a both-ways refinement: an
element's class is refined by its label path, its parent's class, and
the multiset of its children's classes, iterated to stability.  Classes
only ever split, so the iteration converges in at most the document
diameter; stability is detected when the class count stops growing.

Value summaries are attached only to clusters reachable by the
caller-specified *value paths* (the paper provides 7 such paths for IMDB
and 9 for XMark); each summarized cluster gets a detailed summary built
from the values of its extent, so distinct structural contexts keep
distinct value distributions — the path-to-value correlations the paper
calls out.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.summary import SummaryConfig, build_summary
from repro.xmltree.columnar import KIND_TO_TYPE, ColumnarDocument
from repro.xmltree.paths import LabelPath, matches_any
from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ValueType

#: Either document substrate: the object tree or the columnar store.
#: Construction is substrate-generic — both feed the same class
#: refinement and assembly code through flat per-index columns, so the
#: resulting synopses are bit-identical (pinned by tests and the
#: differential harness's columnar round).
Document = Union[XMLTree, ColumnarDocument]

#: Safety cap on refinement iterations (convergence is far faster).
MAX_REFINEMENT_ROUNDS = 200


def _document_order(tree: XMLTree) -> Tuple[List[XMLElement], List[int], List[LabelPath]]:
    """Pre-order element list with parallel parent-index and path arrays."""
    elements: List[XMLElement] = []
    parents: List[int] = []
    paths: List[LabelPath] = []
    index_of: Dict[int, int] = {}
    stack: List[Tuple[XMLElement, int, LabelPath]] = [
        (tree.root, -1, (tree.root.label,))
    ]
    while stack:
        element, parent_index, path = stack.pop()
        index = len(elements)
        elements.append(element)
        parents.append(parent_index)
        paths.append(path)
        index_of[id(element)] = index
        for child in reversed(element.children):
            stack.append((child, index, path + (child.label,)))
    return elements, parents, paths


def _refine_classes(
    size: int,
    parents: Sequence[int],
    initial: List[int],
) -> List[int]:
    """Iterate both-ways refinement to the coarsest stable fixpoint.

    Substrate-neutral: only the element count and the preorder parent
    column are consulted (``parents`` may be a list or an ``array``).
    """
    classes = initial
    class_count = len(set(classes))
    children_of: List[List[int]] = [[] for _ in range(size)]
    for index, parent_index in enumerate(parents):
        if parent_index >= 0:
            children_of[parent_index].append(index)

    for _ in range(MAX_REFINEMENT_ROUNDS):
        interned: Dict[Tuple, int] = {}
        refined: List[int] = [0] * size
        for index in range(size):
            child_counts: Dict[int, int] = {}
            for child_index in children_of[index]:
                child_class = classes[child_index]
                child_counts[child_class] = child_counts.get(child_class, 0) + 1
            parent_class = classes[parents[index]] if parents[index] >= 0 else -1
            key = (
                classes[index],
                parent_class,
                tuple(sorted(child_counts.items())),
            )
            refined[index] = interned.setdefault(key, len(interned))
        refined_count = len(interned)
        if refined_count == class_count:
            return classes  # refinement is a pure split: same count => stable
        classes = refined
        class_count = refined_count
    return classes


def _assemble_synopsis(
    size: int,
    parents: Sequence[int],
    labels: Sequence[str],
    vtypes: Sequence[ValueType],
    value_of: Callable[[int], object],
    path_of: Callable[[int], LabelPath],
    classes: List[int],
    value_paths: Optional[Sequence[LabelPath]],
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """Materialize a synopsis from per-index columns and a class column.

    The substrate-neutral core of every construction path: the object
    tree and the columnar store both flatten into (labels, vtypes,
    parents) columns plus value/path accessors, so class aggregation,
    node creation, and edge creation run in one shared order — making
    the two substrates' synopses bit-identical.
    """
    config = config if config is not None else SummaryConfig()
    summarize_all = value_paths is None
    exact_paths: Set[LabelPath] = {
        path for path in (value_paths or ()) if "*" not in path
    }
    wildcard_paths: List[LabelPath] = [
        path for path in (value_paths or ()) if "*" in path
    ]

    def path_wanted(path: LabelPath) -> bool:
        return (
            summarize_all
            or path in exact_paths
            or matches_any(path, wildcard_paths)
        )

    counts: Dict[int, int] = {}
    node_labels: Dict[int, str] = {}
    node_vtypes: Dict[int, ValueType] = {}
    values: Dict[int, list] = {}
    edge_totals: Dict[Tuple[int, int], int] = {}

    for index in range(size):
        key = classes[index]
        counts[key] = counts.get(key, 0) + 1
        node_labels[key] = labels[index]
        vtype = vtypes[index]
        node_vtypes[key] = vtype
        if (
            with_summaries
            and vtype is not ValueType.NULL
            and path_wanted(path_of(index))
        ):
            values.setdefault(key, []).append(value_of(index))
        parent_index = parents[index]
        if parent_index >= 0:
            edge = (classes[parent_index], key)
            edge_totals[edge] = edge_totals.get(edge, 0) + 1

    synopsis = XClusterSynopsis()
    node_of: Dict[int, SynopsisNode] = {}
    for key, count in counts.items():
        vsumm = None
        if key in values:
            vsumm = build_summary(node_vtypes[key], values[key], config)
        node_of[key] = synopsis.add_node(
            node_labels[key], node_vtypes[key], count, vsumm
        )
    for (parent_key, child_key), total in edge_totals.items():
        synopsis.add_edge(
            node_of[parent_key], node_of[child_key], total / counts[parent_key]
        )
    synopsis.set_root(node_of[classes[0]])
    return synopsis


def build_synopsis_from_classes(
    elements: List[XMLElement],
    parents: List[int],
    paths: List[LabelPath],
    classes: List[int],
    value_paths: Optional[Sequence[LabelPath]],
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """Materialize a synopsis from a per-element class assignment."""
    return _assemble_synopsis(
        len(elements),
        parents,
        [element.label for element in elements],
        [element.value_type for element in elements],
        lambda index: elements[index].value,
        paths.__getitem__,
        classes,
        value_paths,
        config,
        with_summaries,
    )


def _columnar_columns(
    doc: ColumnarDocument,
) -> Tuple[List[str], List[ValueType]]:
    """Decode the interned label/kind columns once, as flat lists."""
    table = doc.label_table
    labels = [table[label_id] for label_id in doc.labels]
    vtypes = [KIND_TO_TYPE[kind] for kind in doc.value_kind]
    return labels, vtypes


def _columnar_reference_classes(doc: ColumnarDocument) -> List[int]:
    """Initial partition over columnar arrays: (path id, value kind).

    Path ids biject with label-path tuples and kinds with value types,
    both assigned in first-occurrence preorder, so the produced class
    column is identical to the object path's ``(path, value_type)``
    interning.
    """
    interned: Dict[int, int] = {}
    pids = doc.path_ids
    kinds = doc.value_kind
    setdefault = interned.setdefault
    return [
        setdefault((pids[i] << 2) | kinds[i], len(interned))
        for i in range(len(pids))
    ]


def build_reference_synopsis(
    document: Document,
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """The detailed reference synopsis: count-stable, one path per cluster.

    ``document`` may be an object :class:`XMLTree` or a
    :class:`~repro.xmltree.columnar.ColumnarDocument`; the columnar path
    partitions directly over the interned id columns (no per-element
    objects, no path tuples except for summarized nodes) and produces a
    bit-identical synopsis.
    """
    if isinstance(document, ColumnarDocument):
        initial = _columnar_reference_classes(document)
        classes = _refine_classes(len(document), document.parent, initial)
        labels, vtypes = _columnar_columns(document)
        return _assemble_synopsis(
            len(document),
            document.parent,
            labels,
            vtypes,
            document.value,
            document.label_path,
            classes,
            value_paths,
            config,
            with_summaries,
        )
    elements, parents, paths = _document_order(document)
    interned: Dict[Tuple, int] = {}
    initial = [
        interned.setdefault((paths[i], elements[i].value_type), len(interned))
        for i in range(len(elements))
    ]
    classes = _refine_classes(len(elements), parents, initial)
    return build_synopsis_from_classes(
        elements, parents, paths, classes, value_paths, config, with_summaries
    )


def _build_with_classifier(
    document: Document,
    classify: Callable[[XMLElement, LabelPath], Hashable],
    columnar_key: Callable[[ColumnarDocument, int], Hashable],
    value_paths: Optional[Sequence[LabelPath]],
    config: Optional[SummaryConfig],
    with_summaries: bool,
) -> XClusterSynopsis:
    if isinstance(document, ColumnarDocument):
        doc = document
        interned: Dict[Hashable, int] = {}
        classes = [
            interned.setdefault(columnar_key(doc, i), len(interned))
            for i in range(len(doc))
        ]
        labels, vtypes = _columnar_columns(doc)
        return _assemble_synopsis(
            len(doc),
            doc.parent,
            labels,
            vtypes,
            doc.value,
            doc.label_path,
            classes,
            value_paths,
            config,
            with_summaries,
        )
    elements, parents, paths = _document_order(document)
    interned = {}
    classes = [
        interned.setdefault(classify(elements[i], paths[i]), len(interned))
        for i in range(len(elements))
    ]
    return build_synopsis_from_classes(
        elements, parents, paths, classes, value_paths, config, with_summaries
    )


def build_path_synopsis(
    document: Document,
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """A coarser summary clustering elements purely by label path.

    An intermediate baseline between the tag synopsis and the full
    count-stable reference.
    """
    return _build_with_classifier(
        document,
        lambda element, path: (path, element.value_type),
        lambda doc, i: (doc.path_ids[i] << 2) | doc.value_kind[i],
        value_paths,
        config,
        with_summaries,
    )


def build_tag_synopsis(
    document: Document,
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """The smallest structural summary: one cluster per (tag, value type).

    This is the paper's "0 KB structural budget" point — the synopsis
    that clusters elements based solely on their tags.
    """
    return _build_with_classifier(
        document,
        lambda element, path: (element.label, element.value_type),
        lambda doc, i: (doc.labels[i] << 2) | doc.value_kind[i],
        value_paths,
        config,
        with_summaries,
    )

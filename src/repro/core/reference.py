"""Reference-synopsis construction (paper Section 4.3).

The reference synopsis is the detailed starting point of XCLUSTERBUILD:
a refinement of the lossless *count-stable* summary in which

* every cluster groups elements with the same number of children in every
  other cluster (count stability), and
* every cluster has exactly one incoming path — all member elements have
  their parents in a single cluster — capturing path-to-value
  correlations (the reference synopsis of a tree document is itself a
  tree).

The partition is the coarsest fixpoint of a both-ways refinement: an
element's class is refined by its label path, its parent's class, and
the multiset of its children's classes, iterated to stability.  Classes
only ever split, so the iteration converges in at most the document
diameter; stability is detected when the class count stops growing.

Value summaries are attached only to clusters reachable by the
caller-specified *value paths* (the paper provides 7 such paths for IMDB
and 9 for XMark); each summarized cluster gets a detailed summary built
from the values of its extent, so distinct structural contexts keep
distinct value distributions — the path-to-value correlations the paper
calls out.
"""

from __future__ import annotations

from collections import Counter
from itertools import islice
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.summary import SummaryConfig, build_summary
from repro.xmltree.columnar import KIND_TO_TYPE, ColumnarDocument
from repro.xmltree.paths import LabelPath, matches_any
from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ValueType

#: Either document substrate: the object tree or the columnar store.
#: Construction is substrate-generic — both feed the same class
#: refinement and assembly code through flat per-index columns, so the
#: resulting synopses are bit-identical (pinned by tests and the
#: differential harness's columnar round).
Document = Union[XMLTree, ColumnarDocument]

#: Safety cap on refinement iterations (convergence is far faster).
MAX_REFINEMENT_ROUNDS = 200


def _document_order(tree: XMLTree) -> Tuple[List[XMLElement], List[int], List[LabelPath]]:
    """Pre-order element list with parallel parent-index and path arrays."""
    elements: List[XMLElement] = []
    parents: List[int] = []
    paths: List[LabelPath] = []
    index_of: Dict[int, int] = {}
    stack: List[Tuple[XMLElement, int, LabelPath]] = [
        (tree.root, -1, (tree.root.label,))
    ]
    while stack:
        element, parent_index, path = stack.pop()
        index = len(elements)
        elements.append(element)
        parents.append(parent_index)
        paths.append(path)
        index_of[id(element)] = index
        for child in reversed(element.children):
            stack.append((child, index, path + (child.label,)))
    return elements, parents, paths


def _refine_classes(
    size: int,
    parents: Sequence[int],
    initial: List[int],
) -> List[int]:
    """Iterate both-ways refinement to the coarsest stable fixpoint.

    Substrate-neutral: only the element count and the preorder parent
    column are consulted (``parents`` may be a list or an ``array``).
    """
    classes = initial
    class_count = len(set(classes))
    children_of: List[List[int]] = [[] for _ in range(size)]
    for index, parent_index in enumerate(parents):
        if parent_index >= 0:
            children_of[parent_index].append(index)

    for _ in range(MAX_REFINEMENT_ROUNDS):
        # The sorted tuple of child classes is multiset-equivalent to the
        # sorted (class, count) items it replaces: two elements get equal
        # keys under one encoding exactly when they do under the other,
        # and keys are interned in the same first-occurrence order — so
        # the class numbering is unchanged, only cheaper to compute.
        parent_classes = list(map(classes.__getitem__, parents))
        if size:
            parent_classes[0] = -1  # the root's parent index is -1
        lookup = classes.__getitem__
        interned: Dict[Tuple, int] = {}
        setdefault = interned.setdefault
        refined = [
            setdefault(
                (own, parent_class, tuple(sorted(map(lookup, kids)))),
                len(interned),
            )
            for own, parent_class, kids in zip(
                classes, parent_classes, children_of
            )
        ]
        refined_count = len(interned)
        if refined_count == class_count:
            return classes  # refinement is a pure split: same count => stable
        classes = refined
        class_count = refined_count
    return classes


def _assemble_synopsis(
    size: int,
    parents: Sequence[int],
    labels: Sequence[str],
    vtypes: Sequence[ValueType],
    value_of: Callable[[int], object],
    path_of: Callable[[int], LabelPath],
    classes: List[int],
    value_paths: Optional[Sequence[LabelPath]],
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """Materialize a synopsis from per-index columns and a class column.

    The substrate-neutral core of every construction path: the object
    tree and the columnar store both flatten into (labels, vtypes,
    parents) columns plus value/path accessors, so class aggregation,
    node creation, and edge creation run in one shared order — making
    the two substrates' synopses bit-identical.
    """
    config = config if config is not None else SummaryConfig()
    summarize_all = value_paths is None
    exact_paths: Set[LabelPath] = {
        path for path in (value_paths or ()) if "*" not in path
    }
    wildcard_paths: List[LabelPath] = [
        path for path in (value_paths or ()) if "*" in path
    ]

    def path_wanted(path: LabelPath) -> bool:
        return (
            summarize_all
            or path in exact_paths
            or matches_any(path, wildcard_paths)
        )

    counts: Dict[int, int] = {}
    node_labels: Dict[int, str] = {}
    node_vtypes: Dict[int, ValueType] = {}
    values: Dict[int, list] = {}
    edge_totals: Dict[Tuple[int, int], int] = {}

    for index in range(size):
        key = classes[index]
        counts[key] = counts.get(key, 0) + 1
        node_labels[key] = labels[index]
        vtype = vtypes[index]
        node_vtypes[key] = vtype
        if (
            with_summaries
            and vtype is not ValueType.NULL
            and path_wanted(path_of(index))
        ):
            values.setdefault(key, []).append(value_of(index))
        parent_index = parents[index]
        if parent_index >= 0:
            edge = (classes[parent_index], key)
            edge_totals[edge] = edge_totals.get(edge, 0) + 1

    synopsis = XClusterSynopsis()
    node_of: Dict[int, SynopsisNode] = {}
    for key, count in counts.items():
        vsumm = None
        if key in values:
            vsumm = build_summary(node_vtypes[key], values[key], config)
        node_of[key] = synopsis.add_node(
            node_labels[key], node_vtypes[key], count, vsumm
        )
    for (parent_key, child_key), total in edge_totals.items():
        synopsis.add_edge(
            node_of[parent_key], node_of[child_key], total / counts[parent_key]
        )
    synopsis.set_root(node_of[classes[0]])
    return synopsis


def build_synopsis_from_classes(
    elements: List[XMLElement],
    parents: List[int],
    paths: List[LabelPath],
    classes: List[int],
    value_paths: Optional[Sequence[LabelPath]],
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """Materialize a synopsis from a per-element class assignment."""
    return _assemble_synopsis(
        len(elements),
        parents,
        [element.label for element in elements],
        [element.value_type for element in elements],
        lambda index: elements[index].value,
        paths.__getitem__,
        classes,
        value_paths,
        config,
        with_summaries,
    )


def _intern_column(keys: List[int]) -> List[int]:
    """Dense class ids for a key column, in first-occurrence order.

    Equivalent to a ``setdefault(key, len(interned))`` scan but runs as
    two C-level passes (``dict.fromkeys`` then a ``map`` lookup).
    """
    ids = {key: index for index, key in enumerate(dict.fromkeys(keys))}
    return list(map(ids.__getitem__, keys))


def _columnar_reference_classes(doc: ColumnarDocument) -> List[int]:
    """Initial partition over columnar arrays: (path id, value kind).

    Path ids biject with label-path tuples and kinds with value types,
    both assigned in first-occurrence preorder, so the produced class
    column is identical to the object path's ``(path, value_type)``
    interning.
    """
    return _intern_column(
        [(pid << 2) | kind for pid, kind in zip(doc.path_ids, doc.value_kind)]
    )


def _assemble_columnar(
    doc: ColumnarDocument,
    classes: List[int],
    value_paths: Optional[Sequence[LabelPath]],
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """Whole-column synopsis assembly over the columnar store.

    Produces exactly what :func:`_assemble_synopsis` produces for the
    same class column — ``Counter`` and ``dict(zip(...))`` preserve the
    per-index loop's first-occurrence insertion order (and its
    last-write-wins label/type values, which are class-constant anyway)
    — but every aggregate runs as a C-level column pass.  Value
    gathering consults a per-path-id wanted bitmap instead of building a
    label-path tuple per element.
    """
    config = config if config is not None else SummaryConfig()
    table = doc.label_table
    kinds = doc.value_kind
    counts = Counter(classes)
    node_labels = dict(zip(classes, map(table.__getitem__, doc.labels)))
    node_vtypes = dict(
        zip(classes, map(KIND_TO_TYPE.__getitem__, kinds))
    )
    edge_totals = Counter(
        zip(
            map(classes.__getitem__, islice(doc.parent, 1, None)),
            islice(classes, 1, None),
        )
    )

    values: Dict[int, list] = {}
    if with_summaries:
        path_total = len(doc.path_parent)
        if value_paths is None:
            wanted = [True] * path_total
        else:
            exact: Set[LabelPath] = {
                path for path in value_paths if "*" not in path
            }
            wildcard: List[LabelPath] = [
                path for path in value_paths if "*" in path
            ]
            wanted = [
                path in exact or matches_any(path, wildcard)
                for path in map(doc.path_tuple, range(path_total))
            ]
        pids = doc.path_ids
        value_of = doc.value
        for index, kind in enumerate(kinds):
            if kind and wanted[pids[index]]:  # kind 0 is KIND_NULL
                values.setdefault(classes[index], []).append(value_of(index))

    synopsis = XClusterSynopsis()
    node_of: Dict[int, SynopsisNode] = {}
    for key, count in counts.items():
        vals = values.get(key)
        vsumm = (
            build_summary(node_vtypes[key], vals, config)
            if vals is not None
            else None
        )
        node_of[key] = synopsis.add_node(
            node_labels[key], node_vtypes[key], count, vsumm
        )
    for (parent_key, child_key), total in edge_totals.items():
        synopsis.add_edge(
            node_of[parent_key], node_of[child_key], total / counts[parent_key]
        )
    synopsis.set_root(node_of[classes[0]])
    return synopsis


def build_reference_synopsis(
    document: Document,
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """The detailed reference synopsis: count-stable, one path per cluster.

    ``document`` may be an object :class:`XMLTree` or a
    :class:`~repro.xmltree.columnar.ColumnarDocument`; the columnar path
    partitions directly over the interned id columns (no per-element
    objects, no path tuples except for summarized nodes) and produces a
    bit-identical synopsis.
    """
    if isinstance(document, ColumnarDocument):
        initial = _columnar_reference_classes(document)
        classes = _refine_classes(len(document), document.parent, initial)
        return _assemble_columnar(
            document, classes, value_paths, config, with_summaries
        )
    elements, parents, paths = _document_order(document)
    interned: Dict[Tuple, int] = {}
    initial = [
        interned.setdefault((paths[i], elements[i].value_type), len(interned))
        for i in range(len(elements))
    ]
    classes = _refine_classes(len(elements), parents, initial)
    return build_synopsis_from_classes(
        elements, parents, paths, classes, value_paths, config, with_summaries
    )


def _build_with_classifier(
    document: Document,
    classify: Callable[[XMLElement, LabelPath], Hashable],
    columnar_keys: Callable[[ColumnarDocument], List[int]],
    value_paths: Optional[Sequence[LabelPath]],
    config: Optional[SummaryConfig],
    with_summaries: bool,
) -> XClusterSynopsis:
    if isinstance(document, ColumnarDocument):
        classes = _intern_column(columnar_keys(document))
        return _assemble_columnar(
            document, classes, value_paths, config, with_summaries
        )
    elements, parents, paths = _document_order(document)
    interned: Dict[Hashable, int] = {}
    classes = [
        interned.setdefault(classify(elements[i], paths[i]), len(interned))
        for i in range(len(elements))
    ]
    return build_synopsis_from_classes(
        elements, parents, paths, classes, value_paths, config, with_summaries
    )


def build_path_synopsis(
    document: Document,
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """A coarser summary clustering elements purely by label path.

    An intermediate baseline between the tag synopsis and the full
    count-stable reference.
    """
    return _build_with_classifier(
        document,
        lambda element, path: (path, element.value_type),
        lambda doc: [
            (pid << 2) | kind
            for pid, kind in zip(doc.path_ids, doc.value_kind)
        ],
        value_paths,
        config,
        with_summaries,
    )


def build_tag_synopsis(
    document: Document,
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[SummaryConfig] = None,
    with_summaries: bool = True,
) -> XClusterSynopsis:
    """The smallest structural summary: one cluster per (tag, value type).

    This is the paper's "0 KB structural budget" point — the synopsis
    that clusters elements based solely on their tags.
    """
    return _build_with_classifier(
        document,
        lambda element, path: (element.label, element.value_type),
        lambda doc: [
            (label_id << 2) | kind
            for label_id, kind in zip(doc.labels, doc.value_kind)
        ],
        value_paths,
        config,
        with_summaries,
    )

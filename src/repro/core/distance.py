"""The localized Δ(S, S′) clustering-error metric (paper Section 4.1).

The impact of a compression step is measured as the change in estimates
for a set of *atomic queries* ``u[p]/c`` localized around the affected
nodes: ``p`` ranges over atomic value predicates of the node's value
summary (prefix ranges / indexed substrings / individual terms, plus the
trivial structural predicate) and ``c`` over the affected children.  With
Path-Value Independence, the estimate of ``u[p]/c`` per element of ``u``
is ``e_S(u, p, c) = σ_p(u) · count(u, c)``, and

    Δ(S, S′) = |u| Σ_p Σ_c (e_S(u,p,c) − e_S′(w,p,c))²
             + |v| Σ_p Σ_c (e_S(v,p,c) − e_S′(w,p,c))².

For *leaf* nodes (no outgoing edges) the sum over children degenerates to
a single virtual unit-count child, so value-only error remains visible.

The fused node's predicate selectivities are computed with the closed
form ``σ_p(w) = (|u| σ_p(u) + |v| σ_p(v)) / |w|`` — exact for histogram
alignment-fusion and term-centroid weighting, and the direct analogue for
PST fusion — which keeps candidate scoring cheap: no summary is actually
fused until a merge is applied.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.query.predicates import Predicate, TruePredicate
from repro.values.summary import ValueSummary

#: Cache type: (value summary, predicate) -> selectivity.  The summary
#: object itself is the key (not its id): holding the reference pins the
#: object so recycled ids cannot alias cache entries across merges.
SelectivityCache = Dict[Tuple["ValueSummary", Predicate], float]


def node_selectivity(
    node: SynopsisNode,
    predicate: Predicate,
    cache: Optional[SelectivityCache] = None,
) -> float:
    """σ_p(u): the fraction of ``node``'s elements satisfying ``predicate``.

    The trivial predicate always has selectivity 1.  Nodes without a value
    summary cannot evaluate value predicates and conservatively report 1
    (the workloads only place predicates on summarized nodes); a predicate
    of the wrong type matches nothing.
    """
    if isinstance(predicate, TruePredicate):
        return 1.0
    if node.vsumm is None:
        return 1.0
    if predicate.value_type is not node.value_type:
        return 0.0
    if cache is None:
        return node.vsumm.selectivity(predicate)
    key = (node.vsumm, predicate)
    value = cache.get(key)
    if value is None:
        value = node.vsumm.selectivity(predicate)
        cache[key] = value
    return value


def atomic_predicates_for(node: SynopsisNode, limit: int) -> List[Predicate]:
    """The atomic predicates contributed by one node (paper Section 4.1).

    Served from the summary's canonical memo: summaries are immutable, so
    repeated Δ evaluations against the same summary (every candidate the
    node participates in) reuse one enumerated predicate set.
    """
    predicates: List[Predicate] = [TruePredicate()]
    if node.vsumm is not None:
        predicates.extend(node.vsumm.canonical_atomic_predicates(limit))
    return predicates


def merge_delta(
    synopsis: XClusterSynopsis,
    u: SynopsisNode,
    v: SynopsisNode,
    predicate_limit: int = 48,
    cache: Optional[SelectivityCache] = None,
) -> float:
    """Δ(S, merge(S, u, v)) over the localized atomic-query set."""
    del synopsis  # the metric is purely local to u and v
    predicates = atomic_predicates_for(u, predicate_limit)
    seen = set(predicates)
    for predicate in atomic_predicates_for(v, predicate_limit):
        if predicate not in seen:
            seen.add(predicate)
            predicates.append(predicate)

    child_ids = set(u.children) | set(v.children)
    if child_ids:
        child_counts = [
            (u.children.get(child_id, 0.0), v.children.get(child_id, 0.0))
            for child_id in child_ids
        ]
    else:
        # Leaf merge: atomic queries degenerate to u[p] with unit count.
        child_counts = [(1.0, 1.0)]

    total = u.count + v.count
    u_share = u.count / total
    v_share = v.count / total
    delta = 0.0
    for predicate in predicates:
        sigma_u = node_selectivity(u, predicate, cache)
        sigma_v = node_selectivity(v, predicate, cache)
        sigma_w = u_share * sigma_u + v_share * sigma_v
        for count_u, count_v in child_counts:
            count_w = u_share * count_u + v_share * count_v
            estimate_w = sigma_w * count_w
            error_u = sigma_u * count_u - estimate_w
            error_v = sigma_v * count_v - estimate_w
            delta += u.count * error_u * error_u + v.count * error_v * error_v
    return delta


def compression_delta(
    node: SynopsisNode,
    compressed: ValueSummary,
    predicate_limit: int = 48,
    cache: Optional[SelectivityCache] = None,
) -> float:
    """Δ(S, S′) for a value-compression step on ``node``.

    The synopsis structure is unchanged, so only the first summand of the
    merge formula applies (with ``w = u``): the estimation-error change of
    the atomic queries ``u[p]/c`` under the coarser summary.
    """
    if node.vsumm is None:
        raise ValueError("compression_delta needs a node with a value summary")
    predicates = node.vsumm.canonical_atomic_predicates(predicate_limit)
    if node.children:
        squared_counts = sum(avg * avg for avg in node.children.values())
    else:
        squared_counts = 1.0
    delta = 0.0
    for predicate in predicates:
        sigma_old = node_selectivity(node, predicate, cache)
        sigma_new = compressed.selectivity(predicate)
        difference = sigma_old - sigma_new
        delta += node.count * difference * difference * squared_counts
    return delta

"""Byte-accurate storage accounting for XCluster synopses.

Mirrors a natural on-disk layout (documented in DESIGN.md):

* 9 bytes per synopsis node — label id (4) + element count (4) +
  value-type tag (1);
* 8 bytes per edge — target node id (4) + average child counter (4);
* value summaries account for themselves (see each summary class).

The split into *structural* and *value* budgets follows the paper's
``B_str`` / ``B_val`` parameters of XCLUSTERBUILD.
"""

from __future__ import annotations

from typing import Dict

from repro.core.synopsis import XClusterSynopsis

#: Bytes per synopsis node (label id + count + type tag).
NODE_BYTES = 9
#: Bytes per synopsis edge (target id + average counter).
EDGE_BYTES = 8


def structural_size_bytes(synopsis: XClusterSynopsis) -> int:
    """Size of the graph part: nodes + edges + edge counters."""
    return NODE_BYTES * len(synopsis) + EDGE_BYTES * synopsis.edge_count


def value_size_bytes(synopsis: XClusterSynopsis) -> int:
    """Size of all value summaries."""
    return sum(node.vsumm.size_bytes() for node in synopsis.valued_nodes())


def value_size_breakdown(synopsis: XClusterSynopsis) -> Dict[str, int]:
    """Value-summary bytes per summary family.

    Keys are lower-cased value-type names (``"numeric"``, ``"string"``,
    ``"text"``); families absent from the synopsis are omitted.  Used by
    the value-kernel benchmarks to report where the value budget went.
    """
    breakdown: Dict[str, int] = {}
    for node in synopsis.valued_nodes():
        family = node.value_type.name.lower()
        breakdown[family] = breakdown.get(family, 0) + node.vsumm.size_bytes()
    return breakdown


def total_size_bytes(synopsis: XClusterSynopsis) -> int:
    """The full synopsis footprint."""
    return structural_size_bytes(synopsis) + value_size_bytes(synopsis)


def merge_size_saving(synopsis: XClusterSynopsis, u_id: int, v_id: int) -> int:
    """Structural bytes saved by ``merge(S, u, v)``, computed locally.

    One node disappears; edges are deduplicated wherever u and v share a
    parent or child (and wherever edges between u and v collapse into a
    single self-loop on the merged node).
    """
    u = synopsis.node(u_id)
    v = synopsis.node(v_id)

    def normalize(node_id: int) -> int:
        return -1 if node_id in (u_id, v_id) else node_id

    children_before = len(u.children) + len(v.children)
    children_after = len(
        {normalize(child) for child in u.children}
        | {normalize(child) for child in v.children}
    )
    # Incoming edges from outside parents: a parent of both u and v
    # contributed two edges and keeps one to the merged node.
    u_outside = {p for p in u.parents if p not in (u_id, v_id)}
    v_outside = {p for p in v.parents if p not in (u_id, v_id)}
    incoming_before = len(u_outside) + len(v_outside)
    incoming_after = len(u_outside | v_outside)
    edges_saved = (children_before - children_after) + (
        incoming_before - incoming_after
    )
    return NODE_BYTES + EDGE_BYTES * edges_saved

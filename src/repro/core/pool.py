"""The candidate-merge pool of XCLUSTERBUILD (paper Figure 6).

``build_pool`` collects candidate merge operations among merge-compatible
node pairs whose levels do not exceed the current level bound, scores
each with the localized Δ metric, and keeps at most ``Hm`` candidates
(evicting the worst marginal losses).  The pool is a priority queue on
*marginal loss* — Δ(S, S′) per byte of structural storage saved — with
lazy invalidation: a popped candidate is re-validated against the current
synopsis (both nodes alive, neighborhood unchanged) and re-scored when
stale.

Exhaustive pair enumeration is quadratic in the (large) reference
synopsis, so candidate *generation* pairs each node only with its ``K``
nearest neighbors in a cheap structural-similarity order, exactly in the
spirit of the paper's bottom-up level heuristic (nodes whose children
were merged sort together).  Small groups still enumerate all pairs.

Scoring goes through the vectorized :class:`~repro.core.scoring
.ScoringEngine` when one is supplied (the builder's default); without an
engine the pool falls back to the scalar Δ implementation, which is the
pre-optimization reference path.  ``build_pool`` can additionally fan
candidate scoring out over a ``multiprocessing`` pool (``workers > 1``);
scoring is a pure function of the synopsis and candidate ordering is
total (marginal loss, then node ids), so the parallel path keeps exactly
the serial candidate set and pop order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.distance import SelectivityCache, merge_delta
from repro.core.scoring import ScoringEngine, score_pairs_parallel
from repro.core.sizing import merge_size_saving
from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    TextSummary,
)

#: Below this group size every pair is considered (quadratic is cheap).
EXHAUSTIVE_GROUP_SIZE = 24

#: The heap may overflow ``max_size`` by this factor before a trim; the
#: bounded overflow amortizes the ``nsmallest`` + re-heapify churn over
#: many insertions instead of paying it per batch.
POOL_SLACK = 1.5


@dataclass(order=True)
class MergeCandidate:
    """One candidate ``merge(u, v)`` with its cached score.

    Ordering is total — marginal loss with the node-id pair as a tie
    breaker — so heap pops and capacity trims are deterministic
    regardless of insertion order (serial and parallel pool builds pop
    identically).
    """

    marginal_loss: float
    u_id: int
    v_id: int
    delta: float = field(compare=False)
    size_saving: int = field(compare=False)
    #: Sum of the neighborhood versions of u and v at scoring time.
    version: int = field(compare=False, default=0)


def _summary_key(node: SynopsisNode) -> Tuple:
    """A cheap value-distribution fingerprint for similarity sorting."""
    summary = node.vsumm
    if summary is None:
        return ()
    if isinstance(summary, HistogramSummary):
        histogram = summary.histogram
        if histogram.total == 0:
            return (0.0,)
        mean = sum(
            bucket.count * (bucket.lo + bucket.hi) / 2.0
            for bucket in histogram.buckets
        ) / histogram.total
        return (mean,)
    if isinstance(summary, StringSummary):
        top = summary.pst.top_substrings(1)
        return (top[0][0],) if top else ("",)
    if isinstance(summary, TextSummary):
        ranked = sorted(
            summary.ebth.exact.items(), key=lambda item: (-item[1], item[0])
        )
        return (ranked[0][0],) if ranked else (-1,)
    return ()


def similarity_key(
    synopsis: XClusterSynopsis,
    node: SynopsisNode,
    label_memo: Optional[Dict[int, Tuple[str, ...]]] = None,
) -> Tuple:
    """Sort key placing structurally-similar clusters next to each other.

    ``label_memo`` memoizes each node's sorted child-label tuple (keyed
    by node id — children do not change during one pool build), saving
    the per-comparison label lookups when a group is sorted.
    """
    if label_memo is None:
        child_labels = tuple(
            sorted(synopsis.node(child_id).label for child_id in node.children)
        )
    else:
        child_labels = label_memo.get(node.node_id)
        if child_labels is None:
            child_labels = tuple(
                sorted(synopsis.node(child_id).label for child_id in node.children)
            )
            label_memo[node.node_id] = child_labels
    total_children = sum(node.children.values())
    return (child_labels, round(total_children, 3), _summary_key(node), node.count)


def candidate_pairs(
    synopsis: XClusterSynopsis,
    nodes: List[SynopsisNode],
    neighbors: int,
    label_memo: Optional[Dict[int, Tuple[str, ...]]] = None,
) -> Iterable[Tuple[int, int]]:
    """Yield merge-candidate id pairs for one merge-compatible group."""
    if len(nodes) < 2:
        return
    if len(nodes) <= EXHAUSTIVE_GROUP_SIZE:
        for left, right in itertools.combinations(nodes, 2):
            yield (left.node_id, right.node_id)
        return
    # Decorate-sort-undecorate: each node's similarity key is computed
    # exactly once (it is itself a nontrivial aggregate) instead of
    # O(n log n) times inside the sort's comparator; node id breaks key
    # ties deterministically.
    decorated = sorted(
        (similarity_key(synopsis, node, label_memo), node.node_id)
        for node in nodes
    )
    ordered = [node_id for _, node_id in decorated]
    for index, node_id in enumerate(ordered):
        for offset in range(1, neighbors + 1):
            if index + offset >= len(ordered):
                break
            yield (node_id, ordered[index + offset])


class CandidatePool:
    """A marginal-loss priority queue with lazy staleness checks."""

    def __init__(
        self,
        synopsis: XClusterSynopsis,
        max_size: int,
        predicate_limit: int,
        cache: Optional[SelectivityCache] = None,
        engine: Optional[ScoringEngine] = None,
        slack: float = POOL_SLACK,
    ) -> None:
        self.synopsis = synopsis
        self.max_size = max_size
        self.predicate_limit = predicate_limit
        self.cache: SelectivityCache = cache if cache is not None else {}
        self.engine = engine
        self.slack = max(1.0, slack)
        self._heap: List[MergeCandidate] = []
        #: Bumped whenever a node's local neighborhood changes.
        self.node_versions: Dict[int, int] = {}
        #: Diagnostics: Δ evaluations and capacity-trim churn.
        self.scoring_calls = 0
        self.trims = 0
        self.candidates_trimmed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def _version_of(self, node_id: int) -> int:
        return self.node_versions.get(node_id, 0)

    def _pair_version(self, u_id: int, v_id: int) -> int:
        return self._version_of(u_id) + self._version_of(v_id)

    def score(self, u_id: int, v_id: int) -> Optional[MergeCandidate]:
        """Build a scored candidate for the pair, or ``None`` if invalid."""
        nodes = self.synopsis.nodes
        u = nodes.get(u_id)
        v = nodes.get(v_id)
        if u is None or v is None or u.merge_key() != v.merge_key():
            return None
        self.scoring_calls += 1
        if self.engine is not None:
            delta = self.engine.merge_delta(u, v)
        else:
            delta = merge_delta(
                self.synopsis, u, v, self.predicate_limit, self.cache
            )
        saving = max(1, merge_size_saving(self.synopsis, u_id, v_id))
        return MergeCandidate(
            marginal_loss=delta / saving,
            u_id=u_id,
            v_id=v_id,
            delta=delta,
            size_saving=saving,
            version=self._pair_version(u_id, v_id),
        )

    def add_scored(
        self, u_id: int, v_id: int, delta: float, size_saving: int
    ) -> None:
        """Enqueue an externally scored candidate (parallel pool build)."""
        heapq.heappush(
            self._heap,
            MergeCandidate(
                marginal_loss=delta / size_saving,
                u_id=u_id,
                v_id=v_id,
                delta=delta,
                size_saving=size_saving,
                version=self._pair_version(u_id, v_id),
            ),
        )

    def push_pair(self, u_id: int, v_id: int) -> None:
        """Score and enqueue one candidate pair (ignored when invalid)."""
        candidate = self.score(u_id, v_id)
        if candidate is not None:
            heapq.heappush(self._heap, candidate)

    def extend(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Score and enqueue many pairs, then enforce the size cap."""
        for u_id, v_id in pairs:
            self.push_pair(u_id, v_id)
        self.enforce_capacity()

    def enforce_capacity(self, strict: bool = False) -> None:
        """Trim the worst-marginal-loss candidates down to ``max_size``.

        By default the trim only fires once the heap overflows
        ``max_size`` by the slack factor (bounded overflow — trimming is
        O(n log Hm), so paying it on every batch of insertions is pure
        churn).  ``strict=True`` restores the hard ``max_size`` bound;
        ``build_pool`` applies it once after all groups are enqueued.
        Incremental slack trims never evict a top-``max_size`` candidate,
        so the surviving set equals a single global trim.
        """
        threshold = self.max_size if strict else int(self.max_size * self.slack)
        if len(self._heap) > threshold:
            self.trims += 1
            self.candidates_trimmed += len(self._heap) - self.max_size
            self._heap = heapq.nsmallest(self.max_size, self._heap)
            heapq.heapify(self._heap)

    def bump_versions(self, node_ids: Iterable[int]) -> None:
        """Mark nodes' neighborhoods changed (stale candidates rescore).

        The scoring engine's profiles cover the same local state (the
        child-count moments), so the touched profiles are dropped too.
        """
        node_ids = list(node_ids)
        for node_id in node_ids:
            self.node_versions[node_id] = self.node_versions.get(node_id, 0) + 1
        if self.engine is not None:
            self.engine.invalidate(node_ids)

    def pop_best(self) -> Optional[MergeCandidate]:
        """Pop the lowest-marginal-loss *valid* candidate.

        Stale candidates (dead nodes) are discarded; candidates whose
        neighborhood changed since scoring are re-scored and re-queued.
        """
        nodes = self.synopsis.nodes
        while self._heap:
            candidate = heapq.heappop(self._heap)
            if candidate.u_id not in nodes or candidate.v_id not in nodes:
                continue
            if candidate.version != self._pair_version(candidate.u_id, candidate.v_id):
                rescored = self.score(candidate.u_id, candidate.v_id)
                if rescored is not None:
                    heapq.heappush(self._heap, rescored)
                continue
            return candidate
        return None


def build_pool(
    synopsis: XClusterSynopsis,
    max_size: int,
    level_limit: int,
    levels: Dict[int, int],
    predicate_limit: int = 48,
    neighbors: int = 8,
    cache: Optional[SelectivityCache] = None,
    engine: Optional[ScoringEngine] = None,
    workers: int = 1,
) -> CandidatePool:
    """Assemble the candidate pool for the current level bound.

    Mirrors the paper's ``build_pool(S, Hm, l)``: consider merges among
    merge-compatible nodes whose level is at most ``level_limit``, keep
    the best ``max_size`` by marginal loss.

    With ``workers > 1`` (and an engine), candidate scoring fans out
    over a process pool; the scored candidates merge back into the same
    heap and the final strict capacity trim keeps exactly the serial
    result.  When a process pool is unavailable the build silently runs
    serially.
    """
    pool = CandidatePool(
        synopsis, max_size, predicate_limit, cache, engine=engine
    )
    groups: Dict[Tuple, List[SynopsisNode]] = {}
    for node in synopsis:
        if levels.get(node.node_id, 0) > level_limit:
            continue
        if node.node_id == synopsis.root_id:
            continue  # the root cluster is never merged away
        groups.setdefault(node.merge_key(), []).append(node)

    label_memo: Dict[int, Tuple[str, ...]] = {}
    scored = None
    if workers > 1 and engine is not None:
        pairs = [
            pair
            for members in groups.values()
            for pair in candidate_pairs(synopsis, members, neighbors, label_memo)
        ]
        scored = score_pairs_parallel(
            synopsis, pairs, predicate_limit, workers
        )
        if scored is not None:
            pool.scoring_calls += len(scored)
            for u_id, v_id, delta, saving in scored:
                pool.add_scored(u_id, v_id, delta, saving)
            pool.enforce_capacity()
    if scored is None:
        for members in groups.values():
            pool.extend(candidate_pairs(synopsis, members, neighbors, label_memo))
    pool.enforce_capacity(strict=True)
    return pool

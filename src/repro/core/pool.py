"""The candidate-merge pool of XCLUSTERBUILD (paper Figure 6).

``build_pool`` collects candidate merge operations among merge-compatible
node pairs whose levels do not exceed the current level bound, scores
each with the localized Δ metric, and keeps at most ``Hm`` candidates
(evicting the worst marginal losses).  The pool is a priority queue on
*marginal loss* — Δ(S, S′) per byte of structural storage saved — with
lazy invalidation: a popped candidate is re-validated against the current
synopsis (both nodes alive, neighborhood unchanged) and re-scored when
stale.

Exhaustive pair enumeration is quadratic in the (large) reference
synopsis, so candidate *generation* pairs each node only with its ``K``
nearest neighbors in a cheap structural-similarity order, exactly in the
spirit of the paper's bottom-up level heuristic (nodes whose children
were merged sort together).  Small groups still enumerate all pairs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.distance import SelectivityCache, merge_delta
from repro.core.sizing import merge_size_saving
from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    TextSummary,
)

#: Below this group size every pair is considered (quadratic is cheap).
EXHAUSTIVE_GROUP_SIZE = 24


@dataclass(order=True)
class MergeCandidate:
    """One candidate ``merge(u, v)`` with its cached score."""

    marginal_loss: float
    u_id: int = field(compare=False)
    v_id: int = field(compare=False)
    delta: float = field(compare=False)
    size_saving: int = field(compare=False)
    #: Sum of the neighborhood versions of u and v at scoring time.
    version: int = field(compare=False, default=0)


def _summary_key(node: SynopsisNode) -> Tuple:
    """A cheap value-distribution fingerprint for similarity sorting."""
    summary = node.vsumm
    if summary is None:
        return ()
    if isinstance(summary, HistogramSummary):
        histogram = summary.histogram
        if histogram.total == 0:
            return (0.0,)
        mean = sum(
            bucket.count * (bucket.lo + bucket.hi) / 2.0
            for bucket in histogram.buckets
        ) / histogram.total
        return (mean,)
    if isinstance(summary, StringSummary):
        top = summary.pst.top_substrings(1)
        return (top[0][0],) if top else ("",)
    if isinstance(summary, TextSummary):
        ranked = sorted(
            summary.ebth.exact.items(), key=lambda item: (-item[1], item[0])
        )
        return (ranked[0][0],) if ranked else (-1,)
    return ()


def similarity_key(synopsis: XClusterSynopsis, node: SynopsisNode) -> Tuple:
    """Sort key placing structurally-similar clusters next to each other."""
    child_labels = tuple(
        sorted(synopsis.node(child_id).label for child_id in node.children)
    )
    total_children = sum(node.children.values())
    return (child_labels, round(total_children, 3), _summary_key(node), node.count)


def candidate_pairs(
    synopsis: XClusterSynopsis,
    nodes: List[SynopsisNode],
    neighbors: int,
) -> Iterable[Tuple[int, int]]:
    """Yield merge-candidate id pairs for one merge-compatible group."""
    if len(nodes) < 2:
        return
    if len(nodes) <= EXHAUSTIVE_GROUP_SIZE:
        for left, right in itertools.combinations(nodes, 2):
            yield (left.node_id, right.node_id)
        return
    ordered = sorted(nodes, key=lambda node: similarity_key(synopsis, node))
    for index, node in enumerate(ordered):
        for offset in range(1, neighbors + 1):
            if index + offset >= len(ordered):
                break
            yield (node.node_id, ordered[index + offset].node_id)


class CandidatePool:
    """A marginal-loss priority queue with lazy staleness checks."""

    def __init__(
        self,
        synopsis: XClusterSynopsis,
        max_size: int,
        predicate_limit: int,
        cache: Optional[SelectivityCache] = None,
    ) -> None:
        self.synopsis = synopsis
        self.max_size = max_size
        self.predicate_limit = predicate_limit
        self.cache: SelectivityCache = cache if cache is not None else {}
        self._heap: List[MergeCandidate] = []
        #: Bumped whenever a node's local neighborhood changes.
        self.node_versions: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def _version_of(self, node_id: int) -> int:
        return self.node_versions.get(node_id, 0)

    def _pair_version(self, u_id: int, v_id: int) -> int:
        return self._version_of(u_id) + self._version_of(v_id)

    def score(self, u_id: int, v_id: int) -> Optional[MergeCandidate]:
        """Build a scored candidate for the pair, or ``None`` if invalid."""
        nodes = self.synopsis.nodes
        u = nodes.get(u_id)
        v = nodes.get(v_id)
        if u is None or v is None or u.merge_key() != v.merge_key():
            return None
        delta = merge_delta(self.synopsis, u, v, self.predicate_limit, self.cache)
        saving = max(1, merge_size_saving(self.synopsis, u_id, v_id))
        return MergeCandidate(
            marginal_loss=delta / saving,
            u_id=u_id,
            v_id=v_id,
            delta=delta,
            size_saving=saving,
            version=self._pair_version(u_id, v_id),
        )

    def push_pair(self, u_id: int, v_id: int) -> None:
        """Score and enqueue one candidate pair (ignored when invalid)."""
        candidate = self.score(u_id, v_id)
        if candidate is not None:
            heapq.heappush(self._heap, candidate)

    def extend(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Score and enqueue many pairs, then enforce the size cap."""
        for u_id, v_id in pairs:
            self.push_pair(u_id, v_id)
        self.enforce_capacity()

    def enforce_capacity(self) -> None:
        """Drop the worst-marginal-loss candidates beyond ``max_size``."""
        if len(self._heap) > self.max_size:
            self._heap = heapq.nsmallest(self.max_size, self._heap)
            heapq.heapify(self._heap)

    def bump_versions(self, node_ids: Iterable[int]) -> None:
        """Mark nodes' neighborhoods changed (stale candidates rescore)."""
        for node_id in node_ids:
            self.node_versions[node_id] = self.node_versions.get(node_id, 0) + 1

    def pop_best(self) -> Optional[MergeCandidate]:
        """Pop the lowest-marginal-loss *valid* candidate.

        Stale candidates (dead nodes) are discarded; candidates whose
        neighborhood changed since scoring are re-scored and re-queued.
        """
        nodes = self.synopsis.nodes
        while self._heap:
            candidate = heapq.heappop(self._heap)
            if candidate.u_id not in nodes or candidate.v_id not in nodes:
                continue
            if candidate.version != self._pair_version(candidate.u_id, candidate.v_id):
                rescored = self.score(candidate.u_id, candidate.v_id)
                if rescored is not None:
                    heapq.heappush(self._heap, rescored)
                continue
            return candidate
        return None


def build_pool(
    synopsis: XClusterSynopsis,
    max_size: int,
    level_limit: int,
    levels: Dict[int, int],
    predicate_limit: int = 48,
    neighbors: int = 8,
    cache: Optional[SelectivityCache] = None,
) -> CandidatePool:
    """Assemble the candidate pool for the current level bound.

    Mirrors the paper's ``build_pool(S, Hm, l)``: consider merges among
    merge-compatible nodes whose level is at most ``level_limit``, keep
    the best ``max_size`` by marginal loss.
    """
    pool = CandidatePool(synopsis, max_size, predicate_limit, cache)
    groups: Dict[Tuple, List[SynopsisNode]] = {}
    for node in synopsis:
        if levels.get(node.node_id, 0) > level_limit:
            continue
        if node.node_id == synopsis.root_id:
            continue  # the root cluster is never merged away
        groups.setdefault(node.merge_key(), []).append(node)
    for members in groups.values():
        pool.extend(candidate_pairs(synopsis, members, neighbors))
    return pool

"""Vectorized candidate-scoring engine for XCLUSTERBUILD (Section 4.3).

The scalar Δ metric in :mod:`repro.core.distance` re-resolves every
per-predicate selectivity through a dict cache inside a predicates ×
children double loop, and re-enumerates each summary's atomic-predicate
set *per candidate pair*.  During phase 1 the builder scores thousands
of candidates per pool build, so that cost dominates construction time.

This module makes candidate scoring incremental and batched:

* A :class:`SelectivityProfile` per synopsis node — a flat
  ``array``-backed vector of selectivities over the node's canonical
  atomic-predicate set (``TruePredicate`` first), plus the cached
  child-count second moment ``Σ_c count(u, c)²`` — computed once per
  node and invalidated only when a merge or compression touches it.
* :meth:`ScoringEngine.merge_delta` evaluates Δ(S, merge(S, u, v)) as a
  tight aligned-vector loop.  The inner sum over children collapses
  algebraically: with ``A = Σ cu²``, ``B = Σ cv²`` and ``C = Σ cu·cv``,

      Σ_c (σ_u·cu − σ_w·cw)² = x²A − 2xyC + y²B,

  where ``x = σ_u − a·σ_w`` and ``y = b·σ_w`` (``a``/``b`` the extent
  shares), so each predicate costs O(1) instead of O(children).
* Profiles persist across pool rebuilds (the engine outlives any one
  :class:`~repro.core.pool.CandidatePool`) and share the existing
  ``SelectivityCache`` with the scalar path, so selectivities computed
  in one rebuild are reused by the next.
* :func:`score_pairs_parallel` fans chunks of candidate pairs out over a
  ``multiprocessing`` pool for opt-in parallel pool construction
  (``BuildConfig.workers``); scoring is a pure function of the synopsis,
  so worker results are bit-identical to serial vectorized scoring.

The engine is numerically equivalent to the scalar implementation (the
summation over predicates runs in the same order; only the inner child
sum is factored), which the parity tests in ``tests/test_scoring.py``
pin down.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.distance import SelectivityCache
from repro.core.parallel import pool_context
from repro.core.sizing import merge_size_saving
from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.query.predicates import Predicate, TruePredicate

_TRUE = TruePredicate()

#: Below this many pairs the pool-start/IPC overhead exceeds the scoring work.
MIN_PARALLEL_PAIRS = 256


class SelectivityProfile:
    """Per-node selectivity vector over the canonical atomic-predicate set.

    Attributes:
        vsumm: the value summary the profile was computed against; the
            profile is stale once the node carries a different object.
        predicates: the canonical predicate tuple, ``TruePredicate``
            first, then the summary's canonical atomic predicates in
            their stable order.
        index: predicate -> *first* position in ``predicates`` (used for
            aligned union iteration and duplicate suppression).
        sigmas: ``array('d')`` of selectivities aligned with
            ``predicates``.
        child_sq: the child-count second moment ``Σ_c count(u, c)²``
            (0.0 for leaves; the leaf degenerate case is handled at
            scoring time).
    """

    __slots__ = ("vsumm", "predicates", "index", "sigmas", "child_sq")

    def __init__(
        self,
        vsumm,
        predicates: Tuple[Predicate, ...],
        index: Dict[Predicate, int],
        sigmas: array,
        child_sq: float,
    ) -> None:
        self.vsumm = vsumm
        self.predicates = predicates
        self.index = index
        self.sigmas = sigmas
        self.child_sq = child_sq


class ScoringEngine:
    """Profile-backed vectorized Δ evaluation over one synopsis.

    The engine owns the per-node profiles and shares a
    ``SelectivityCache`` with whatever else scores against the same
    synopsis.  Callers must :meth:`invalidate` every node whose local
    neighborhood changed (``CandidatePool.bump_versions`` does this for
    the builder's merge loop); value-summary replacement is detected
    automatically by object identity.
    """

    def __init__(
        self,
        synopsis: XClusterSynopsis,
        predicate_limit: int = 48,
        cache: Optional[SelectivityCache] = None,
    ) -> None:
        self.synopsis = synopsis
        self.predicate_limit = predicate_limit
        self.cache: SelectivityCache = cache if cache is not None else {}
        self.profiles: Dict[int, SelectivityProfile] = {}
        self.profile_hits = 0
        self.profile_misses = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- selectivity resolution ------------------------------------------------

    def _resolve(self, node: SynopsisNode, predicate: Predicate) -> float:
        """σ_p(u) with the exact semantics of ``node_selectivity``."""
        if isinstance(predicate, TruePredicate):
            return 1.0
        vsumm = node.vsumm
        if vsumm is None:
            return 1.0
        if predicate.value_type is not node.value_type:
            return 0.0
        key = (vsumm, predicate)
        value = self.cache.get(key)
        if value is None:
            value = vsumm.fast_selectivity(predicate)
            self.cache[key] = value
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        return value

    # -- profile lifecycle -----------------------------------------------------

    def profile_for(self, node: SynopsisNode) -> SelectivityProfile:
        """The (cached) profile of ``node``, rebuilt when stale."""
        profile = self.profiles.get(node.node_id)
        if profile is not None and profile.vsumm is node.vsumm:
            self.profile_hits += 1
            return profile
        self.profile_misses += 1
        profile = self._build_profile(node)
        self.profiles[node.node_id] = profile
        return profile

    def _build_profile(self, node: SynopsisNode) -> SelectivityProfile:
        vsumm = node.vsumm
        if vsumm is None:
            predicates: Tuple[Predicate, ...] = (_TRUE,)
        else:
            predicates = (_TRUE,) + tuple(
                vsumm.canonical_atomic_predicates(self.predicate_limit)
            )
        sigmas = array(
            "d", [self._resolve(node, predicate) for predicate in predicates]
        )
        index: Dict[Predicate, int] = {}
        for position, predicate in enumerate(predicates):
            if predicate not in index:
                index[predicate] = position
        child_sq = 0.0
        for count in node.children.values():
            child_sq += count * count
        return SelectivityProfile(vsumm, predicates, index, sigmas, child_sq)

    def invalidate(self, node_ids: Iterable[int]) -> None:
        """Drop profiles of nodes whose neighborhood (or extent) changed."""
        for node_id in node_ids:
            self.profiles.pop(node_id, None)

    def audit_profiles(self) -> List[str]:
        """Issues with cached profiles (empty = healthy).

        The engine relies on callers invalidating nodes whose local
        neighborhood changed; a missed invalidation silently serves a
        stale ``child_sq`` moment (value-summary staleness is caught by
        object identity, but edge churn is not).  This hook re-derives
        every cached moment from the live synopsis so the differential
        harness can assert the lazy-invalidation protocol held after a
        build.
        """
        issues: List[str] = []
        for node_id, profile in self.profiles.items():
            node = self.synopsis.nodes.get(node_id)
            if node is None:
                continue  # merged away; served never, reaped lazily
            if profile.vsumm is not node.vsumm:
                continue  # identity-stale; profile_for would rebuild it
            actual = 0.0
            for count in node.children.values():
                actual += count * count
            if actual != profile.child_sq:
                issues.append(
                    f"profile of node {node_id} caches child moment "
                    f"{profile.child_sq!r} but the synopsis has {actual!r} "
                    "(missed invalidation)"
                )
        return issues

    # -- the Δ metric, vectorized ----------------------------------------------

    def merge_delta(self, u: SynopsisNode, v: SynopsisNode) -> float:
        """Δ(S, merge(S, u, v)); equals the scalar ``merge_delta``."""
        pu = self.profile_for(u)
        pv = self.profile_for(v)

        if not u.children and not v.children:
            # Leaf merge: the child sum degenerates to one virtual unit
            # count.  The factored form would cancel (x − y)² through
            # three nearly-equal products, turning exact-zero deltas into
            # ±1-ulp noise — enough to reorder zero-loss candidates
            # against the scalar engine — so leaves evaluate the scalar
            # expression verbatim (it is O(1) per predicate anyway).
            return self._leaf_merge_delta(u, v, pu, pv)

        second_u = pu.child_sq
        second_v = pv.child_sq
        smaller, larger = u.children, v.children
        if len(smaller) > len(larger):
            smaller, larger = larger, smaller
        cross = 0.0
        for child_id, count in smaller.items():
            other = larger.get(child_id)
            if other is not None:
                cross += count * other

        total = u.count + v.count
        u_share = u.count / total
        v_share = v.count / total
        u_count = float(u.count)
        v_count = float(v.count)
        sigmas_u = pu.sigmas
        sigmas_v = pv.sigmas
        index_u = pu.index
        index_v = pv.index

        delta = 0.0
        for position, predicate in enumerate(pu.predicates):
            sigma_u = sigmas_u[position]
            other = index_v.get(predicate)
            sigma_v = (
                sigmas_v[other] if other is not None else self._resolve(v, predicate)
            )
            sigma_w = u_share * sigma_u + v_share * sigma_v
            x = sigma_u - u_share * sigma_w
            y = v_share * sigma_w
            s = sigma_v - v_share * sigma_w
            t = u_share * sigma_w
            delta += u_count * (
                x * x * second_u - 2.0 * x * y * cross + y * y * second_v
            ) + v_count * (
                s * s * second_v - 2.0 * s * t * cross + t * t * second_u
            )
        for position, predicate in enumerate(pv.predicates):
            if predicate in index_u:
                continue  # already covered by u's side of the union
            if index_v[predicate] != position:
                continue  # duplicate within v's own predicate set
            sigma_v = sigmas_v[position]
            sigma_u = self._resolve(u, predicate)
            sigma_w = u_share * sigma_u + v_share * sigma_v
            x = sigma_u - u_share * sigma_w
            y = v_share * sigma_w
            s = sigma_v - v_share * sigma_w
            t = u_share * sigma_w
            delta += u_count * (
                x * x * second_u - 2.0 * x * y * cross + y * y * second_v
            ) + v_count * (
                s * s * second_v - 2.0 * s * t * cross + t * t * second_u
            )
        # Δ is a non-negative quadratic form; the factored evaluation can
        # round a few ulps below zero, which would outrank true zeros.
        return delta if delta > 0.0 else 0.0

    def _leaf_merge_delta(
        self,
        u: SynopsisNode,
        v: SynopsisNode,
        pu: SelectivityProfile,
        pv: SelectivityProfile,
    ) -> float:
        """The scalar Δ expression, bit-for-bit, for a leaf merge."""
        total = u.count + v.count
        u_share = u.count / total
        v_share = v.count / total
        sigmas_u = pu.sigmas
        sigmas_v = pv.sigmas
        index_u = pu.index
        index_v = pv.index
        delta = 0.0
        for position, predicate in enumerate(pu.predicates):
            sigma_u = sigmas_u[position]
            other = index_v.get(predicate)
            sigma_v = (
                sigmas_v[other] if other is not None else self._resolve(v, predicate)
            )
            sigma_w = u_share * sigma_u + v_share * sigma_v
            count_w = u_share * 1.0 + v_share * 1.0
            estimate_w = sigma_w * count_w
            error_u = sigma_u * 1.0 - estimate_w
            error_v = sigma_v * 1.0 - estimate_w
            delta += u.count * error_u * error_u + v.count * error_v * error_v
        for position, predicate in enumerate(pv.predicates):
            if predicate in index_u:
                continue  # already covered by u's side of the union
            if index_v[predicate] != position:
                continue  # duplicate within v's own predicate set
            sigma_v = sigmas_v[position]
            sigma_u = self._resolve(u, predicate)
            sigma_w = u_share * sigma_u + v_share * sigma_v
            count_w = u_share * 1.0 + v_share * 1.0
            estimate_w = sigma_w * count_w
            error_u = sigma_u * 1.0 - estimate_w
            error_v = sigma_v * 1.0 - estimate_w
            delta += u.count * error_u * error_u + v.count * error_v * error_v
        return delta

    def compression_delta(self, node: SynopsisNode, compressed) -> float:
        """Δ(S, S′) for a value-compression step (vectorized σ_old)."""
        if node.vsumm is None:
            raise ValueError("compression_delta needs a node with a value summary")
        profile = self.profile_for(node)
        squared_counts = profile.child_sq if node.children else 1.0
        sigmas = profile.sigmas
        predicates = profile.predicates
        accumulated = 0.0
        for position in range(1, len(predicates)):
            difference = sigmas[position] - compressed.fast_selectivity(
                predicates[position]
            )
            accumulated += difference * difference
        return node.count * squared_counts * accumulated


# -- parallel pool construction -------------------------------------------------

#: Per-worker state set by the pool initializer (inherited through the
#: fork, or pickled as initargs under spawn — see repro.core.parallel).
_WORKER_ENGINE: Optional[ScoringEngine] = None


def _init_scoring_worker(synopsis: XClusterSynopsis, predicate_limit: int) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = ScoringEngine(synopsis, predicate_limit)


def _score_chunk(
    pairs: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int, float, int]]:
    """Score one chunk of candidate pairs inside a worker process."""
    engine = _WORKER_ENGINE
    synopsis = engine.synopsis
    nodes = synopsis.nodes
    scored: List[Tuple[int, int, float, int]] = []
    for u_id, v_id in pairs:
        u = nodes.get(u_id)
        v = nodes.get(v_id)
        if u is None or v is None or u.merge_key() != v.merge_key():
            continue
        delta = engine.merge_delta(u, v)
        saving = max(1, merge_size_saving(synopsis, u_id, v_id))
        scored.append((u_id, v_id, delta, saving))
    return scored


def score_pairs_parallel(
    synopsis: XClusterSynopsis,
    pairs: Sequence[Tuple[int, int]],
    predicate_limit: int,
    workers: int,
) -> Optional[List[Tuple[int, int, float, int]]]:
    """Score candidate pairs on ``workers`` processes.

    Returns ``(u_id, v_id, delta, size_saving)`` tuples, or ``None``
    when parallel execution is unavailable or not worthwhile (too few
    pairs, no usable pool start method, or a sandbox that refuses
    process pools) — callers fall back to the serial path.  Scoring is a pure
    function of the synopsis, so the result set is identical to serial
    vectorized scoring regardless of chunking.
    """
    if workers <= 1 or len(pairs) < MIN_PARALLEL_PAIRS:
        return None
    context = pool_context()
    if context is None:
        return None
    chunk_count = min(len(pairs), workers * 4)
    chunks = [list(pairs[offset::chunk_count]) for offset in range(chunk_count)]
    try:
        with context.Pool(
            processes=workers,
            initializer=_init_scoring_worker,
            initargs=(synopsis, predicate_limit),
        ) as pool:
            chunk_results = pool.map(_score_chunk, chunks)
    except (OSError, PermissionError, RuntimeError):
        return None
    return [scored for chunk in chunk_results for scored in chunk]

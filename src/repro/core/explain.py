"""Estimation explanations: per-embedding breakdowns of an estimate.

``estimate_selectivity`` returns one number; optimizers and library
users debugging an estimate need to see *where* it came from — which
synopsis clusters each query variable embedded into, the structural
path counts, and the predicate selectivities applied under Path-Value
Independence.  :func:`explain` reruns the estimation sum-product while
recording one :class:`BranchContribution` per (variable, target cluster)
pair, and renders a readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.distance import node_selectivity
from repro.core.estimator import VIRTUAL_ROOT, XClusterEstimator, variable_order
from repro.core.synopsis import XClusterSynopsis
from repro.query.ast import QueryNode, TwigQuery


@dataclass
class BranchContribution:
    """One embedding target of one query variable.

    Attributes:
        variable: the query variable name.
        edge: the edge path leading to the variable.
        node_id: the synopsis cluster the variable embeds into.
        label: that cluster's tag.
        reach: average number of elements (paths) reached per context
            element.
        sigma: the predicate selectivity σ_p at the cluster.
        subtree: expected binding tuples of the variable's subtree per
            reached element.
        contribution: ``reach * sigma * subtree``.
    """

    variable: str
    edge: str
    node_id: int
    label: str
    reach: float
    sigma: float
    subtree: float

    @property
    def contribution(self) -> float:
        return self.reach * self.sigma * self.subtree


@dataclass
class EstimateExplanation:
    """The full breakdown of one estimate."""

    query: str
    estimate: float
    branches: List[BranchContribution] = field(default_factory=list)

    def render(self) -> str:
        """A readable multi-line report."""
        lines = [f"query: {self.query}", f"estimate: {self.estimate:.3f}"]
        for branch in self.branches:
            lines.append(
                f"  {branch.variable:<6} {branch.edge:<14} -> "
                f"cluster #{branch.node_id} <{branch.label}>  "
                f"reach={branch.reach:.3f} sigma={branch.sigma:.3f} "
                f"subtree={branch.subtree:.3f} "
                f"contribution={branch.contribution:.3f}"
            )
        return "\n".join(lines)


def explain(
    synopsis: XClusterSynopsis,
    query: TwigQuery,
    max_path_length: int = 40,
) -> EstimateExplanation:
    """Estimate ``query`` and record every embedding contribution."""
    estimator = XClusterEstimator(synopsis, max_path_length)
    explanation = EstimateExplanation(query.to_xpath(), 0.0)
    memo: Dict[Tuple[int, int], float] = {}
    order = variable_order(query)

    def tuples(variable: QueryNode, node_id: int) -> float:
        """As the estimator's sum-product, but recording each fresh
        (variable, embedding target) contribution once."""
        key = (order[variable], node_id)
        if key in memo:
            return memo[key]
        total = 1.0
        for child in variable.children:
            branch_sum = 0.0
            for target_id, reach in estimator.reach(node_id, child.edge).items():
                target = synopsis.node(target_id)
                sigma = node_selectivity(
                    target, child.predicate, estimator.selectivity_cache
                )
                subtree = tuples(child, target_id)
                explanation.branches.append(
                    BranchContribution(
                        variable=child.name,
                        edge=str(child.edge),
                        node_id=target_id,
                        label=target.label,
                        reach=reach,
                        sigma=sigma,
                        subtree=subtree,
                    )
                )
                branch_sum += reach * sigma * subtree
            total *= branch_sum
        memo[key] = total
        return total

    explanation.estimate = tuples(query.root, VIRTUAL_ROOT)
    return explanation

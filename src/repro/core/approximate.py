"""Approximate query answers: synthesize a document from a synopsis.

The TreeSketch work the paper extends ("Approximate XML Query Answers",
SIGMOD 2004) uses structural synopses not only for selectivity
estimation but to *answer* queries approximately, by expanding the
synopsis back into a small surrogate document.  This module provides
that capability for XClusters, values included: every cluster expands to
its counted elements, child cardinalities follow the average edge
counters (stochastic rounding preserves them in expectation), and
element values are drawn from the cluster's value summary.

Running a twig query over the synthesized document with the exact
evaluator gives an *approximate answer set* whose cardinality tracks the
synopsis estimate.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ValueType


class SynthesisBudgetExceeded(RuntimeError):
    """Raised when expansion would exceed the element budget."""


class DocumentSynthesizer:
    """Expands a synopsis into a synthetic document.

    Args:
        synopsis: the synopsis to expand (not mutated).
        seed: RNG seed; expansion is deterministic per seed.
        max_elements: hard cap on synthesized elements (cycles introduced
            by merges could otherwise expand forever).
        max_depth: cap on the synthesized tree depth.
    """

    def __init__(
        self,
        synopsis: XClusterSynopsis,
        seed: int = 0,
        max_elements: int = 200_000,
        max_depth: int = 40,
    ) -> None:
        self.synopsis = synopsis
        self.rng = random.Random(seed)
        self.max_elements = max_elements
        self.max_depth = max_depth
        self._emitted = 0

    def synthesize(self) -> XMLTree:
        """Expand the whole synopsis from its root cluster."""
        root_cluster = self.synopsis.root
        self._emitted = 0
        root = self._make_element(root_cluster)
        self._expand(root, root_cluster, depth=0)
        return XMLTree(root)

    # -- internals ----------------------------------------------------------

    def _make_element(self, cluster: SynopsisNode) -> XMLElement:
        if self._emitted >= self.max_elements:
            raise SynthesisBudgetExceeded(
                f"synthesis exceeded {self.max_elements} elements"
            )
        self._emitted += 1
        value = None
        if cluster.vsumm is not None:
            value = cluster.vsumm.sample_value(self.rng)
        elif cluster.value_type is not ValueType.NULL:
            value = self._default_value(cluster)
        return XMLElement(cluster.label, value)

    @staticmethod
    def _default_value(cluster: SynopsisNode):
        """Placeholder values for valued clusters without summaries."""
        if cluster.value_type is ValueType.NUMERIC:
            return 0
        if cluster.value_type is ValueType.STRING:
            return "?"
        return frozenset()

    def _stochastic_count(self, average: float) -> int:
        """An integer with expectation ``average`` (floor + Bernoulli)."""
        base = int(average)
        fraction = average - base
        if fraction > 0.0 and self.rng.random() < fraction:
            base += 1
        return base

    def _expand(self, element: XMLElement, cluster: SynopsisNode, depth: int) -> None:
        if depth >= self.max_depth:
            return
        for child_id, average in cluster.children.items():
            child_cluster = self.synopsis.node(child_id)
            for _ in range(self._stochastic_count(average)):
                child = self._make_element(child_cluster)
                element.append_child(child)
                self._expand(child, child_cluster, depth + 1)


def synthesize_document(
    synopsis: XClusterSynopsis,
    seed: int = 0,
    max_elements: int = 200_000,
    max_depth: Optional[int] = 40,
) -> XMLTree:
    """One-call synthesis (see :class:`DocumentSynthesizer`)."""
    return DocumentSynthesizer(
        synopsis, seed, max_elements, max_depth if max_depth is not None else 40
    ).synthesize()

"""The binary mmap snapshot format for XCluster synopses.

JSON (:mod:`repro.core.serialization`) remains the portable interchange
format, but it is cold-start-bound: every consumer re-parses the whole
blob and rebuilds the full Python object graph before the first
estimate.  A *snapshot* is the serving-tier format: a single buffer of
length-prefixed little-endian sections laid out so a file can be opened
with ``mmap`` and decoded **lazily per section** —

* the header carries magic bytes (format auto-detection) and a section
  table of absolute ``(id, offset, length)`` entries, bounds-checked up
  front so truncation is caught at open time;
* the node and edge tables are flat fixed-width ``struct`` records,
  decoded eagerly (the graph must exist to serve anything) in the same
  canonical order the JSON decoder uses, so a snapshot-loaded synopsis
  replays every float accumulation bit-for-bit;
* the label and vocabulary string pools are interned once;
* per-family value-summary payloads (histogram buckets, PST node
  arrays, EBTH runs, wavelet coefficients) live in family sections and
  are **deferred**: each node parks a decode thunk
  (:meth:`~repro.core.synopsis.SynopsisNode.defer_summary`) pointing at
  its payload offset, and only summaries a workload actually touches
  are ever decoded.

Round-tripping is bit-exact: ``synopsis_to_dict(load(save(s)))``
equals ``synopsis_to_dict(s)`` for every summary family.  Malformed
input — bad magic, truncated sections, corrupt payloads — raises
:class:`~repro.core.serialization.SynopsisFormatError`, never a raw
``struct.error``, whether the corruption surfaces at open time or at
first lazy access.
"""

from __future__ import annotations

import mmap
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.serialization import SynopsisFormatError, _find_vocabulary
from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.values.ebth import EndBiasedTermHistogram
from repro.values.histogram import Histogram, HistogramBucket
from repro.values.pst import PrunedSuffixTree, _Node
from repro.values.rle import RunLengthBitmap
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    TextSummary,
    ValueSummary,
    WaveletSummary,
)
from repro.values.wavelet import HaarWavelet
from repro.values.termvector import Vocabulary
from repro.xmltree.types import ValueType

#: Leading bytes of every snapshot; the final byte is the format version.
SNAPSHOT_MAGIC = b"XCSNAP\x00\x01"

# Section ids (the section table maps id -> absolute offset + length).
_SEC_META = 1
_SEC_LABELS = 2
_SEC_VOCAB = 3
_SEC_NODES = 4
_SEC_EDGES = 5
_SEC_HIST = 6
_SEC_WAVELET = 7
_SEC_PST = 8
_SEC_EBTH = 9

_REQUIRED_SECTIONS = (
    _SEC_META,
    _SEC_LABELS,
    _SEC_VOCAB,
    _SEC_NODES,
    _SEC_EDGES,
    _SEC_HIST,
    _SEC_WAVELET,
    _SEC_PST,
    _SEC_EBTH,
)

_SECTION_COUNT = struct.Struct("<I")
_SECTION_ENTRY = struct.Struct("<IQQ")
#: root_id (-1 = none), node count, edge count.
_META = struct.Struct("<qqq")
#: node_id, label ref, value-type code, summary kind, count, payload offset.
_NODE = struct.Struct("<qIBBqq")
#: parent id, child id, average child counter.
_EDGE = struct.Struct("<qqd")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
#: histogram bucket lo, hi, count.
_BUCKET = struct.Struct("<qqd")
#: wavelet header: domain_lo, cell_width, length, total.
_WAVELET_HEAD = struct.Struct("<qqqd")
#: one wavelet coefficient: index, value.
_COEFF = struct.Struct("<qd")
#: PST header: max_depth, string_count, node count.
_PST_HEAD = struct.Struct("<qqq")
#: one pre-order PST node: symbol codepoint, child count, count.
_PST_NODE = struct.Struct("<IIq")
#: one exact EBTH term: term id, fractional frequency.
_TERM = struct.Struct("<qd")
#: one RLE bitmap run: start, end (inclusive).
_RUN = struct.Struct("<qq")
#: EBTH tail: bucket average, bucket member count, text count.
_EBTH_TAIL = struct.Struct("<dqq")

#: Summary-kind codes stored in the node table.
_KIND_NONE = 0
_KIND_HIST = 1
_KIND_WAVELET = 2
_KIND_PST = 3
_KIND_EBTH = 4

_KIND_SECTION = {
    _KIND_HIST: _SEC_HIST,
    _KIND_WAVELET: _SEC_WAVELET,
    _KIND_PST: _SEC_PST,
    _KIND_EBTH: _SEC_EBTH,
}

_VALUE_TYPE_CODES = {
    ValueType.NULL: 0,
    ValueType.NUMERIC: 1,
    ValueType.STRING: 2,
    ValueType.TEXT: 3,
}
_VALUE_TYPES_BY_CODE = {code: vt for vt, code in _VALUE_TYPE_CODES.items()}


# -- encoding ----------------------------------------------------------------


def _pack_string_pool(strings: List[str]) -> bytes:
    parts = [_U64.pack(len(strings))]
    for text in strings:
        data = text.encode("utf-8")
        parts.append(_U32.pack(len(data)))
        parts.append(data)
    return b"".join(parts)


def _encode_histogram(summary: HistogramSummary, out: bytearray) -> int:
    offset = len(out)
    buckets = summary.histogram.buckets
    out += _U64.pack(len(buckets))
    for bucket in buckets:
        out += _BUCKET.pack(bucket.lo, bucket.hi, bucket.count)
    return offset


def _encode_wavelet(summary: WaveletSummary, out: bytearray) -> int:
    offset = len(out)
    wavelet = summary.wavelet
    out += _WAVELET_HEAD.pack(
        wavelet.domain_lo, wavelet.cell_width, wavelet.length, wavelet.total
    )
    # Sorted for a canonical layout (mirrors the JSON encoder); the
    # decoder rebuilds the coefficient dict in this order.
    items = sorted(wavelet.coefficients.items())
    out += _U64.pack(len(items))
    for index, value in items:
        out += _COEFF.pack(index, value)
    return offset


def _encode_pst(summary: StringSummary, out: bytearray) -> int:
    offset = len(out)
    tree = summary.pst
    head_at = len(out)
    out += _PST_HEAD.pack(tree.max_depth, tree.string_count, 0)
    nodes = 0
    # Pre-order, children in trie insertion order, so the decoder's
    # attach order (and thus every dict iteration) matches the source.
    stack = list(reversed(list(tree.root.children.values())))
    while stack:
        node = stack.pop()
        if len(node.char) != 1:
            raise SynopsisFormatError(
                f"cannot encode PST symbol {node.char!r} (need one character)"
            )
        out += _PST_NODE.pack(ord(node.char), len(node.children), node.count)
        nodes += 1
        stack.extend(reversed(list(node.children.values())))
    out[head_at:head_at + _PST_HEAD.size] = _PST_HEAD.pack(
        tree.max_depth, tree.string_count, nodes
    )
    return offset


def _encode_ebth(summary: TextSummary, out: bytearray) -> int:
    offset = len(out)
    ebth = summary.ebth
    exact = sorted(ebth.exact.items())
    out += _U64.pack(len(exact))
    for term_id, frequency in exact:
        out += _TERM.pack(term_id, frequency)
    runs = ebth.bitmap.runs
    out += _U64.pack(len(runs))
    for start, end in runs:
        out += _RUN.pack(start, end)
    out += _EBTH_TAIL.pack(
        ebth.bucket_average, ebth.bucket_member_count, ebth.count
    )
    return offset


def snapshot_to_bytes(synopsis: XClusterSynopsis) -> bytes:
    """Encode a synopsis into one self-contained snapshot buffer."""
    vocabulary = _find_vocabulary(synopsis)
    labels: List[str] = []
    label_refs: Dict[str, int] = {}
    pools: Dict[int, bytearray] = {
        _SEC_HIST: bytearray(),
        _SEC_WAVELET: bytearray(),
        _SEC_PST: bytearray(),
        _SEC_EBTH: bytearray(),
    }

    nodes = sorted(synopsis, key=lambda node: node.node_id)
    node_records = bytearray()
    edge_records = bytearray()
    edge_count = 0
    try:
        for node in nodes:
            label_ref = label_refs.get(node.label)
            if label_ref is None:
                label_ref = len(labels)
                label_refs[node.label] = label_ref
                labels.append(node.label)
            kind, payload_offset = _encode_summary(node.vsumm, pools)
            node_records += _NODE.pack(
                node.node_id,
                label_ref,
                _VALUE_TYPE_CODES[node.value_type],
                kind,
                node.count,
                payload_offset,
            )
            # Canonical child order (sorted, as in the JSON encoder):
            # the decoder's edge insertion order — and therefore every
            # estimate's accumulation order — is then load-path
            # independent.
            for child_id in sorted(node.children):
                edge_records += _EDGE.pack(
                    node.node_id, child_id, node.children[child_id]
                )
                edge_count += 1
    except struct.error as err:
        raise SynopsisFormatError(f"value outside snapshot range: {err}") from err

    root_id = -1 if synopsis.root_id is None else synopsis.root_id
    sections: List[Tuple[int, bytes]] = [
        (_SEC_META, _META.pack(root_id, len(nodes), edge_count)),
        (_SEC_LABELS, _pack_string_pool(labels)),
        (
            _SEC_VOCAB,
            _pack_string_pool(
                list(vocabulary) if vocabulary is not None else []
            ),
        ),
        (_SEC_NODES, bytes(node_records)),
        (_SEC_EDGES, bytes(edge_records)),
        (_SEC_HIST, bytes(pools[_SEC_HIST])),
        (_SEC_WAVELET, bytes(pools[_SEC_WAVELET])),
        (_SEC_PST, bytes(pools[_SEC_PST])),
        (_SEC_EBTH, bytes(pools[_SEC_EBTH])),
    ]

    header_size = (
        len(SNAPSHOT_MAGIC)
        + _SECTION_COUNT.size
        + len(sections) * _SECTION_ENTRY.size
    )
    parts = [SNAPSHOT_MAGIC, _SECTION_COUNT.pack(len(sections))]
    offset = header_size
    for section_id, payload in sections:
        parts.append(_SECTION_ENTRY.pack(section_id, offset, len(payload)))
        offset += len(payload)
    parts.extend(payload for _, payload in sections)
    return b"".join(parts)


def _encode_summary(
    summary: Optional[ValueSummary], pools: Dict[int, bytearray]
) -> Tuple[int, int]:
    if summary is None:
        return _KIND_NONE, -1
    if isinstance(summary, HistogramSummary):
        return _KIND_HIST, _encode_histogram(summary, pools[_SEC_HIST])
    if isinstance(summary, WaveletSummary):
        return _KIND_WAVELET, _encode_wavelet(summary, pools[_SEC_WAVELET])
    if isinstance(summary, StringSummary):
        return _KIND_PST, _encode_pst(summary, pools[_SEC_PST])
    if isinstance(summary, TextSummary):
        return _KIND_EBTH, _encode_ebth(summary, pools[_SEC_EBTH])
    raise SynopsisFormatError(
        f"cannot encode summary {type(summary).__name__}"
    )


def save_snapshot(synopsis: XClusterSynopsis, path: str) -> None:
    """Write a synopsis to a binary snapshot file."""
    data = snapshot_to_bytes(synopsis)
    with open(path, "wb") as handle:
        handle.write(data)


# -- decoding ----------------------------------------------------------------


class _Section:
    """One mapped section: a window into the snapshot buffer."""

    __slots__ = ("buffer", "offset", "length")

    def __init__(self, buffer, offset: int, length: int) -> None:
        self.buffer = buffer
        self.offset = offset
        self.length = length

    @property
    def end(self) -> int:
        return self.offset + self.length

    def unpack(self, fmt: struct.Struct, at: int):
        """Unpack one record at section-relative offset ``at``."""
        absolute = self.offset + at
        if at < 0 or absolute + fmt.size > self.end:
            raise SynopsisFormatError(
                f"record at {at} overruns its {self.length}-byte section"
            )
        try:
            return fmt.unpack_from(self.buffer, absolute)
        except struct.error as err:  # pragma: no cover - bounds caught above
            raise SynopsisFormatError(f"corrupt record: {err}") from err


def _read_string_pool(section: _Section) -> List[str]:
    (count,) = section.unpack(_U64, 0)
    at = _U64.size
    strings: List[str] = []
    for _ in range(count):
        (length,) = section.unpack(_U32, at)
        at += _U32.size
        if at + length > section.length:
            raise SynopsisFormatError("string pool overruns its section")
        raw = bytes(section.buffer[section.offset + at:section.offset + at + length])
        try:
            strings.append(raw.decode("utf-8"))
        except UnicodeDecodeError as err:
            raise SynopsisFormatError(f"corrupt string pool: {err}") from err
        at += length
    return strings


def _decode_histogram_payload(section: _Section, at: int) -> HistogramSummary:
    (count,) = section.unpack(_U64, at)
    at += _U64.size
    buckets = []
    for _ in range(count):
        lo, hi, bucket_count = section.unpack(_BUCKET, at)
        at += _BUCKET.size
        buckets.append(HistogramBucket(lo, hi, bucket_count))
    try:
        return HistogramSummary(Histogram(buckets))
    except ValueError as err:
        raise SynopsisFormatError(f"corrupt histogram payload: {err}") from err


def _decode_wavelet_payload(section: _Section, at: int) -> WaveletSummary:
    domain_lo, cell_width, length, total = section.unpack(_WAVELET_HEAD, at)
    at += _WAVELET_HEAD.size
    (coefficient_count,) = section.unpack(_U64, at)
    at += _U64.size
    coefficients: Dict[int, float] = {}
    for _ in range(coefficient_count):
        index, value = section.unpack(_COEFF, at)
        at += _COEFF.size
        coefficients[index] = value
    try:
        return WaveletSummary(
            HaarWavelet(domain_lo, cell_width, length, coefficients, total)
        )
    except ValueError as err:
        raise SynopsisFormatError(f"corrupt wavelet payload: {err}") from err


def _decode_pst_payload(section: _Section, at: int) -> StringSummary:
    max_depth, string_count, node_count = section.unpack(_PST_HEAD, at)
    at += _PST_HEAD.size
    if max_depth < 1 or node_count < 0:
        raise SynopsisFormatError(
            f"corrupt PST header (max_depth={max_depth}, nodes={node_count})"
        )
    tree = PrunedSuffixTree(max_depth)
    tree.root.count = string_count
    # Pre-order reconstruction: the stack tracks how many children each
    # open node still expects.
    stack: List[Tuple[_Node, int]] = [(tree.root, node_count and 2**63)]
    attached = 0
    for _ in range(node_count):
        codepoint, child_count, count = section.unpack(_PST_NODE, at)
        at += _PST_NODE.size
        while stack and stack[-1][1] == 0:
            stack.pop()
        if not stack:
            raise SynopsisFormatError("PST payload has orphan trie nodes")
        parent, remaining = stack.pop()
        try:
            char = chr(codepoint)
        except (ValueError, OverflowError) as err:
            raise SynopsisFormatError(
                f"corrupt PST symbol {codepoint}"
            ) from err
        node = _Node(char, parent)
        node.count = count
        parent.children[char] = node
        attached += 1
        if remaining - 1 > 0:
            stack.append((parent, remaining - 1))
        if child_count:
            stack.append((node, child_count))
    for parent, remaining in stack:
        if parent is not tree.root and remaining > 0:
            raise SynopsisFormatError("PST payload truncated mid-subtree")
    tree._node_count = attached
    return StringSummary(tree)


def _decode_ebth_payload(
    section: _Section, at: int, vocabulary: Vocabulary
) -> TextSummary:
    (exact_count,) = section.unpack(_U64, at)
    at += _U64.size
    exact: Dict[int, float] = {}
    for _ in range(exact_count):
        term_id, frequency = section.unpack(_TERM, at)
        at += _TERM.size
        exact[term_id] = frequency
    (run_count,) = section.unpack(_U64, at)
    at += _U64.size
    runs = []
    for _ in range(run_count):
        runs.append(section.unpack(_RUN, at))
        at += _RUN.size
    bucket_average, bucket_member_count, count = section.unpack(_EBTH_TAIL, at)
    try:
        bitmap = RunLengthBitmap(runs)
    except ValueError as err:
        raise SynopsisFormatError(f"corrupt EBTH bitmap: {err}") from err
    return TextSummary(
        EndBiasedTermHistogram(
            vocabulary, exact, bitmap, bucket_average, bucket_member_count, count
        )
    )


class _VocabularyCell:
    """Decode-once holder for the shared vocabulary section.

    Every EBTH thunk routes through one cell, so the term pool is
    decoded at most once per snapshot — on the first TEXT-summary
    access — and all text summaries share a single id space, exactly as
    the JSON loader arranges.
    """

    __slots__ = ("_section", "_vocabulary")

    def __init__(self, section: _Section) -> None:
        self._section = section
        self._vocabulary: Optional[Vocabulary] = None

    def load(self) -> Vocabulary:
        if self._vocabulary is None:
            vocabulary = Vocabulary()
            for term in _read_string_pool(self._section):
                vocabulary.intern(term)
            self._vocabulary = vocabulary
        return self._vocabulary


def _summary_thunk(
    kind: int,
    sections: Dict[int, _Section],
    payload_offset: int,
    vocab_cell: _VocabularyCell,
) -> Callable[[], ValueSummary]:
    section = sections[_KIND_SECTION[kind]]
    if kind == _KIND_HIST:
        decode = lambda: _decode_histogram_payload(section, payload_offset)
    elif kind == _KIND_WAVELET:
        decode = lambda: _decode_wavelet_payload(section, payload_offset)
    elif kind == _KIND_PST:
        decode = lambda: _decode_pst_payload(section, payload_offset)
    else:
        decode = lambda: _decode_ebth_payload(
            section, payload_offset, vocab_cell.load()
        )

    def guarded() -> ValueSummary:
        # Corrupt payload values surface from summary constructors as
        # assorted ValueErrors/KeyErrors; callers (lazy access, eager
        # loads, the invariant auditor) are promised a format error.
        try:
            return decode()
        except SynopsisFormatError:
            raise
        except (ValueError, KeyError, TypeError, OverflowError) as err:
            raise SynopsisFormatError(
                f"corrupt summary payload at offset {payload_offset}: {err}"
            ) from err

    return guarded


def synopsis_from_snapshot(
    buffer, verify: bool = True, lazy: bool = True
) -> XClusterSynopsis:
    """Rebuild a synopsis from a snapshot buffer (bytes or mmap).

    Args:
        buffer: the snapshot bytes; an ``mmap.mmap`` works directly, so
            the value-summary payload sections stay on disk until first
            access.
        verify: validate graph invariants after decoding (the JSON
            loader's contract); pass ``False`` for relaxed auditing
            loads.
        lazy: defer per-node value-summary decoding to first ``vsumm``
            access (the serving hot path).  ``False`` decodes every
            payload eagerly, surfacing any payload corruption here.
    """
    sections = _section_table(buffer)
    root_id, node_count, edge_count = sections[_SEC_META].unpack(_META, 0)

    labels = _read_string_pool(sections[_SEC_LABELS])
    vocab_cell = _VocabularyCell(sections[_SEC_VOCAB])

    node_section = sections[_SEC_NODES]
    if node_section.length != node_count * _NODE.size:
        raise SynopsisFormatError(
            f"node table holds {node_section.length} bytes, expected "
            f"{node_count} records"
        )
    synopsis = XClusterSynopsis()
    nodes_by_id: Dict[int, SynopsisNode] = synopsis.nodes
    for record in range(node_count):
        node_id, label_ref, type_code, kind, count, payload_offset = (
            node_section.unpack(_NODE, record * _NODE.size)
        )
        if label_ref >= len(labels):
            raise SynopsisFormatError(
                f"node {node_id} references missing label {label_ref}"
            )
        value_type = _VALUE_TYPES_BY_CODE.get(type_code)
        if value_type is None:
            raise SynopsisFormatError(
                f"node {node_id} carries unknown value type {type_code}"
            )
        node = SynopsisNode(node_id, labels[label_ref], value_type, count)
        if node.node_id in nodes_by_id:
            raise SynopsisFormatError(f"duplicate node id {node.node_id}")
        if kind != _KIND_NONE:
            if kind not in _KIND_SECTION:
                raise SynopsisFormatError(
                    f"node {node_id} carries unknown summary kind {kind}"
                )
            thunk = _summary_thunk(kind, sections, payload_offset, vocab_cell)
            if lazy:
                node.defer_summary(thunk)
            else:
                node.vsumm = thunk()
        nodes_by_id[node.node_id] = node
    synopsis._next_id = max(nodes_by_id, default=-1) + 1

    edge_section = sections[_SEC_EDGES]
    if edge_section.length != edge_count * _EDGE.size:
        raise SynopsisFormatError(
            f"edge table holds {edge_section.length} bytes, expected "
            f"{edge_count} records"
        )
    for record in range(edge_count):
        parent_id, child_id, average = edge_section.unpack(
            _EDGE, record * _EDGE.size
        )
        parent = nodes_by_id.get(parent_id)
        child = nodes_by_id.get(child_id)
        if parent is None or child is None:
            raise SynopsisFormatError(
                f"edge {parent_id}->{child_id} targets a missing node"
            )
        try:
            synopsis.add_edge(parent, child, average)
        except ValueError as err:
            raise SynopsisFormatError(
                f"edge {parent_id}->{child_id}: {err}"
            ) from err

    if root_id >= 0:
        if root_id not in nodes_by_id:
            raise SynopsisFormatError(f"root id {root_id} missing")
        synopsis.root_id = root_id
    if verify:
        synopsis.validate()
    return synopsis


def _section_table(buffer) -> Dict[int, _Section]:
    size = len(buffer)
    magic_len = len(SNAPSHOT_MAGIC)
    if size < magic_len or bytes(buffer[:magic_len]) != SNAPSHOT_MAGIC:
        raise SynopsisFormatError("not a synopsis snapshot (bad magic bytes)")
    if size < magic_len + _SECTION_COUNT.size:
        raise SynopsisFormatError("snapshot truncated inside its header")
    (section_count,) = _SECTION_COUNT.unpack_from(buffer, magic_len)
    table_at = magic_len + _SECTION_COUNT.size
    table_end = table_at + section_count * _SECTION_ENTRY.size
    if table_end > size:
        raise SynopsisFormatError("snapshot truncated inside its section table")
    sections: Dict[int, _Section] = {}
    for index in range(section_count):
        section_id, offset, length = _SECTION_ENTRY.unpack_from(
            buffer, table_at + index * _SECTION_ENTRY.size
        )
        if offset < table_end or offset + length > size:
            raise SynopsisFormatError(
                f"section {section_id} [{offset}, {offset + length}) lies "
                f"outside the {size}-byte snapshot"
            )
        if section_id in sections:
            raise SynopsisFormatError(f"duplicate section id {section_id}")
        sections[section_id] = _Section(buffer, offset, length)
    missing = [sid for sid in _REQUIRED_SECTIONS if sid not in sections]
    if missing:
        raise SynopsisFormatError(f"snapshot is missing sections {missing}")
    return sections


def load_snapshot(
    path: str, verify: bool = True, lazy: bool = True, use_mmap: bool = True
) -> XClusterSynopsis:
    """Read a snapshot written by :func:`save_snapshot`.

    The file is mapped read-only when possible, so deferred summary
    payloads are paged in on first access rather than read up front;
    platforms or files that cannot be mapped fall back to one read.
    """
    handle = open(path, "rb")
    buffer = None
    if use_mmap:
        try:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            buffer = None  # empty file or unmappable fs: fall back
    if buffer is None:
        buffer = handle.read()
        handle.close()
        return synopsis_from_snapshot(buffer, verify=verify, lazy=lazy)
    # The mmap (and its handle) stay alive as long as any deferred
    # thunk references the section windows built over it.
    handle.close()
    return synopsis_from_snapshot(buffer, verify=verify, lazy=lazy)


def is_snapshot(path: str) -> bool:
    """Whether ``path`` starts with the snapshot magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SNAPSHOT_MAGIC)) == SNAPSHOT_MAGIC
    except OSError:
        return False

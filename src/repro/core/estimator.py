"""XCluster selectivity estimation (paper Section 5).

Estimation enumerates *query embeddings* — assignments of query variables
to synopsis nodes satisfying the structural and value constraints — and
sums their selectivities.  The implementation folds the enumeration into
a memoized sum-product traversal: for each query variable bound to a
synopsis node, the expected number of binding tuples multiplies across
branches and sums across the synopsis nodes each branch can embed into.

The generalized **Path-Value Independence** assumption approximates the
selectivity of a path ``u[p]/c`` as ``|u| · σ_p(u) · count(u, c)``:
predicate selectivities (from the node's value summary) de-correlate from
the structural child counters.

Descendant-axis counts are path-count sums over the synopsis graph.
Because node merges can introduce cycles (e.g. recursive elements merged
with their ancestors), path expansion is capped at ``max_path_length``,
which defaults to a generous bound and is naturally tight for DAGs
(expansion stops when the frontier empties).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.distance import SelectivityCache, node_selectivity
from repro.core.synopsis import XClusterSynopsis
from repro.query.ast import AxisStep, QueryNode, TwigQuery

#: Sentinel id for the virtual document node above the synopsis root.
VIRTUAL_ROOT = -1


def variable_order(query: TwigQuery) -> Dict[QueryNode, int]:
    """Stable per-query variable indexes (pre-order, root = 0).

    Memo and plan keys use these indexes instead of ``id(variable)``:
    indexes survive plan caching across queries, whereas ``id()`` keys
    would alias once a query object is garbage-collected and its
    addresses recycled.
    """
    return {variable: index for index, variable in enumerate(query.root.iter())}


class XClusterEstimator:
    """Estimates twig selectivities over one synopsis.

    This is the scalar *reference oracle*: a direct transcription of the
    paper's sum-product with no precomputed indexes.  The compiled
    engine in :mod:`repro.core.estimation` must match it to 1e-9 on
    every query.  The estimator is read-only and caches descendant path
    counts and predicate selectivities, so reuse it across a workload;
    rebuild it after the synopsis changes.
    """

    def __init__(
        self,
        synopsis: XClusterSynopsis,
        max_path_length: int = 40,
        selectivity_cache: Optional[SelectivityCache] = None,
    ) -> None:
        if max_path_length < 1:
            raise ValueError("max_path_length must be >= 1")
        self.synopsis = synopsis
        self.max_path_length = max_path_length
        self._descendant_cache: Dict[int, Dict[int, float]] = {}
        #: (value summary, predicate) -> σ, shared across every query this
        #: estimator serves (and with any caller that passed its own).
        self.selectivity_cache: SelectivityCache = (
            selectivity_cache if selectivity_cache is not None else {}
        )

    # -- structural path counts ---------------------------------------------

    def _descendants(self, node_id: int) -> Dict[int, float]:
        """Expected number of descendant *paths* per element of ``node_id``,
        keyed by target synopsis node (all labels, length >= 1)."""
        cached = self._descendant_cache.get(node_id)
        if cached is not None:
            return cached
        totals: Dict[int, float] = {}
        frontier: Dict[int, float] = {node_id: 1.0}
        for _ in range(self.max_path_length):
            next_frontier: Dict[int, float] = {}
            for source_id, weight in frontier.items():
                for child_id, avg in self.synopsis.node(source_id).children.items():
                    next_frontier[child_id] = (
                        next_frontier.get(child_id, 0.0) + weight * avg
                    )
            if not next_frontier:
                break
            for target_id, weight in next_frontier.items():
                totals[target_id] = totals.get(target_id, 0.0) + weight
            frontier = next_frontier
        self._descendant_cache[node_id] = totals
        return totals

    def _expand_step(
        self, frontier: Dict[int, float], step: AxisStep
    ) -> Dict[int, float]:
        """Advance a weighted synopsis frontier through one axis step."""
        result: Dict[int, float] = {}
        for source_id, weight in frontier.items():
            if step.axis == "child":
                if source_id == VIRTUAL_ROOT:
                    root = self.synopsis.root
                    if step.matches_label(root.label):
                        result[root.node_id] = result.get(root.node_id, 0.0) + weight
                    continue
                for child_id, avg in self.synopsis.node(source_id).children.items():
                    if step.matches_label(self.synopsis.node(child_id).label):
                        result[child_id] = result.get(child_id, 0.0) + weight * avg
            else:  # descendant axis
                if source_id == VIRTUAL_ROOT:
                    root = self.synopsis.root
                    reachable = dict(self._descendants(root.node_id))
                    reachable[root.node_id] = reachable.get(root.node_id, 0.0) + 1.0
                else:
                    reachable = self._descendants(source_id)
                for target_id, count in reachable.items():
                    if step.matches_label(self.synopsis.node(target_id).label):
                        result[target_id] = (
                            result.get(target_id, 0.0) + weight * count
                        )
        return result

    def reach(self, source_id: int, edge) -> Dict[int, float]:
        """Average number of elements (paths) reached per source element,
        keyed by target synopsis node, for a whole edge path."""
        frontier = {source_id: 1.0}
        for step in edge.steps:
            frontier = self._expand_step(frontier, step)
            if not frontier:
                break
        return frontier

    # -- estimation --------------------------------------------------------------

    def estimate(self, query: TwigQuery) -> float:
        """The estimated number of binding tuples of ``query``."""
        memo: Dict[Tuple[int, int], float] = {}
        return self._tuples(query.root, VIRTUAL_ROOT, memo, variable_order(query))

    def _tuples(
        self,
        variable: QueryNode,
        node_id: int,
        memo: Dict[Tuple[int, int], float],
        order: Dict[QueryNode, int],
    ) -> float:
        """Expected binding tuples of the subtree at ``variable`` per
        element of synopsis node ``node_id`` bound to it."""
        key = (order[variable], node_id)
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = 1.0
        for child in variable.children:
            branch = 0.0
            for target_id, count in self.reach(node_id, child.edge).items():
                target = self.synopsis.node(target_id)
                sigma = node_selectivity(
                    target, child.predicate, self.selectivity_cache
                )
                if sigma <= 0.0 or count <= 0.0:
                    continue
                branch += count * sigma * self._tuples(
                    child, target_id, memo, order
                )
            total *= branch
            if total == 0.0:
                break
        memo[key] = total
        return total


def estimate_selectivity(
    synopsis: XClusterSynopsis,
    query: TwigQuery,
    max_path_length: int = 40,
) -> float:
    """One-shot estimate (see :class:`XClusterEstimator`)."""
    return XClusterEstimator(synopsis, max_path_length).estimate(query)

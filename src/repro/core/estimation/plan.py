"""Twig-query plan compilation.

A :class:`CompiledPlan` is the query-side half of the estimation split:
a flat, immutable rendering of a :class:`~repro.query.ast.TwigQuery`
with stable pre-order variable indexes, canonicalized edge-path keys
(the :data:`~repro.core.estimation.indexes.EdgeKey` tuples the synopsis
-side caches are keyed by), and the value predicates.  Plans contain no
synopsis state at all, so one plan serves any synopsis — autobudget
trials retarget a compiled workload across dozens of candidate synopses
without recompiling — and plans are safely cached across queries: two
structurally identical queries share one plan via :attr:`CompiledPlan.
signature` (memo keys use the per-plan variable index, never ``id()``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.estimation.indexes import EdgeKey
from repro.query.ast import EdgePath, QueryNode, TwigQuery
from repro.query.predicates import Predicate

#: Canonical cross-query plan-cache key: one ``(parent index, edge key,
#: predicate)`` triple per pre-order variable.  Variable names are
#: excluded — they never affect the estimate.
PlanSignature = Tuple[Tuple[int, Optional[EdgeKey], Predicate], ...]


def edge_key_of(edge: EdgePath) -> EdgeKey:
    """The canonical ``((axis, label), ...)`` key of one edge path."""
    return tuple((step.axis, step.label) for step in edge.steps)


class PlanVariable:
    """One compiled query variable.

    Attributes:
        index: stable pre-order position within the plan (root = 0).
        name: the source variable's name (observability only).
        edge_key: canonical key of the incoming edge path (``None`` for
            the root variable).
        predicate: the variable's value predicate.
        children: plan indexes of the child variables, in query order.
    """

    __slots__ = ("index", "name", "edge_key", "predicate", "children")

    def __init__(
        self,
        index: int,
        name: str,
        edge_key: Optional[EdgeKey],
        predicate: Predicate,
    ) -> None:
        self.index = index
        self.name = name
        self.edge_key = edge_key
        self.predicate = predicate
        self.children: Tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlanVariable #{self.index} {self.name} children={self.children}>"


class CompiledPlan:
    """An executable twig plan: flat variables plus the cache signature.

    Attributes:
        signature: the canonical :data:`PlanSignature` (plan-cache key).
        variables: every :class:`PlanVariable` in pre-order; index 0 is
            the root variable bound to the virtual document root.
    """

    __slots__ = ("signature", "variables")

    def __init__(
        self, signature: PlanSignature, variables: Tuple[PlanVariable, ...]
    ) -> None:
        self.signature = signature
        self.variables = variables

    @property
    def variable_count(self) -> int:
        """Number of query variables in the plan."""
        return len(self.variables)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledPlan variables={len(self.variables)}>"


def compile_query(query: TwigQuery) -> CompiledPlan:
    """Compile ``query`` into a :class:`CompiledPlan` in one traversal."""
    variables: List[PlanVariable] = []
    signature: List[Tuple[int, Optional[EdgeKey], Predicate]] = []

    def visit(node: QueryNode, parent_index: int) -> int:
        index = len(variables)
        edge_key = edge_key_of(node.edge) if node.edge is not None else None
        variable = PlanVariable(index, node.name, edge_key, node.predicate)
        variables.append(variable)
        signature.append((parent_index, edge_key, node.predicate))
        variable.children = tuple(
            visit(child, index) for child in node.children
        )
        return index

    visit(query.root, -1)
    return CompiledPlan(tuple(signature), tuple(variables))

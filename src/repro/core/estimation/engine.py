"""The compiled twig-plan estimation engine.

:class:`CompiledEstimator` executes :class:`~repro.core.estimation.plan.
CompiledPlan` objects against the shared per-synopsis caches of
:class:`~repro.core.estimation.indexes.SynopsisIndex`.  The sum-product
is the same as the scalar :class:`~repro.core.estimator.XClusterEstimator`
— every float is accumulated in the identical order, so the compiled
estimate matches the scalar oracle bit for bit — but the structural
work is served from tables:

* axis steps replay precomputed transition rows instead of re-scanning
  and re-matching labels per frontier node,
* whole edge paths hit the memoized reach cache (keyed by canonicalized
  edge keys, so every repetition of ``//item`` across a workload costs
  one dict probe),
* descendant closures and predicate selectivities are shared across
  every estimator instance bound to the same synopsis.

:class:`EstimatorStats` is the observability layer mirroring the
builder's ``BuildStats``: plan-compile vs. execute timers, per-cache hit
rates, and frontier-size telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.estimation.indexes import (
    EdgeKey,
    SynopsisIndex,
    TransitionRow,
    shared_index,
)
from repro.core.estimation.plan import CompiledPlan, PlanSignature, compile_query
from repro.core.estimator import VIRTUAL_ROOT
from repro.core.synopsis import XClusterSynopsis
from repro.query.ast import WILDCARD, TwigQuery
from repro.query.predicates import Predicate, TruePredicate

#: Cross-query plan cache: canonical signature -> shared plan.
PlanCache = Dict[PlanSignature, CompiledPlan]


@dataclass
class EstimatorStats:
    """Diagnostics of one estimation engine (or serving layer).

    Counters accumulate across queries (and, for a shared stats object,
    across synopses), mirroring the construction-side ``BuildStats``.
    """

    #: Queries estimated (plan executions).
    queries_estimated: int = 0
    #: Plans compiled fresh vs. served from the cross-query plan cache.
    plans_compiled: int = 0
    plan_cache_hits: int = 0
    #: Wall-clock seconds spent compiling plans / executing them.
    plan_compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: Whole-edge reach frontiers served from / missing the shared cache.
    reach_cache_hits: int = 0
    reach_cache_misses: int = 0
    #: Axis-step transition rows resolved and memoized.
    transition_rows_built: int = 0
    #: Descendant closures computed (shared across estimator instances).
    descendant_closures_built: int = 0
    #: Predicate selectivities served from / missing the shared cache.
    selectivity_cache_hits: int = 0
    selectivity_cache_misses: int = 0
    #: Frontier telemetry over cache-missing reach computations.
    frontiers_expanded: int = 0
    frontier_nodes_total: int = 0
    max_frontier_nodes: int = 0
    #: Times the synopsis index detected a mutation and dropped tables.
    index_invalidations: int = 0
    #: Processes used by the last batched call (1 = in-process serial).
    workers_used: int = 1

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of compilations served by the cross-query cache."""
        total = self.plans_compiled + self.plan_cache_hits
        return self.plan_cache_hits / total if total else 0.0

    @property
    def reach_cache_hit_rate(self) -> float:
        """Fraction of edge-path reach lookups served cached."""
        total = self.reach_cache_hits + self.reach_cache_misses
        return self.reach_cache_hits / total if total else 0.0

    @property
    def selectivity_cache_hit_rate(self) -> float:
        """Fraction of cache-eligible selectivity lookups served cached."""
        total = self.selectivity_cache_hits + self.selectivity_cache_misses
        return self.selectivity_cache_hits / total if total else 0.0

    @property
    def average_frontier_nodes(self) -> float:
        """Mean per-step frontier size over uncached reach expansions."""
        if not self.frontiers_expanded:
            return 0.0
        return self.frontier_nodes_total / self.frontiers_expanded


class CompiledEstimator:
    """Plan-compiling, cache-backed twig selectivity estimator.

    Drop-in faster equivalent of the scalar ``XClusterEstimator`` (the
    parity tests pin the two to 1e-9 on full workloads).  Instances
    bound to the same synopsis object share one
    :class:`~repro.core.estimation.indexes.SynopsisIndex`; mutating the
    synopsis between queries is detected by version and invalidates the
    shared tables automatically.
    """

    def __init__(
        self,
        synopsis: XClusterSynopsis,
        max_path_length: int = 40,
        index: Optional[SynopsisIndex] = None,
        plan_cache: Optional[PlanCache] = None,
        stats: Optional[EstimatorStats] = None,
    ) -> None:
        if max_path_length < 1:
            raise ValueError("max_path_length must be >= 1")
        self.synopsis = synopsis
        self.max_path_length = max_path_length
        if index is None:
            index = shared_index(synopsis)
        elif index.synopsis is not synopsis:
            raise ValueError("index was built for a different synopsis")
        self.index = index
        self.plan_cache: PlanCache = plan_cache if plan_cache is not None else {}
        self.stats = stats if stats is not None else EstimatorStats()

    # -- compilation -------------------------------------------------------

    def compile(self, query: TwigQuery) -> CompiledPlan:
        """The (cross-query cached) compiled plan of ``query``."""
        started = perf_counter()
        plan = compile_query(query)
        cached = self.plan_cache.get(plan.signature)
        if cached is not None:
            self.stats.plan_cache_hits += 1
            plan = cached
        else:
            self.plan_cache[plan.signature] = plan
            self.stats.plans_compiled += 1
        self.stats.plan_compile_seconds += perf_counter() - started
        return plan

    # -- execution ---------------------------------------------------------

    def estimate(self, query: TwigQuery) -> float:
        """The estimated number of binding tuples of ``query``."""
        return self.estimate_plan(self.compile(query))

    def estimate_plan(self, plan: CompiledPlan) -> float:
        """Execute a compiled plan against the bound synopsis."""
        if self.index.ensure_current():
            self.stats.index_invalidations += 1
        started = perf_counter()
        memo: Dict[Tuple[int, int], float] = {}
        value = self._tuples(plan, 0, VIRTUAL_ROOT, memo)
        self.stats.execute_seconds += perf_counter() - started
        self.stats.queries_estimated += 1
        return value

    def reach(self, source_id: int, edge_key: EdgeKey) -> Dict[int, float]:
        """Memoized whole-edge frontier from one source node.

        The returned dict is shared cache state — do not mutate it.
        """
        key = (source_id, edge_key, self.max_path_length)
        cached = self.index.reach_cache.get(key)
        if cached is not None:
            self.stats.reach_cache_hits += 1
            return cached
        self.stats.reach_cache_misses += 1
        frontier: Dict[int, float] = {source_id: 1.0}
        for axis, label in edge_key:
            result: Dict[int, float] = {}
            if axis == "child":
                for node_id, weight in frontier.items():
                    for target_id, avg in self._child_row(node_id, label):
                        result[target_id] = (
                            result.get(target_id, 0.0) + weight * avg
                        )
            else:  # descendant axis
                for node_id, weight in frontier.items():
                    for target_id, count in self._descendant_row(node_id, label):
                        result[target_id] = (
                            result.get(target_id, 0.0) + weight * count
                        )
            frontier = result
            self.stats.frontiers_expanded += 1
            self.stats.frontier_nodes_total += len(frontier)
            if len(frontier) > self.stats.max_frontier_nodes:
                self.stats.max_frontier_nodes = len(frontier)
            if not frontier:
                break
        self.index.reach_cache[key] = frontier
        return frontier

    # -- transition tables -------------------------------------------------

    def _child_row(self, source_id: int, label: str) -> TransitionRow:
        """Resolved child-axis transitions of one (source, label test)."""
        key = (source_id, label)
        row = self.index.child_rows.get(key)
        if row is not None:
            return row
        if source_id == VIRTUAL_ROOT:
            root = self.synopsis.root
            if label == WILDCARD or root.label == label:
                row = ((root.node_id, 1.0),)
            else:
                row = ()
        else:
            children = self.synopsis.node(source_id).children
            if label == WILDCARD:
                row = tuple(children.items())
            else:
                members = self.index.label_set(label)
                row = tuple(
                    (child_id, avg)
                    for child_id, avg in children.items()
                    if child_id in members
                )
        self.index.child_rows[key] = row
        self.stats.transition_rows_built += 1
        return row

    def _descendant_row(self, source_id: int, label: str) -> TransitionRow:
        """Resolved descendant-axis transitions (closure-order pairs)."""
        key = (source_id, label, self.max_path_length)
        row = self.index.descendant_rows.get(key)
        if row is not None:
            return row
        if source_id == VIRTUAL_ROOT:
            root = self.synopsis.root
            reachable = dict(self._descendants(root.node_id))
            reachable[root.node_id] = reachable.get(root.node_id, 0.0) + 1.0
        else:
            reachable = self._descendants(source_id)
        if label == WILDCARD:
            row = tuple(reachable.items())
        else:
            members = self.index.label_set(label)
            row = tuple(
                (target_id, count)
                for target_id, count in reachable.items()
                if target_id in members
            )
        self.index.descendant_rows[key] = row
        self.stats.transition_rows_built += 1
        return row

    def _descendants(self, node_id: int) -> Dict[int, float]:
        """The shared descendant closure of ``node_id`` (scalar-ordered)."""
        key = (node_id, self.max_path_length)
        cached = self.index.descendant_closures.get(key)
        if cached is not None:
            return cached
        totals: Dict[int, float] = {}
        frontier: Dict[int, float] = {node_id: 1.0}
        for _ in range(self.max_path_length):
            next_frontier: Dict[int, float] = {}
            for source_id, weight in frontier.items():
                for child_id, avg in self.synopsis.node(source_id).children.items():
                    next_frontier[child_id] = (
                        next_frontier.get(child_id, 0.0) + weight * avg
                    )
            if not next_frontier:
                break
            for target_id, weight in next_frontier.items():
                totals[target_id] = totals.get(target_id, 0.0) + weight
            frontier = next_frontier
        self.index.descendant_closures[key] = totals
        self.stats.descendant_closures_built += 1
        return totals

    # -- the sum-product ---------------------------------------------------

    def _selectivity(self, node, predicate: Predicate) -> float:
        """σ_p(u) with the exact semantics of ``node_selectivity``."""
        if isinstance(predicate, TruePredicate):
            return 1.0
        vsumm = node.vsumm
        if vsumm is None:
            return 1.0
        if predicate.value_type is not node.value_type:
            return 0.0
        key = (vsumm, predicate)
        cache = self.index.selectivity_cache
        value = cache.get(key)
        if value is None:
            value = vsumm.selectivity(predicate)
            cache[key] = value
            self.stats.selectivity_cache_misses += 1
        else:
            self.stats.selectivity_cache_hits += 1
        return value

    def _tuples(
        self,
        plan: CompiledPlan,
        variable_index: int,
        node_id: int,
        memo: Dict[Tuple[int, int], float],
    ) -> float:
        """Expected binding tuples of the plan subtree at one variable
        per element of the synopsis node bound to it (scalar-identical
        accumulation order)."""
        key = (variable_index, node_id)
        cached = memo.get(key)
        if cached is not None:
            return cached
        variables = plan.variables
        nodes = self.synopsis.nodes
        total = 1.0
        for child_index in variables[variable_index].children:
            child = variables[child_index]
            branch = 0.0
            for target_id, count in self.reach(node_id, child.edge_key).items():
                sigma = self._selectivity(nodes[target_id], child.predicate)
                if sigma <= 0.0 or count <= 0.0:
                    continue
                branch += count * sigma * self._tuples(
                    plan, child_index, target_id, memo
                )
            total *= branch
            if total == 0.0:
                break
        memo[key] = total
        return total

"""Batched workload serving over the compiled estimation engine.

Two entry points:

* :func:`estimate_many` — estimate a batch of queries against one
  synopsis, optionally sharded over a process pool.  Each worker builds
  one :class:`~repro.core.estimation.engine.CompiledEstimator` in its
  initializer and keeps it (and its shared caches) warm across every
  chunk it serves, so per-worker cache state amortizes exactly like the
  single-process path.  Under the preferred ``fork`` start method the
  synopsis and the query list are inherited by the children — never
  pickled; when only ``spawn`` is available they travel through the
  pool initargs instead (see :mod:`repro.core.parallel`).
* :class:`WorkloadEstimator` — compile a fixed workload once and serve
  it against *changing* synopses.  Plans are synopsis-independent, so
  retargeting (autobudget evaluates one candidate synopsis per trial
  ratio) reuses every compiled plan and only the per-synopsis indexes
  are rebuilt.

Estimation is a pure function of (synopsis, query): the parallel path
returns the same floats as the serial path regardless of chunking, and
it silently falls back to serial when process pools are unavailable
(no usable start method, sandboxed environments) or the batch is too
small to amortize the pool start.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.estimation.engine import (
    CompiledEstimator,
    EstimatorStats,
    PlanCache,
)
from repro.core.estimation.plan import CompiledPlan
from repro.core.parallel import pool_context
from repro.core.synopsis import XClusterSynopsis
from repro.query.ast import TwigQuery

#: Below this many queries the pool-start/IPC overhead exceeds the
#: estimation work, so batched calls stay serial.
MIN_PARALLEL_QUERIES = 16

#: Per-worker state set by the pool initializer (inherited through the
#: fork, or pickled as initargs under spawn).  The estimator persists
#: across chunks, keeping each worker's caches warm.
_WORKER_ESTIMATOR: Optional[CompiledEstimator] = None
_WORKER_QUERIES: Sequence[TwigQuery] = ()


def _init_estimation_worker(
    synopsis: XClusterSynopsis,
    queries: Sequence[TwigQuery],
    max_path_length: int,
) -> None:
    global _WORKER_ESTIMATOR, _WORKER_QUERIES
    _WORKER_ESTIMATOR = CompiledEstimator(synopsis, max_path_length)
    _WORKER_QUERIES = queries


def _estimate_chunk(indexes: Sequence[int]) -> List[float]:
    """Estimate one chunk of query indexes inside a worker process."""
    estimator = _WORKER_ESTIMATOR
    queries = _WORKER_QUERIES
    return [estimator.estimate(queries[index]) for index in indexes]


def _estimate_parallel(
    synopsis: XClusterSynopsis,
    queries: Sequence[TwigQuery],
    workers: int,
    max_path_length: int,
) -> Optional[List[float]]:
    """Shard ``queries`` over a process pool; ``None`` means fall back."""
    context = pool_context()
    if context is None:
        return None
    chunk_count = min(len(queries), workers * 4)
    chunks = [
        list(range(offset, len(queries), chunk_count))
        for offset in range(chunk_count)
    ]
    try:
        with context.Pool(
            processes=workers,
            initializer=_init_estimation_worker,
            initargs=(synopsis, queries, max_path_length),
        ) as pool:
            chunk_results = pool.map(_estimate_chunk, chunks)
    except (OSError, PermissionError, RuntimeError):
        return None
    results: List[float] = [0.0] * len(queries)
    for chunk, estimates in zip(chunks, chunk_results):
        for index, estimate in zip(chunk, estimates):
            results[index] = estimate
    return results


def estimate_many(
    synopsis: XClusterSynopsis,
    queries: Sequence[TwigQuery],
    workers: int = 1,
    max_path_length: int = 40,
    estimator: Optional[CompiledEstimator] = None,
) -> List[float]:
    """Estimates for a batch of queries, in input order.

    Args:
        synopsis: the synopsis to estimate against.
        queries: the twig queries.
        workers: processes to shard over; 1 (default) stays in-process.
            The parallel path falls back to serial when pools are
            unavailable or the batch is smaller than
            :data:`MIN_PARALLEL_QUERIES`.
        max_path_length: descendant-axis expansion bound.
        estimator: reuse an existing engine (serial path only); its
            caches and stats then carry across calls.

    Returns:
        One estimate per query, ordered as the input.
    """
    queries = list(queries)
    if estimator is not None and estimator.synopsis is not synopsis:
        raise ValueError("estimator is bound to a different synopsis")
    if workers > 1 and len(queries) >= MIN_PARALLEL_QUERIES:
        results = _estimate_parallel(synopsis, queries, workers, max_path_length)
        if results is not None:
            if estimator is not None:
                estimator.stats.workers_used = workers
            return results
    if estimator is None:
        estimator = CompiledEstimator(synopsis, max_path_length)
    estimator.stats.workers_used = 1
    return [estimator.estimate(query) for query in queries]


class WorkloadEstimator:
    """Compile-once serving of a fixed workload against any synopsis.

    The workload's plans and the cross-query plan cache live here and
    survive synopsis changes; per-synopsis state (transition tables,
    reach frontiers, selectivities) lives in the shared
    :class:`~repro.core.estimation.indexes.SynopsisIndex` of whichever
    synopsis a call targets.  ``stats`` aggregates across every call.
    """

    def __init__(
        self, queries: Sequence[TwigQuery], max_path_length: int = 40
    ) -> None:
        self.queries: List[TwigQuery] = list(queries)
        self.max_path_length = max_path_length
        self.plan_cache: PlanCache = {}
        self.stats = EstimatorStats()
        self._plans: Optional[List[CompiledPlan]] = None
        #: The engine of the most recent target synopsis.  Holding it
        #: keeps that synopsis' shared index (reach frontiers, transition
        #: rows, closures) alive across calls — the repeated-workload hot
        #: path — while older synopses' caches are free to be collected.
        self._estimator: Optional[CompiledEstimator] = None

    def estimator_for(self, synopsis: XClusterSynopsis) -> CompiledEstimator:
        """A compiled estimator on ``synopsis`` sharing this workload's
        plan cache and stats (reused while the target stays the same)."""
        estimator = self._estimator
        if estimator is None or estimator.synopsis is not synopsis:
            estimator = CompiledEstimator(
                synopsis,
                self.max_path_length,
                plan_cache=self.plan_cache,
                stats=self.stats,
            )
            self._estimator = estimator
        return estimator

    def estimate_all(
        self, synopsis: XClusterSynopsis, workers: int = 1
    ) -> List[float]:
        """Estimates for every workload query against ``synopsis``.

        With ``workers > 1`` the batch shards over a process pool (each
        worker compiles its own warm plan cache — plans are cheap; the
        synopsis-side tables dominate); otherwise the precompiled plans
        execute in-process.
        """
        if workers > 1 and len(self.queries) >= MIN_PARALLEL_QUERIES:
            results = _estimate_parallel(
                synopsis, self.queries, workers, self.max_path_length
            )
            if results is not None:
                self.stats.workers_used = workers
                return results
        estimator = self.estimator_for(synopsis)
        if self._plans is None:
            self._plans = [estimator.compile(query) for query in self.queries]
        self.stats.workers_used = 1
        return [estimator.estimate_plan(plan) for plan in self._plans]

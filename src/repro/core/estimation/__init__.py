"""Compiled twig-plan estimation: query serving at workload scale.

The scalar :class:`~repro.core.estimator.XClusterEstimator` walks the
synopsis afresh for every query.  This package splits estimation into a
query-side compile step and a synopsis-side lookup layer so a workload
is served from tables:

* :mod:`repro.core.estimation.plan` — :class:`CompiledPlan`: stable
  variable indexes, canonical edge keys, cross-query plan signatures;
* :mod:`repro.core.estimation.indexes` — :class:`SynopsisIndex`: the
  shared label index, per-(source, axis, label-test) transition rows,
  descendant closures, memoized reach frontiers, and the selectivity
  cache, with version-checked invalidation on synopsis mutation;
* :mod:`repro.core.estimation.engine` — :class:`CompiledEstimator` and
  the :class:`EstimatorStats` observability layer (compile/execute
  timers, cache hit rates, frontier telemetry);
* :mod:`repro.core.estimation.serving` — :func:`estimate_many` and
  :class:`WorkloadEstimator`: batched serving over a fork-based process
  pool with per-worker warm caches, and compile-once retargeting across
  synopses.

The compiled path is a bit-exact replay of the scalar sum-product (the
scalar estimator stays as the reference oracle; parity is pinned at
1e-9 by ``tests/test_estimation.py``).
"""

from repro.core.estimation.engine import (
    CompiledEstimator,
    EstimatorStats,
    PlanCache,
)
from repro.core.estimation.indexes import (
    EdgeKey,
    SynopsisIndex,
    TransitionRow,
    shared_index,
)
from repro.core.estimation.plan import (
    CompiledPlan,
    PlanSignature,
    PlanVariable,
    compile_query,
    edge_key_of,
)
from repro.core.estimation.serving import (
    MIN_PARALLEL_QUERIES,
    WorkloadEstimator,
    estimate_many,
)

__all__ = [
    "CompiledEstimator",
    "CompiledPlan",
    "EstimatorStats",
    "EdgeKey",
    "MIN_PARALLEL_QUERIES",
    "PlanCache",
    "PlanSignature",
    "PlanVariable",
    "SynopsisIndex",
    "TransitionRow",
    "WorkloadEstimator",
    "compile_query",
    "edge_key_of",
    "estimate_many",
    "shared_index",
]

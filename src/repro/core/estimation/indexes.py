"""Shared synopsis-side caches for the compiled estimation engine.

Estimation over a partition graph should be a table lookup, not a
re-traversal: the structural-summary literature (DescribeX's precomputed
axis extents, Arion et al.'s path-summary lookups) precomputes exactly
the per-axis transition information that the scalar estimator's
``_expand_step`` re-derives on every call.  A :class:`SynopsisIndex`
holds that derived state for one synopsis:

* a **label → nodes** index (as membership sets, used to filter
  transition rows without per-node attribute lookups),
* per-``(source, axis, label-test)`` **transition rows** — the resolved
  ``(target, average-count)`` pairs one axis step can move a frontier
  entry through,
* **descendant closures** — the expected descendant-path counts of the
  scalar estimator's ``_descendants``, shared across every estimator
  instance bound to the same synopsis,
* a memoized **reach cache** keyed by canonicalized edge paths, and
* a **selectivity cache** keyed by ``(value summary, predicate)``.

The index is deliberately dumb storage: :class:`~repro.core.estimation.
engine.CompiledEstimator` populates the tables (and accounts hits and
misses on its own :class:`~repro.core.estimation.engine.EstimatorStats`).
Invalidation is explicit and cheap — the synopsis bumps an integer
``version`` on every structural mutation, and :meth:`ensure_current`
drops every derived table when the versions diverge.  Value-summary
replacement needs no bump: the selectivity cache keys on the summary
object itself, so a swapped summary simply misses.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.distance import SelectivityCache
from repro.core.synopsis import XClusterSynopsis

#: A resolved transition row: ``(target node id, average paths per
#: source element)`` pairs in the scalar expansion's iteration order
#: (so replaying a row reproduces the scalar float-summation order).
TransitionRow = Tuple[Tuple[int, float], ...]

#: Canonical edge-path key: one ``(axis, label)`` pair per step.
EdgeKey = Tuple[Tuple[str, str], ...]


class SynopsisIndex:
    """Derived estimation tables for one synopsis, shared by estimators.

    Attributes:
        synopsis: the indexed synopsis.
        child_rows: ``(source id, label test) -> TransitionRow`` for the
            child axis.
        descendant_rows: ``(source id, label test, max path length) ->
            TransitionRow`` for the descendant axis.
        descendant_closures: ``(node id, max path length) -> {target id:
            expected descendant paths}``.
        reach_cache: ``(source id, EdgeKey, max path length) -> frontier``
            for whole edge paths; cached frontiers must not be mutated.
        selectivity_cache: ``(value summary, predicate) -> σ``.
        invalidations: times :meth:`ensure_current` dropped the tables.
    """

    def __init__(self, synopsis: XClusterSynopsis) -> None:
        self.synopsis = synopsis
        self._version = synopsis.version
        self._label_sets: Optional[Dict[str, FrozenSet[int]]] = None
        self.child_rows: Dict[Tuple[int, str], TransitionRow] = {}
        self.descendant_rows: Dict[Tuple[int, str, int], TransitionRow] = {}
        self.descendant_closures: Dict[Tuple[int, int], Dict[int, float]] = {}
        self.reach_cache: Dict[Tuple[int, EdgeKey, int], Dict[int, float]] = {}
        self.selectivity_cache: SelectivityCache = {}
        self.invalidations = 0

    def ensure_current(self) -> bool:
        """Drop every derived table if the synopsis has mutated.

        Returns ``True`` when an invalidation happened.  Engines call
        this once per estimate, so a mutation between queries is caught
        before any stale table is consulted.
        """
        if self._version == self.synopsis.version:
            return False
        self._version = self.synopsis.version
        self._label_sets = None
        self.child_rows.clear()
        self.descendant_rows.clear()
        self.descendant_closures.clear()
        self.reach_cache.clear()
        self.selectivity_cache.clear()
        self.invalidations += 1
        return True

    def invariant_issues(self) -> list:
        """Staleness issues with the cached tables (empty = healthy).

        The index's correctness rests on two properties that a missed
        ``ensure_current`` call would silently break: the recorded
        version matches the synopsis, and every node id appearing in a
        cached table still exists.  The differential harness calls this
        after serving a workload to assert the version-checked
        invalidation protocol held.
        """
        # Imported here: indexes.py must not import the engine module
        # (engine imports indexes).
        from repro.core.estimator import VIRTUAL_ROOT

        issues = []
        if self._version != self.synopsis.version:
            issues.append(
                f"index version {self._version} behind synopsis version "
                f"{self.synopsis.version} (ensure_current not called)"
            )
        nodes = self.synopsis.nodes
        for source_id, _label in self.child_rows:
            if source_id == VIRTUAL_ROOT:
                continue  # the estimators' virtual document root
            if source_id not in nodes:
                issues.append(
                    f"child-axis row cached for missing node {source_id}"
                )
        for source_id, _label, _limit in self.descendant_rows:
            if source_id == VIRTUAL_ROOT:
                continue
            if source_id not in nodes:
                issues.append(
                    f"descendant-axis row cached for missing node {source_id}"
                )
        for (source_id, _limit), closure in self.descendant_closures.items():
            if source_id == VIRTUAL_ROOT:
                continue
            if source_id not in nodes:
                issues.append(
                    f"descendant closure cached for missing node {source_id}"
                )
                continue
            for target_id in closure:
                if target_id not in nodes:
                    issues.append(
                        f"descendant closure of node {source_id} reaches "
                        f"missing node {target_id}"
                    )
        if self._label_sets is not None:
            for label, members in self._label_sets.items():
                for node_id in members:
                    if node_id not in nodes:
                        issues.append(
                            f"label index {label!r} lists missing node {node_id}"
                        )
        return issues

    def label_set(self, label: str) -> FrozenSet[int]:
        """The ids of every cluster carrying ``label`` (the label index)."""
        table = self._label_sets
        if table is None:
            members: Dict[str, list] = {}
            for node in self.synopsis:
                members.setdefault(node.label, []).append(node.node_id)
            table = {tag: frozenset(ids) for tag, ids in members.items()}
            self._label_sets = table
        return table.get(label, frozenset())


#: Registry of shared indexes, keyed by synopsis identity.  Values are
#: weak: an index lives exactly as long as some estimator references it.
#: While an index is alive it strongly references its synopsis, so the
#: id key cannot be recycled under a live entry.
_SHARED_INDEXES: "weakref.WeakValueDictionary[int, SynopsisIndex]" = (
    weakref.WeakValueDictionary()
)


def shared_index(synopsis: XClusterSynopsis) -> SynopsisIndex:
    """The process-wide shared :class:`SynopsisIndex` of ``synopsis``.

    Estimators created at different times for the same synopsis object
    resolve to the same index, so descendant closures, transition rows,
    and reach frontiers computed by one instance are reused by all.
    """
    index = _SHARED_INDEXES.get(id(synopsis))
    if index is None or index.synopsis is not synopsis:
        index = SynopsisIndex(synopsis)
        _SHARED_INDEXES[id(synopsis)] = index
    return index

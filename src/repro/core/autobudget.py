"""Automatic B_str / B_val allocation from a unified space budget.

The paper (Section 4.3) leaves open how to split a single total budget
``B`` between structure and values, suggesting "a binary search in the
range of possible Bstr/Bval ratios, based on the observed estimation
error on a sample workload".  This module implements exactly that: a
coarse ratio grid followed by a golden-section-style refinement around
the best point, scoring each candidate synopsis on a caller-supplied
sample of (query, exact count) pairs.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.estimation import WorkloadEstimator
from repro.core.reference import LabelPath, build_reference_synopsis
from repro.core.synopsis import XClusterSynopsis
from repro.query.ast import TwigQuery
from repro.xmltree.tree import XMLTree

#: A sample workload: (query, exact selectivity) pairs.
SamplePair = Tuple[TwigQuery, int]

#: Ratio grid for the coarse pass (structural share of the total budget).
DEFAULT_RATIO_GRID = (0.02, 0.05, 0.1, 0.2, 0.35, 0.5)


@dataclass
class AutoBudgetResult:
    """Outcome of the automatic allocation search.

    Attributes:
        synopsis: the best synopsis found.
        structural_budget: the chosen ``B_str`` in bytes.
        value_budget: the chosen ``B_val`` in bytes.
        ratio: the structural share ``B_str / B``.
        error: the sample-workload error of the chosen synopsis.
        trials: every (ratio, error) pair evaluated, in evaluation order.
    """

    synopsis: XClusterSynopsis
    structural_budget: int
    value_budget: int
    ratio: float
    error: float
    trials: List[Tuple[float, float]]


def _sample_error(
    synopsis: XClusterSynopsis,
    sample: Sequence[SamplePair],
    workload_estimator: Optional[WorkloadEstimator] = None,
) -> float:
    """Average absolute relative error with the 10-percentile bound.

    A caller-held :class:`WorkloadEstimator` carries the compiled query
    plans across trial synopses — the ratio search scores the same
    sample against a dozen candidates, so only the per-synopsis indexes
    are rebuilt per trial.
    """
    counts = sorted(exact for _, exact in sample)
    index = max(0, (len(counts) + 9) // 10 - 1)
    bound = float(max(1, counts[index]))
    if workload_estimator is None:
        workload_estimator = WorkloadEstimator([query for query, _ in sample])
    estimates = workload_estimator.estimate_all(synopsis)
    total = 0.0
    for (_, exact), estimate in zip(sample, estimates):
        total += abs(exact - estimate) / max(exact, bound)
    return total / len(sample)


def allocate_budget(
    reference: XClusterSynopsis,
    total_budget: int,
    sample: Sequence[SamplePair],
    config: Optional[BuildConfig] = None,
    ratio_grid: Sequence[float] = DEFAULT_RATIO_GRID,
    refine_steps: int = 2,
) -> AutoBudgetResult:
    """Search the B_str/B_val split minimizing sample-workload error.

    Args:
        reference: the detailed reference synopsis (never mutated).
        total_budget: the unified budget ``B`` in bytes.
        sample: the observation workload (query, exact) pairs.
        config: builder knobs (budgets are overwritten per trial).
        ratio_grid: coarse structural-share candidates.
        refine_steps: bisection refinements around the coarse winner.

    Returns:
        The best synopsis with its chosen split and the trial history.
    """
    if total_budget <= 0:
        raise ValueError("total_budget must be positive")
    if not sample:
        raise ValueError("the sample workload must not be empty")
    config = config if config is not None else BuildConfig()

    trials: List[Tuple[float, float]] = []
    evaluated = {}
    workload_estimator = WorkloadEstimator([query for query, _ in sample])

    def evaluate(ratio: float):
        ratio = min(0.95, max(0.005, ratio))
        key = round(ratio, 4)
        if key in evaluated:
            return evaluated[key]
        synopsis = copy.deepcopy(reference)
        trial_config = copy.copy(config)
        trial_config.structural_budget = max(1, int(total_budget * ratio))
        trial_config.value_budget = max(1, total_budget - trial_config.structural_budget)
        XClusterBuilder(trial_config).compress(synopsis)
        error = _sample_error(synopsis, sample, workload_estimator)
        evaluated[key] = (error, synopsis, trial_config)
        trials.append((key, error))
        return evaluated[key]

    ratios = sorted(ratio_grid)
    results = [(evaluate(ratio)[0], ratio) for ratio in ratios]
    _, best_ratio = min(results)

    # Bisect toward the better neighbor of the coarse winner.
    position = ratios.index(best_ratio)
    low = ratios[max(0, position - 1)]
    high = ratios[min(len(ratios) - 1, position + 1)]
    for _ in range(refine_steps):
        for candidate in ((low + best_ratio) / 2, (best_ratio + high) / 2):
            error, _, _ = evaluate(candidate)
            if error < evaluated[round(best_ratio, 4)][0]:
                low, high = min(best_ratio, candidate), max(best_ratio, candidate)
                best_ratio = candidate

    best_error, best_synopsis, best_config = evaluated[round(best_ratio, 4)]
    return AutoBudgetResult(
        synopsis=best_synopsis,
        structural_budget=best_config.structural_budget,
        value_budget=best_config.value_budget,
        ratio=round(best_ratio, 4),
        error=best_error,
        trials=trials,
    )


def build_xcluster_auto(
    tree: XMLTree,
    total_budget: int,
    sample: Sequence[SamplePair],
    value_paths: Optional[Sequence[LabelPath]] = None,
    config: Optional[BuildConfig] = None,
) -> AutoBudgetResult:
    """One-call automatic construction from a unified budget."""
    config = config if config is not None else BuildConfig()
    reference = build_reference_synopsis(tree, value_paths, config.summary)
    return allocate_budget(reference, total_budget, sample, config)

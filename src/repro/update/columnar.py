"""In-place :class:`ColumnarDocument` mutation for the update stream.

Preorder layout makes every subtree a contiguous index range, so both
structural ops are array splices plus one reference-remapping pass:

* **insert** — the fragment (itself a small columnar document from the
  byte tokenizer) is re-interned into the host's label/path/value
  tables, its rows are spliced into every preorder column at the
  insertion point, and host references at or past that point shift up
  by the fragment size;
* **delete** — the subtree's contiguous row range is cut from every
  column and references past it shift down.  Orphaned entries in the
  typed value stores are left behind deliberately: the stores are
  append-only logs indexed by ``value_ref``, and every consumer reads
  them through live elements only.

After either op the ``post`` column is rebuilt by the same
explicit-stack pass :func:`~repro.xmltree.columnar.freeze` uses
(:func:`_fill_postorder`), ``level`` is maintained directly (a splice
only ever changes depths inside the spliced range), and the lazily
built interval-join caches (``subtree_ends`` / ``label_positions``)
are dropped — they were documented as "immutable documents only" and
this module is what made that qualifier real.

Value changes re-type the new text through the ingestion heuristic and
report ``(old_kind, new_kind)`` so the maintainer can tell a
summary-local update from one that moves the element between
partition classes.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

from repro.update.ops import (
    DeleteSubtree,
    InsertSubtree,
    UpdateOp,
    ValueChange,
    parse_fragment,
    validate_update,
)
from repro.xmltree.columnar import (
    KIND_NULL,
    KIND_NUMERIC,
    KIND_STRING,
    KIND_TEXT,
    _Q_MAX,
    _Q_MIN,
    ColumnarDocument,
    _fill_postorder,
    _intern_path,
    _store_text_terms,
)
from repro.xmltree.parser import DEFAULT_TEXT_WORD_THRESHOLD
from repro.xmltree.types import tokenize_text_ordered

#: The preorder columns every structural op splices in lockstep.
_NODE_COLUMNS = (
    "labels",
    "parent",
    "first_child",
    "next_sibling",
    "post",
    "level",
    "path_ids",
    "value_kind",
    "value_ref",
)


def invalidate_derived(doc: ColumnarDocument) -> None:
    """Drop the lazily built interval-join caches after a mutation.

    ``subtree_ends``/``label_positions`` are keyed by preorder index
    and label id — both shift under splices — so they must be rebuilt
    on next use.  The path-tuple memo survives: the path table is
    append-only and interned ids never move.
    """
    doc._subtree_ends = None
    doc._label_positions = None


def _shift_references(doc: ColumnarDocument, floor: int, delta: int) -> None:
    """Shift every structure reference ``>= floor`` by ``delta``."""
    for column in (doc.parent, doc.first_child, doc.next_sibling):
        for index, value in enumerate(column):
            if value >= floor:
                column[index] = value + delta


def _path_key_index(doc: ColumnarDocument) -> Dict[Tuple[int, int], int]:
    """The ``(parent path id, label id) -> path id`` intern map.

    Construction keeps this map only transiently, so mutation rebuilds
    it from the columnar path table (a few hundred entries at most).
    """
    return {
        (doc.path_parent[pid], doc.path_label[pid]): pid
        for pid in range(len(doc.path_parent))
    }


def _reintern_value(
    doc: ColumnarDocument, fragment: ColumnarDocument, row: int
) -> int:
    """Copy fragment row ``row``'s value into the host stores; new ref."""
    kind = fragment.value_kind[row]
    ref = fragment.value_ref[row]
    if kind == KIND_NUMERIC:
        value = fragment.numeric_overflow.get(ref)
        if value is None:
            value = fragment.numeric_values[ref]
        new_ref = len(doc.numeric_values)
        if _Q_MIN <= value <= _Q_MAX:
            doc.numeric_values.append(value)
        else:
            doc.numeric_values.append(0)
            doc.numeric_overflow[new_ref] = value
        return new_ref
    if kind == KIND_STRING:
        new_ref = len(doc.string_values)
        doc.string_values.append(fragment.string_values[ref])
        return new_ref
    if kind == KIND_TEXT:
        stored = fragment.text_values[ref]
        new_ref = len(doc.text_values)
        if type(stored) is tuple:
            # Re-intern the fragment's term ids against the host term
            # table, preserving the original token order so frozenset
            # reconstruction stays layout-identical.
            term_index = doc.term_index
            table = doc.term_table
            ids = []
            for term_id in stored:
                term = fragment.term_table[term_id]
                host_id = term_index.get(term)
                if host_id is None:
                    host_id = len(table)
                    term_index[term] = host_id
                    table.append(term)
                ids.append(host_id)
            doc.text_values.append(tuple(ids))
        else:
            doc.text_values.append(frozenset(stored))
        return new_ref
    return -1


def insert_subtree(
    doc: ColumnarDocument,
    parent: int,
    position: int,
    fragment: ColumnarDocument,
) -> int:
    """Graft ``fragment`` as child ``position`` of element ``parent``.

    Returns the preorder index of the new subtree root.  ``fragment``
    must be non-empty and is not usable afterwards (its value stores
    are re-interned, not shared).
    """
    size = len(doc)
    if not 0 <= parent < size:
        raise ValueError(f"insert parent {parent} out of range")
    children = list(doc.children(parent))
    if not 0 <= position <= len(children):
        raise ValueError(
            f"insert position {position} out of range "
            f"(parent has {len(children)} children)"
        )
    count = len(fragment)
    if not count:
        raise ValueError("insert fragment is empty")

    # The insertion point: the displaced child's index, or one past the
    # parent's subtree when appending.  The parent itself always
    # precedes it in preorder, so ``parent`` survives the shift intact.
    if position < len(children):
        at = children[position]
        displaced = children[position]
    else:
        at = doc.subtree_end(parent)
        displaced = -1
    previous = children[position - 1] if position > 0 else -1

    # 1. Shift every host reference at or past the splice point.
    _shift_references(doc, at, count)

    # 2. Re-intern the fragment's labels, paths, and values against the
    # host tables, and renumber its structure columns to their final
    # preorder homes (fragment row j lands at index at + j).
    label_map = [
        doc._label_id(label) for label in fragment.label_table
    ]
    path_index = _path_key_index(doc)
    pid_map: List[int] = []
    parent_pid = doc.path_ids[parent]
    for pid in range(len(fragment.path_parent)):
        fragment_parent = fragment.path_parent[pid]
        # Fragment path ids are interned parent-before-child, so the
        # mapped parent is always already known.
        mapped_parent = (
            parent_pid if fragment_parent < 0 else pid_map[fragment_parent]
        )
        pid_map.append(
            _intern_path(
                doc, mapped_parent, label_map[fragment.path_label[pid]],
                path_index,
            )
        )

    base_level = doc.level[parent] + 1
    new_labels = array("i", (label_map[lid] for lid in fragment.labels))
    new_parent = array(
        "i",
        (
            parent if value < 0 else value + at
            for value in fragment.parent
        ),
    )
    new_first = array(
        "i",
        (-1 if value < 0 else value + at for value in fragment.first_child),
    )
    new_next = array(
        "i",
        (-1 if value < 0 else value + at for value in fragment.next_sibling),
    )
    # The fragment root's next sibling is whichever child it displaced
    # (already shifted to its post-splice home), or nothing on append.
    if displaced >= 0:
        new_next[0] = displaced + count
    new_post = array("i", [-1]) * count
    new_level = array("i", (value + base_level for value in fragment.level))
    new_pids = array("i", (pid_map[pid] for pid in fragment.path_ids))
    new_kind = array("b", fragment.value_kind)
    new_ref = array(
        "i",
        (
            _reintern_value(doc, fragment, row)
            for row in range(count)
        ),
    )

    # 3. Splice the renumbered rows into every preorder column.
    for name, rows in zip(
        _NODE_COLUMNS,
        (
            new_labels,
            new_parent,
            new_first,
            new_next,
            new_post,
            new_level,
            new_pids,
            new_kind,
            new_ref,
        ),
    ):
        column = getattr(doc, name)
        column[at:at] = rows

    # 4. Link the new subtree into its sibling chain.
    if previous >= 0:
        doc.next_sibling[previous] = at
    else:
        doc.first_child[parent] = at

    _fill_postorder(doc)
    invalidate_derived(doc)
    return at


def delete_subtree(doc: ColumnarDocument, index: int) -> int:
    """Remove element ``index`` and its subtree; returns rows removed."""
    size = len(doc)
    if index == 0:
        raise ValueError("cannot delete the document root")
    if not 0 < index < size:
        raise ValueError(f"delete index {index} out of range")
    end = doc.subtree_end(index)
    count = end - index
    parent = doc.parent[index]

    # Unlink from the sibling chain before the rows disappear.
    following = doc.next_sibling[index]
    previous = -1
    child = doc.first_child[parent]
    while child != index:
        previous = child
        child = doc.next_sibling[child]
    if previous >= 0:
        doc.next_sibling[previous] = following
    else:
        doc.first_child[parent] = following

    for name in _NODE_COLUMNS:
        column = getattr(doc, name)
        del column[index:end]

    # Surviving references can only point below the cut or past it:
    # in-range targets were all inside the deleted subtree.
    _shift_references(doc, end, -count)

    _fill_postorder(doc)
    invalidate_derived(doc)
    return count


def change_value(
    doc: ColumnarDocument,
    index: int,
    text: str,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
) -> Tuple[int, int]:
    """Replace element ``index``'s character data; ``(old, new)`` kinds.

    The replacement text flows through the ingestion typing heuristic
    (the inlined ``_typed_value`` default from ``from_events``):
    integers to NUMERIC with the int64 overflow side table, text at or
    past the word threshold to an interned term set, anything else to a
    stripped STRING, and whitespace-only text to no value at all.
    """
    if not 0 <= index < len(doc):
        raise ValueError(f"set_value index {index} out of range")
    old_kind = doc.value_kind[index]
    stripped = text.strip()
    if not stripped:
        doc.value_kind[index] = KIND_NULL
        doc.value_ref[index] = -1
        return old_kind, KIND_NULL
    try:
        number = int(stripped)
    except ValueError:
        if len(stripped.split()) >= text_word_threshold:
            _store_text_terms(doc, index, tokenize_text_ordered(text))
            return old_kind, KIND_TEXT
        doc.value_kind[index] = KIND_STRING
        doc.value_ref[index] = len(doc.string_values)
        doc.string_values.append(stripped)
        return old_kind, KIND_STRING
    ref = len(doc.numeric_values)
    if _Q_MIN <= number <= _Q_MAX:
        doc.numeric_values.append(number)
    else:
        doc.numeric_values.append(0)
        doc.numeric_overflow[ref] = number
    doc.value_kind[index] = KIND_NUMERIC
    doc.value_ref[index] = ref
    return old_kind, KIND_NUMERIC


def apply_update(
    doc: ColumnarDocument,
    op: UpdateOp,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
) -> Tuple[bool, int, int]:
    """Apply one op to the columnar document, in place.

    Returns ``(structural, old_kind, new_kind)``: ``structural`` is
    True for inserts/deletes (the partition may change shape), and the
    kind pair is meaningful for value changes (KIND_NULL/KIND_NULL
    otherwise).  Raises ``ValueError`` on an inapplicable op, with the
    same messages as :func:`repro.update.ops.validate_update`.
    """
    problem = validate_update(doc, op)
    if problem is not None:
        raise ValueError(problem)
    if isinstance(op, InsertSubtree):
        fragment = parse_fragment(op.xml, text_word_threshold)
        insert_subtree(doc, op.parent, op.position, fragment)
        return True, KIND_NULL, KIND_NULL
    if isinstance(op, DeleteSubtree):
        delete_subtree(doc, op.index)
        return True, KIND_NULL, KIND_NULL
    assert isinstance(op, ValueChange)
    old_kind, new_kind = change_value(
        doc, op.index, op.text, text_word_threshold
    )
    return False, old_kind, new_kind


__all__ = [
    "apply_update",
    "change_value",
    "delete_subtree",
    "insert_subtree",
    "invalidate_derived",
]

"""Incremental reference-synopsis maintenance over an update stream.

:class:`IncrementalMaintainer` owns one :class:`ColumnarDocument` and
one live :class:`XClusterSynopsis` and keeps them consistent under
inserts, deletes, and value changes **without rebuilding from scratch**
— while staying bit-exact with a rebuild (``synopsis_to_dict`` equal),
which is what the differential harness's update round pins down.

The work is localized by two structural facts about the reference
partition (:mod:`repro.core.reference`):

* Classes are a refinement of the ``(label path, value kind)``
  partition and depend only on document *structure* plus those two
  per-element facts — never on the values themselves.  A value change
  that keeps its kind therefore cannot move any element between
  classes: the maintainer rebuilds exactly one cluster's summary (its
  dirty label-path region) and touches nothing else.  For NUMERIC and
  STRING that is the whole story; for TEXT the term-id vocabulary is
  interned across summaries in build order, so the maintainer re-encodes
  the TEXT summaries from cached per-cluster term centroids against a
  fresh vocabulary — centroid construction (the expensive scan) is
  reused, only the cheap id re-encode runs per cluster.
* Structural updates (and kind flips) can reshape the partition, so
  the maintainer re-runs refinement and assembly — the same code path,
  in the same order, as a rebuild, which is what keeps class numbering
  and node ids identical — but **value summaries are only rebuilt for
  clusters whose gathered values actually changed**: untouched clusters
  hit the keyed summary/centroid caches, skipping the dominant cost of
  a rebuild (summary construction is ~75% of build time at XMark scale
  0.35; see ``benchmarks/bench_updates.py``).

The maintained synopsis object never changes identity: recomputes graft
the fresh node table into the live object and every applied update
bumps ``XClusterSynopsis.version``, so the estimation caches keyed on
it (:class:`~repro.core.estimation.indexes.SynopsisIndex` via the
weak-registry, serving plan caches) invalidate through the existing
version protocol and the daemon keeps answering correctly mid-stream.

An optional ``max_summary_bytes`` budget recompresses **touched**
summaries through the existing :mod:`repro.values.kernels.queue`
steppers until they fit, so maintenance composes with the kernel
compression engine without re-running phase 2 globally.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, replace
from itertools import islice
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.reference import (
    _columnar_reference_classes,
    _refine_classes,
)
from repro.core.synopsis import XClusterSynopsis
from repro.update.columnar import apply_update
from repro.update.ops import UpdateOp
from repro.values.ebth import EndBiasedTermHistogram
from repro.values.kernels.queue import make_stepper
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    SummaryConfig,
    TextSummary,
    ValueSummary,
    build_summary,
)
from repro.values.termvector import TermCentroid, Vocabulary
from repro.xmltree.columnar import (
    KIND_NULL,
    KIND_TEXT,
    KIND_TO_TYPE,
    ColumnarDocument,
)
from repro.xmltree.parser import DEFAULT_TEXT_WORD_THRESHOLD
from repro.xmltree.paths import LabelPath, matches_any
from repro.xmltree.types import ValueType

#: Default bound on cached cluster summaries/centroids.  Entries are
#: keyed by the cluster's gathered value tuple, so the cache naturally
#: tracks the live cluster population; the bound only matters on
#: pathological streams that churn values without repetition.
DEFAULT_CACHE_ENTRIES = 16384

#: Per-advance compression amounts when enforcing a summary budget,
#: matching the builder's phase-2 defaults per summary family.
_BUDGET_STEPS = (
    (HistogramSummary, 1),
    (StringSummary, 8),
    (TextSummary, 4),
)


def enforce_summary_budget(
    summary: Optional[ValueSummary],
    max_bytes: Optional[int],
    engine: str = "kernel",
) -> Optional[ValueSummary]:
    """Compress ``summary`` through its stepper until it fits the budget.

    Deterministic in ``(summary, max_bytes, engine)``, so the rebuild
    oracle applies the same function to freshly built summaries and
    stays bit-exact with incrementally maintained ones.
    """
    if summary is None or max_bytes is None:
        return summary
    current = summary
    if current.size_bytes() <= max_bytes:
        return current
    stepper = make_stepper(current, engine)
    step = 1
    for family, amount in _BUDGET_STEPS:
        if isinstance(current, family):
            step = amount
            break
    while current.size_bytes() > max_bytes:
        compressed = stepper.advance(step)
        if compressed is None:
            break
        current = compressed
    return current


@dataclass
class MaintainerStats:
    """Counters describing how much work the update stream localized."""

    updates_applied: int = 0
    inserts: int = 0
    deletes: int = 0
    value_changes: int = 0
    #: Same-kind NUMERIC/STRING value changes: one cluster summary.
    fast_path_updates: int = 0
    #: Same-kind TEXT value changes: TEXT summaries re-encoded only.
    text_reencodes: int = 0
    #: Structural updates and kind flips: refinement + assembly re-ran.
    full_recomputes: int = 0
    summaries_built: int = 0
    summaries_reused: int = 0

    def snapshot(self) -> Dict[str, Any]:
        """Counters as a plain dict (the ``/stats`` maintenance section)."""
        return {
            "updates_applied": self.updates_applied,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "value_changes": self.value_changes,
            "fast_path_updates": self.fast_path_updates,
            "text_reencodes": self.text_reencodes,
            "full_recomputes": self.full_recomputes,
            "summaries_built": self.summaries_built,
            "summaries_reused": self.summaries_reused,
        }


class IncrementalMaintainer:
    """One document, one live synopsis, maintained under updates."""

    def __init__(
        self,
        doc: ColumnarDocument,
        value_paths: Optional[Sequence[LabelPath]] = None,
        config: Optional[SummaryConfig] = None,
        text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
        max_summary_bytes: Optional[int] = None,
        value_engine: str = "kernel",
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
    ) -> None:
        self.doc = doc
        self.value_paths = (
            None if value_paths is None else [tuple(p) for p in value_paths]
        )
        #: The caller's knobs; each full recompute derives a working
        #: config with a *fresh* vocabulary (never mutating this one),
        #: because term-id interning order must replay from scratch to
        #: match what a rebuild would produce.
        self.base_config = config if config is not None else SummaryConfig()
        self.text_word_threshold = text_word_threshold
        self.max_summary_bytes = max_summary_bytes
        self.value_engine = value_engine
        self.cache_entries = cache_entries
        self.stats = MaintainerStats()

        if self.value_paths is None:
            self._exact_paths = None
            self._wildcard_paths: List[LabelPath] = []
        else:
            self._exact_paths = {
                path for path in self.value_paths if "*" not in path
            }
            self._wildcard_paths = [
                path for path in self.value_paths if "*" in path
            ]
        #: Per-path-id wanted flags, extended lazily: the path table is
        #: append-only, so known flags never go stale.
        self._wanted_flags: List[bool] = []

        #: (value type, value tuple) -> built summary (NUMERIC/STRING;
        #: vocabulary-independent, safe to reuse as objects).
        self._summary_cache: "OrderedDict[Tuple, ValueSummary]" = OrderedDict()
        #: value tuple -> TermCentroid (TEXT; the re-encode against the
        #: current vocabulary is cheap, the centroid scan is not).
        self._centroid_cache: "OrderedDict[Tuple, TermCentroid]" = OrderedDict()

        self._classes: List[int] = []
        self._node_of: Dict[int, int] = {}
        self._config = self.base_config
        self.synopsis: XClusterSynopsis = self._recompute()

    # -- wanted paths ------------------------------------------------------

    def _wanted(self, path_id: int) -> bool:
        if self._exact_paths is None:
            return True
        flags = self._wanted_flags
        if path_id >= len(flags):
            doc = self.doc
            for pid in range(len(flags), len(doc.path_parent)):
                path = doc.path_tuple(pid)
                flags.append(
                    path in self._exact_paths
                    or matches_any(path, self._wildcard_paths)
                )
        return flags[path_id]

    # -- summary construction with caches ----------------------------------

    def _cache_put(self, cache: OrderedDict, key, value) -> None:
        cache[key] = value
        if len(cache) > self.cache_entries:
            cache.popitem(last=False)

    def _cluster_summary(
        self, vtype: ValueType, vals: list, config: SummaryConfig
    ) -> ValueSummary:
        """The summary a rebuild would attach to this cluster.

        NUMERIC/STRING summaries are cached as objects keyed by the
        gathered value tuple.  TEXT summaries cache the term centroid
        and always re-encode against ``config.vocabulary``, replaying
        the exact interning sequence (``centroid.weights`` insertion
        order) a fresh ``TextSummary.from_values`` would perform.
        """
        if vtype is ValueType.TEXT:
            key = tuple(vals)
            centroid = self._centroid_cache.get(key)
            if centroid is None:
                centroid = TermCentroid.from_term_sets(vals)
                self._cache_put(self._centroid_cache, key, centroid)
                self.stats.summaries_built += 1
            else:
                self._centroid_cache.move_to_end(key)
                self.stats.summaries_reused += 1
            summary: ValueSummary = TextSummary(
                EndBiasedTermHistogram.from_centroid(
                    centroid, config.vocabulary
                )
            )
            return enforce_summary_budget(
                summary, self.max_summary_bytes, self.value_engine
            )
        key = (vtype, tuple(vals))
        cached = self._summary_cache.get(key)
        if cached is not None:
            self._summary_cache.move_to_end(key)
            self.stats.summaries_reused += 1
            return cached
        summary = enforce_summary_budget(
            build_summary(vtype, vals, config),
            self.max_summary_bytes,
            self.value_engine,
        )
        self._cache_put(self._summary_cache, key, summary)
        self.stats.summaries_built += 1
        return summary

    # -- full localized recompute ------------------------------------------

    def _recompute(self) -> XClusterSynopsis:
        """Refinement + assembly, with summaries served from the caches.

        Mirrors ``build_reference_synopsis`` on the columnar substrate
        aggregate for aggregate (same first-occurrence orders, same
        edge math), so class numbering and node ids are bit-identical
        to a rebuild — only summary construction is skipped for
        clusters whose value tuples are already cached.
        """
        doc = self.doc
        initial = _columnar_reference_classes(doc)
        classes = _refine_classes(len(doc), doc.parent, initial)

        table = doc.label_table
        kinds = doc.value_kind
        counts = Counter(classes)
        node_labels = dict(zip(classes, map(table.__getitem__, doc.labels)))
        node_vtypes = dict(zip(classes, map(KIND_TO_TYPE.__getitem__, kinds)))
        edge_totals = Counter(
            zip(
                map(classes.__getitem__, islice(doc.parent, 1, None)),
                islice(classes, 1, None),
            )
        )
        values: Dict[int, list] = {}
        pids = doc.path_ids
        value_of = doc.value
        wanted = self._wanted
        for index, kind in enumerate(kinds):
            if kind and wanted(pids[index]):
                values.setdefault(classes[index], []).append(value_of(index))

        config = replace(self.base_config, vocabulary=Vocabulary())
        fresh = XClusterSynopsis()
        node_of: Dict[int, int] = {}
        for key, count in counts.items():
            vals = values.get(key)
            vsumm = (
                self._cluster_summary(node_vtypes[key], vals, config)
                if vals is not None
                else None
            )
            node = fresh.add_node(node_labels[key], node_vtypes[key], count, vsumm)
            node_of[key] = node.node_id
        nodes = fresh.nodes
        for (parent_key, child_key), total in edge_totals.items():
            fresh.add_edge(
                nodes[node_of[parent_key]],
                nodes[node_of[child_key]],
                total / counts[parent_key],
            )
        fresh.set_root(nodes[node_of[classes[0]]])

        self._classes = classes
        self._node_of = node_of
        self._config = config
        return fresh

    def _graft(self, fresh: XClusterSynopsis) -> None:
        """Install a recomputed node table into the live synopsis object.

        Identity is preserved on purpose: the serving tier's shared
        index registry and estimator reuse key on ``id(synopsis)``, so
        grafting (plus the version bump in :meth:`apply`) walks them
        through the normal invalidation protocol instead of silently
        handing estimates a different object.
        """
        live = self.synopsis
        live.nodes = fresh.nodes
        live.root_id = fresh.root_id
        live._next_id = fresh._next_id

    # -- localized value-change paths --------------------------------------

    def _refresh_cluster(self, index: int) -> None:
        """Rebuild the one summary of the cluster holding ``index``.

        Only reachable for same-kind NUMERIC/STRING changes: the
        partition cannot have moved (classes ignore values), so the
        dirty region is exactly this cluster's value list.
        """
        doc = self.doc
        classes = self._classes
        key = classes[index]
        # All class members share one label path and one kind (the
        # initial partition key), so wantedness is a class property.
        if not self._wanted(doc.path_ids[index]):
            return
        value_of = doc.value
        vals = [
            value_of(member)
            for member, cls in enumerate(classes)
            if cls == key
        ]
        vtype = KIND_TO_TYPE[doc.value_kind[index]]
        summary = self._cluster_summary(vtype, vals, self._config)
        self.synopsis.nodes[self._node_of[key]].vsumm = summary

    def _reencode_text(self) -> None:
        """Re-encode every TEXT summary against a fresh vocabulary.

        A same-kind TEXT change leaves the partition intact but moves
        the cluster's term centroid, and term ids are interned across
        summaries in build order — so all TEXT summaries re-encode (in
        the same first-occurrence cluster order a rebuild would use)
        while every untouched cluster reuses its cached centroid.  No
        refinement, no assembly, no NUMERIC/STRING work.
        """
        doc = self.doc
        classes = self._classes
        kinds = doc.value_kind
        pids = doc.path_ids
        wanted = self._wanted
        value_of = doc.value
        gathered: Dict[int, list] = {}
        for index, kind in enumerate(kinds):
            if kind == KIND_TEXT and wanted(pids[index]):
                gathered.setdefault(classes[index], []).append(value_of(index))
        config = replace(self.base_config, vocabulary=Vocabulary())
        nodes = self.synopsis.nodes
        for key, vals in gathered.items():
            nodes[self._node_of[key]].vsumm = self._cluster_summary(
                ValueType.TEXT, vals, config
            )
        self._config = config

    # -- the update entry point --------------------------------------------

    def apply(self, op: UpdateOp) -> Dict[str, Any]:
        """Apply one update to the document and the live synopsis.

        Returns a small result dict (op kind, path taken, document
        size) used by the serving route's response body.  Raises
        ``ValueError`` with a validation message when the op does not
        apply; the document and synopsis are untouched in that case.
        """
        structural, old_kind, new_kind = apply_update(
            self.doc, op, self.text_word_threshold
        )
        stats = self.stats
        stats.updates_applied += 1
        if structural:
            if op.op == "insert":
                stats.inserts += 1
            else:
                stats.deletes += 1
            path = "recompute"
            self._graft(self._recompute())
            stats.full_recomputes += 1
        else:
            stats.value_changes += 1
            if old_kind != new_kind:
                path = "recompute"
                self._graft(self._recompute())
                stats.full_recomputes += 1
            elif new_kind == KIND_TEXT:
                path = "text-reencode"
                self._reencode_text()
                stats.text_reencodes += 1
            elif new_kind == KIND_NULL:
                # NULL -> NULL: the document is untouched semantically.
                path = "noop"
            else:
                path = "summary-local"
                self._refresh_cluster(op.index)
                stats.fast_path_updates += 1
        # Every applied update bumps the version, so estimation caches
        # (SynopsisIndex tables, reach/selectivity caches) can never
        # serve a stale answer across an update boundary.
        self.synopsis.version += 1
        return {
            "op": op.op,
            "path": path,
            "elements": len(self.doc),
            "version": self.synopsis.version,
        }

    def apply_all(self, ops: Sequence[UpdateOp]) -> List[Dict[str, Any]]:
        """Apply a batch of updates in order; per-op result dicts."""
        return [self.apply(op) for op in ops]


__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "IncrementalMaintainer",
    "MaintainerStats",
    "enforce_summary_budget",
]

"""Document-update streams and incremental synopsis maintenance.

``repro.update`` turns the static build pipeline into a maintained
view: :mod:`repro.update.ops` defines the update vocabulary (subtree
insert / subtree delete / value change, addressed by preorder index,
with fragments parsed by the byte tokenizer), :mod:`repro.update.
columnar` applies it in place to :class:`~repro.xmltree.columnar.
ColumnarDocument` columns, and :mod:`repro.update.maintainer` keeps a
live :class:`~repro.core.synopsis.XClusterSynopsis` bit-exact with a
rebuild-from-scratch after every step — the rebuild path stays on as
the differential harness's oracle (``python -m repro check --updates``).
"""

from repro.update.columnar import (
    apply_update,
    change_value,
    delete_subtree,
    insert_subtree,
    invalidate_derived,
)
from repro.update.maintainer import (
    IncrementalMaintainer,
    MaintainerStats,
    enforce_summary_budget,
)
from repro.update.ops import (
    DeleteSubtree,
    InsertSubtree,
    UpdateFormatError,
    UpdateOp,
    ValueChange,
    apply_update_tree,
    parse_fragment,
    tree_preorder,
    update_from_dict,
    update_to_dict,
    validate_update,
)

__all__ = [
    "DeleteSubtree",
    "IncrementalMaintainer",
    "InsertSubtree",
    "MaintainerStats",
    "UpdateFormatError",
    "UpdateOp",
    "ValueChange",
    "apply_update",
    "apply_update_tree",
    "change_value",
    "delete_subtree",
    "enforce_summary_budget",
    "insert_subtree",
    "invalidate_derived",
    "parse_fragment",
    "tree_preorder",
    "update_from_dict",
    "update_to_dict",
    "validate_update",
]

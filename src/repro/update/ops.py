"""The document-update stream: typed ops over both document substrates.

Three update kinds cover the mutations a serving deployment sees:

* :class:`InsertSubtree` — graft a well-formed XML fragment as a new
  child of an existing element.  The fragment text flows through the
  byte tokenizer of :mod:`repro.xmltree.events` — updates speak the
  same START/ATTR/TEXT/END token vocabulary as bulk ingestion, so a
  fragment is typed (numeric / string / text, attributes as ``@name``
  children) exactly as it would have been in the original document.
* :class:`DeleteSubtree` — remove an element and its whole subtree.
* :class:`ValueChange` — replace an element's character data; the new
  text is re-typed through the parser's heuristic, so an update can
  legitimately flip a value from NUMERIC to TEXT (or drop it entirely
  with whitespace), and downstream maintenance must follow.

Ops are plain frozen dataclasses with a JSON wire form
(:func:`update_from_dict` / :func:`update_to_dict`) used by the
``POST /update`` serving route, the differential harness's shrunk
counter-examples, and the CLI.

Every op addresses elements by **preorder index** into the current
document — the same numbering :class:`~repro.xmltree.columnar.
ColumnarDocument` columns use and ``XMLElement.iter()`` yields — so an
op means the same thing on the columnar substrate and on the object
tree (:func:`apply_update_tree` keeps an object twin in lockstep for
the rebuild-from-scratch oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.xmltree.columnar import ColumnarDocument, from_events
from repro.xmltree.events import XMLParseError, iter_events
from repro.xmltree.parser import (
    DEFAULT_TEXT_WORD_THRESHOLD,
    _typed_value,
    parse_string,
)
from repro.xmltree.tree import XMLElement, XMLTree


class UpdateFormatError(ValueError):
    """A malformed update payload (bad op name, fields, or fragment)."""


@dataclass(frozen=True)
class InsertSubtree:
    """Insert the fragment as child ``position`` of element ``parent``.

    ``position`` counts existing children (attributes included — they
    are ordinary ``@name`` children in the document model) and may equal
    the child count, meaning "append".  ``xml`` must be one well-formed
    element; it is tokenized by :func:`repro.xmltree.events.iter_events`.
    """

    parent: int
    position: int
    xml: str

    op = "insert"


@dataclass(frozen=True)
class DeleteSubtree:
    """Delete element ``index`` and its entire subtree (never the root)."""

    index: int

    op = "delete"


@dataclass(frozen=True)
class ValueChange:
    """Replace the character data of element ``index`` with ``text``.

    The text is re-typed through the ingestion heuristic: integers
    become NUMERIC (with the int64 overflow side table), text at or
    above the word threshold becomes a TEXT term set, anything else a
    stripped STRING, and whitespace-only text removes the value.
    """

    index: int
    text: str

    op = "set_value"


UpdateOp = Union[InsertSubtree, DeleteSubtree, ValueChange]


def update_to_dict(op: UpdateOp) -> Dict[str, Any]:
    """The JSON wire form of one update op."""
    if isinstance(op, InsertSubtree):
        return {
            "op": "insert",
            "parent": op.parent,
            "position": op.position,
            "xml": op.xml,
        }
    if isinstance(op, DeleteSubtree):
        return {"op": "delete", "index": op.index}
    if isinstance(op, ValueChange):
        return {"op": "set_value", "index": op.index, "text": op.text}
    raise UpdateFormatError(f"unknown update op {op!r}")


def _int_field(payload: Dict[str, Any], name: str) -> int:
    value = payload.get(name)
    if not isinstance(value, int) or isinstance(value, bool):
        raise UpdateFormatError(f"update field {name!r} must be an integer")
    return value


def _str_field(payload: Dict[str, Any], name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str):
        raise UpdateFormatError(f"update field {name!r} must be a string")
    return value


def update_from_dict(payload: Any) -> UpdateOp:
    """Parse one JSON update payload into a typed op.

    Raises :class:`UpdateFormatError` on malformed input; the HTTP
    layer maps that to a 400 response.
    """
    if not isinstance(payload, dict):
        raise UpdateFormatError("update must be a JSON object")
    name = payload.get("op")
    if name == "insert":
        op = InsertSubtree(
            parent=_int_field(payload, "parent"),
            position=_int_field(payload, "position"),
            xml=_str_field(payload, "xml"),
        )
        # Reject malformed fragments at decode time, so a batch fails
        # whole before any of its ops has touched the document.
        parse_fragment(op.xml)
        return op
    if name == "delete":
        return DeleteSubtree(index=_int_field(payload, "index"))
    if name == "set_value":
        return ValueChange(
            index=_int_field(payload, "index"),
            text=_str_field(payload, "text"),
        )
    raise UpdateFormatError(
        f"unknown update op {name!r}; expected insert/delete/set_value"
    )


def parse_fragment(
    xml: str, text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD
) -> ColumnarDocument:
    """Tokenize an insert fragment into its own small columnar document.

    The fragment rides the same byte tokenizer as bulk ingestion, so
    typing (and attribute materialization) is identical to what the
    original document build would have produced.
    """
    try:
        fragment = from_events(
            iter_events(xml), None, text_word_threshold
        )
    except XMLParseError as err:
        raise UpdateFormatError(f"bad insert fragment: {err}")
    if not len(fragment):
        raise UpdateFormatError("insert fragment is empty")
    return fragment


def validate_update(
    doc: ColumnarDocument, op: UpdateOp
) -> Optional[str]:
    """Why ``op`` cannot apply to ``doc`` right now, or ``None`` if it can.

    Used by the serving route (to 400 bad requests), the maintainer (to
    reject before mutating), and the update-sequence shrinker (which
    deletes ops from a failing sequence and must skip the survivors that
    lost their targets — deterministically, on both substrates).
    """
    size = len(doc)
    if isinstance(op, InsertSubtree):
        if not 0 <= op.parent < size:
            return f"insert parent {op.parent} out of range"
        child_count = sum(1 for _ in doc.children(op.parent))
        if not 0 <= op.position <= child_count:
            return (
                f"insert position {op.position} out of range "
                f"(parent has {child_count} children)"
            )
        return None
    if isinstance(op, DeleteSubtree):
        if op.index == 0:
            return "cannot delete the document root"
        if not 0 < op.index < size:
            return f"delete index {op.index} out of range"
        return None
    if isinstance(op, ValueChange):
        if not 0 <= op.index < size:
            return f"set_value index {op.index} out of range"
        return None
    return f"unknown update op {op!r}"


# -- object-tree twin ---------------------------------------------------------


def tree_preorder(tree: XMLTree) -> List[XMLElement]:
    """The preorder element list of an object tree.

    Matches the columnar preorder index for the frozen equivalent, so
    ``tree_preorder(tree)[i]`` is the twin of columnar element ``i``.
    """
    elements: List[XMLElement] = []
    stack = [tree.root]
    while stack:
        element = stack.pop()
        elements.append(element)
        stack.extend(reversed(element.children))
    return elements


def _detach_child(parent: XMLElement, child: XMLElement) -> None:
    parent.children.remove(child)
    child.parent = None


def apply_update_tree(
    tree: XMLTree,
    op: UpdateOp,
    text_word_threshold: int = DEFAULT_TEXT_WORD_THRESHOLD,
) -> None:
    """Apply one op to an object :class:`XMLTree`, in place.

    This is the rebuild oracle's substrate: the differential harness
    mutates an object twin in lockstep with the columnar document and
    rebuilds the reference synopsis from it after every step.  Raises
    ``ValueError`` (via the shared validation messages) when the op
    does not apply.
    """
    elements = tree_preorder(tree)
    if isinstance(op, InsertSubtree):
        if not 0 <= op.parent < len(elements):
            raise ValueError(f"insert parent {op.parent} out of range")
        parent = elements[op.parent]
        if not 0 <= op.position <= len(parent.children):
            raise ValueError(
                f"insert position {op.position} out of range "
                f"(parent has {len(parent.children)} children)"
            )
        fragment = parse_string(op.xml, None, text_word_threshold)
        child = fragment.root
        child.parent = parent
        parent.children.insert(op.position, child)
        return
    if isinstance(op, DeleteSubtree):
        if op.index == 0:
            raise ValueError("cannot delete the document root")
        if not 0 < op.index < len(elements):
            raise ValueError(f"delete index {op.index} out of range")
        target = elements[op.index]
        _detach_child(target.parent, target)
        return
    if isinstance(op, ValueChange):
        if not 0 <= op.index < len(elements):
            raise ValueError(f"set_value index {op.index} out of range")
        target = elements[op.index]
        target.set_value(
            _typed_value(op.text, (target.label,), {}, text_word_threshold)
        )
        return
    raise ValueError(f"unknown update op {op!r}")


__all__ = [
    "DeleteSubtree",
    "InsertSubtree",
    "UpdateFormatError",
    "UpdateOp",
    "ValueChange",
    "apply_update_tree",
    "parse_fragment",
    "tree_preorder",
    "update_from_dict",
    "update_to_dict",
    "validate_update",
]

"""Command-line interface for the XCluster reproduction.

Subcommands::

    python -m repro summarize INPUT.xml -o synopsis.bin \
        --structural-budget 4096 --value-budget 32768 [--format snapshot]
    python -m repro estimate synopsis.bin "//movie[./year >= 2000]/title"
    python -m repro convert synopsis.json synopsis.bin --format snapshot
    python -m repro serve (synopsis.bin | --document INPUT.xml) \
        [--host H] [--port P] [--workers N]
    python -m repro evaluate INPUT.xml "//movie[./year >= 2000]/title" \
        [--engine interval|treewalk]
    python -m repro experiments [--scale 0.25] [--queries 15]
    python -m repro check [--rounds 3] [--seed S] [--synopsis FILE] \
        [--evaluator] [--updates [--updates-per-round N]] [--collection]
    python -m repro ingest INPUT.xml [--chunk-size N] [--compare]
    python -m repro collection build ROOT --input DIR [--shards N] \
        [--budget B] [--workers W] [--no-compress]
    python -m repro collection rebalance ROOT --log LOG.jsonl
    python -m repro collection stats ROOT [--json]
    python -m repro collection export ROOT --edge-model OUT_DIR

``summarize`` parses an XML file, builds a budgeted XCluster synopsis,
and saves it as interchange JSON or the binary mmap snapshot format;
``estimate`` loads a saved synopsis (either format, auto-detected by
magic bytes) and prints the estimated selectivity of a twig query;
``convert`` re-encodes a saved synopsis between the two formats;
``serve`` runs the always-on estimation daemon of :mod:`repro.serve`;
``evaluate`` prints the exact selectivity against the raw document;
``experiments`` regenerates every table and figure of the paper's
evaluation section; ``check`` runs the differential verification
subsystem — the invariant auditor over a fresh (or saved) synopsis plus
the seeded engine-parity fuzzer — and exits non-zero on any violation
(see docs/TESTING.md); ``ingest`` stream-parses a document into the
columnar store and reports its shape, optionally comparing against the
object-tree parse; ``collection`` manages a directory-of-snapshots
collection store — parallel dedup build, workload-driven budget
rebalance from an observed query log, stats, and edge-model CSV export
— which ``serve --collection`` then serves with per-document routing.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core import (
    build_xcluster,
    estimate_selectivity,
    load_synopsis,
    save_snapshot,
    save_synopsis,
    structural_size_bytes,
    total_size_bytes,
    value_size_bytes,
)
from repro.query import evaluate_selectivity, parse_twig
from repro.xmltree import parse_document
from repro.xmltree.events import DEFAULT_CHUNK_SIZE


def _save_in_format(synopsis, path: str, format_name: str) -> None:
    """Persist a synopsis as interchange JSON or a binary snapshot."""
    if format_name == "snapshot":
        save_snapshot(synopsis, path)
    else:
        save_synopsis(synopsis, path)


def _cmd_summarize(args: argparse.Namespace) -> int:
    tree = parse_document(args.input)
    synopsis = build_xcluster(
        tree,
        structural_budget=args.structural_budget,
        value_budget=args.value_budget,
    )
    _save_in_format(synopsis, args.output, args.format)
    print(
        f"{args.input}: {len(tree)} elements -> {len(synopsis)} clusters, "
        f"{structural_size_bytes(synopsis)} structural + "
        f"{value_size_bytes(synopsis)} value bytes "
        f"({total_size_bytes(synopsis)} total) -> {args.output} [{args.format}]"
    )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    synopsis = load_synopsis(args.input)  # format auto-detected
    _save_in_format(synopsis, args.output, args.format)
    print(
        f"{args.input} -> {args.output} [{args.format}], "
        f"{len(synopsis)} clusters, "
        f"{os.path.getsize(args.output)} bytes"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeEngine, run_server

    given = [
        source
        for source in (args.synopsis, args.document, args.collection)
        if source is not None
    ]
    if len(given) != 1:
        print(
            "serve needs exactly one of a saved synopsis, --document, "
            "or --collection",
            file=sys.stderr,
        )
        return 2
    if args.collection is not None:
        from repro.collection import CollectionStore
        from repro.serve import CollectionServeEngine

        store = CollectionStore(
            args.collection, max_open_shards=args.max_open_shards
        )
        engine = CollectionServeEngine(
            store,
            window_seconds=args.window_ms / 1000.0,
            max_batch=args.max_batch,
        )
        manifest = store.manifest
        print(
            f"collection {args.collection} v{manifest.version}: "
            f"{manifest.documents} documents across "
            f"{manifest.shard_count} shards "
            f"(rollup: {'yes' if manifest.rollup_path else 'no'}), "
            f"routing /estimate by 'doc', read-only",
            flush=True,
        )
    elif args.document is not None:
        from repro.update import IncrementalMaintainer
        from repro.xmltree import ingest_file

        doc = ingest_file(args.document)
        maintainer = IncrementalMaintainer(doc)
        engine = ServeEngine(
            maintainer=maintainer,
            workers=args.workers,
            window_seconds=args.window_ms / 1000.0,
            max_batch=args.max_batch,
        )
        print(
            f"maintaining {args.document}: {len(doc)} elements -> "
            f"{len(engine.synopsis)} clusters, "
            f"{total_size_bytes(engine.synopsis)} synopsis bytes, "
            f"workers={engine.workers}, updates enabled (POST /update)",
            flush=True,
        )
    else:
        synopsis = load_synopsis(args.synopsis)  # format auto-detected
        engine = ServeEngine(
            synopsis,
            workers=args.workers,
            window_seconds=args.window_ms / 1000.0,
            max_batch=args.max_batch,
        )
        print(
            f"loaded {args.synopsis}: {len(synopsis)} clusters, "
            f"{total_size_bytes(synopsis)} synopsis bytes, "
            f"workers={engine.workers}",
            flush=True,
        )
    run_server(engine, host=args.host, port=args.port)
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    synopsis = load_synopsis(args.synopsis)
    query = parse_twig(args.query)
    print(f"{estimate_selectivity(synopsis, query):.3f}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    tree = parse_document(args.input)
    query = parse_twig(args.query)
    print(evaluate_selectivity(tree, query, engine=args.engine))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    # Imported lazily: the harness pulls in the dataset generators.
    from repro.experiments import (
        ExperimentConfig,
        ExperimentContext,
        figure8_series,
        figure9_rows,
        format_series,
        format_table,
        table1_rows,
        table2_rows,
    )
    from repro.experiments.figures import FIGURE8_SERIES

    config = ExperimentConfig(scale=args.scale, queries_per_class=args.queries)
    context = ExperimentContext(config)

    print("== Table 1: Data Set Characteristics ==")
    print(
        format_table(
            ["Dataset", "File Size (MB)", "# Elements", "Ref. Size (KB)",
             "# Nodes: Value/Total"],
            [
                [row.dataset, f"{row.file_size_mb:.2f}", row.element_count,
                 f"{row.reference_size_kb:.1f}",
                 f"{row.value_nodes} / {row.total_nodes}"]
                for row in table1_rows(context)
            ],
        )
    )
    print("\n== Table 2: Workload Characteristics ==")
    print(
        format_table(
            ["Dataset", "Avg. Result (Struct)", "Avg. Result (Pred)"],
            [
                [row.dataset, f"{row.avg_result_struct:.0f}",
                 f"{row.avg_result_pred:.0f}"]
                for row in table2_rows(context)
            ],
        )
    )

    results = {}
    for name, figure in (("imdb", "8(a)"), ("xmark", "8(b)")):
        result = figure8_series(context, name)
        results[name] = result
        table = result.as_series_table()
        print(
            "\n"
            + format_series(
                f"== Figure {figure}: {name} — Avg. Rel. Error (%) vs Size (KB) ==",
                "Size(KB)",
                result.total_kb,
                [table[series_name] for series_name, _ in FIGURE8_SERIES],
                [series_name for series_name, _ in FIGURE8_SERIES],
            )
        )

    print("\n== Figure 9: Absolute error for low-count queries ==")
    print(
        format_table(
            ["", "IMDB", "XMark"],
            [
                [row.query_class.value.capitalize(), f"{row.imdb:.3f}",
                 f"{row.xmark:.3f}"]
                for row in figure9_rows(results["imdb"], results["xmark"])
            ],
        )
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Imported lazily: the check subsystem pulls in the harness stack.
    import json as json_module

    from repro.check import (
        CheckReport,
        DifferentialHarness,
        HarnessConfig,
        InvariantAuditor,
    )

    if args.evaluator or args.updates or args.collection:
        # Focused fuzz modes: a single stage per round, so many more
        # probes fit in the same wall-clock than the full pipeline.
        harness = DifferentialHarness(
            HarnessConfig(
                seed=args.seed,
                rounds=args.rounds,
                updates_per_round=args.updates_per_round,
            )
        )
        if args.updates:
            report = harness.run_updates()
        elif args.collection:
            report = harness.run_collection()
        else:
            report = harness.run_evaluator()
        if args.json:
            print(json_module.dumps(report.to_dict(), indent=2))
        else:
            print(report.format_text())
        return 0 if report.ok else 1

    auditor = InvariantAuditor()
    report = CheckReport(seed=args.seed)

    if args.synopsis:
        from repro.core.serialization import load_synopsis

        synopsis = load_synopsis(args.synopsis, verify=False)
        report.violations.extend(auditor.audit(synopsis))
    else:
        from repro.core.builder import build_xcluster
        from repro.core.reference import build_reference_synopsis
        from repro.core.sizing import structural_size_bytes, value_size_bytes
        from repro.datasets import generate_xmark

        dataset = generate_xmark(scale=args.scale, seed=7)
        reference = build_reference_synopsis(
            dataset.tree, dataset.value_paths
        )
        report.violations.extend(auditor.audit(reference))
        synopsis = build_xcluster(
            dataset.tree,
            structural_budget=max(256, structural_size_bytes(reference) // 2),
            value_budget=max(256, value_size_bytes(reference) // 2),
            value_paths=dataset.value_paths,
        )
        report.violations.extend(auditor.audit(synopsis))

    if not args.skip_fuzz:
        harness = DifferentialHarness(
            HarnessConfig(seed=args.seed, rounds=args.rounds)
        )
        report.extend(harness.run())

    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.xmltree import ingest_file

    source_bytes = os.path.getsize(args.input)
    started = perf_counter()
    doc = ingest_file(args.input, chunk_size=args.chunk_size)
    ingest_seconds = perf_counter() - started
    throughput = (
        source_bytes / ingest_seconds / 1e6 if ingest_seconds > 0 else 0.0
    )
    print(
        f"{args.input}: {len(doc)} elements, {len(doc.label_table)} labels, "
        f"{len(doc.path_parent)} paths, {len(doc.term_table)} terms, "
        f"{doc.nbytes()} column bytes in {ingest_seconds:.3f}s"
    )
    print(
        f"throughput: {source_bytes / 1e6:.2f} MB in "
        f"{args.chunk_size}-byte chunks -> {throughput:.1f} MB/s"
    )
    if not args.compare:
        return 0

    from repro.core import build_reference_synopsis
    from repro.core.serialization import synopsis_to_dict
    from repro.xmltree.stats import collect_statistics

    started = perf_counter()
    tree = parse_document(args.input)
    parse_seconds = perf_counter() - started
    value_paths = doc.value_paths()
    object_synopsis = build_reference_synopsis(
        tree, value_paths, with_summaries=False
    )
    columnar_synopsis = build_reference_synopsis(
        doc, value_paths, with_summaries=False
    )
    synopses_match = synopsis_to_dict(object_synopsis) == synopsis_to_dict(
        columnar_synopsis
    )
    stats_match = collect_statistics(tree) == collect_statistics(doc)
    print(f"object-tree parse: {parse_seconds:.3f}s")
    print(f"reference synopsis parity: {'ok' if synopses_match else 'DIVERGED'}")
    print(f"statistics parity: {'ok' if stats_match else 'DIVERGED'}")
    return 0 if synopses_match and stats_match else 1


def _read_query_log(path: str):
    """An observed query log: JSON lines of ``{"doc": ..., "query": ...}``.

    A JSON array of the same objects is accepted too (the serve tier
    and tests emit either).  Returns ``[(doc_id, TwigQuery), ...]``.
    """
    import json as json_module

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        rows = json_module.loads(stripped)
    else:
        rows = [
            json_module.loads(line)
            for line in text.splitlines()
            if line.strip()
        ]
    log = []
    for row in rows:
        if not isinstance(row, dict) or "doc" not in row or "query" not in row:
            raise ValueError(
                "each log entry must be an object with 'doc' and 'query'"
            )
        log.append((row["doc"], parse_twig(row["query"])))
    return log


def _cmd_collection(args: argparse.Namespace) -> int:
    import json as json_module
    from time import perf_counter

    from repro.collection import (
        CollectionConfig,
        CollectionStore,
        build_collection,
        export_edge_model,
        rebalance_collection,
    )

    if args.action == "build":
        inputs = sorted(
            name
            for name in os.listdir(args.input)
            if name.endswith(".xml")
        )
        if not inputs:
            print(f"no .xml files under {args.input}", file=sys.stderr)
            return 2

        def documents():
            for name in inputs:
                with open(
                    os.path.join(args.input, name), "r", encoding="utf-8"
                ) as handle:
                    yield name, handle.read()

        config = CollectionConfig(
            shard_count=args.shards,
            total_budget=args.budget,
            structural_share=args.structural_share,
            compress=not args.no_compress,
            workers=args.workers,
        )
        started = perf_counter()
        manifest, report = build_collection(args.root, documents(), config)
        elapsed = perf_counter() - started
        print(
            f"built {args.root} v{manifest.version}: {report.documents} "
            f"documents ({report.distinct_structures} distinct, "
            f"{report.dedup_rate:.0%} deduplicated) across "
            f"{manifest.shard_count} shards in {elapsed:.2f}s "
            f"(workers={report.workers_effective}, "
            f"budget={manifest.total_budget} bytes, "
            f"rollup: {'yes' if manifest.rollup_path else 'no'})"
        )
        return 0

    if args.action == "rebalance":
        log = _read_query_log(args.log)
        started = perf_counter()
        manifest, report = rebalance_collection(
            args.root, log, workers=args.workers
        )
        elapsed = perf_counter() - started
        multipliers = ", ".join(
            f"{shard_id}:{multiplier:.2f}"
            for shard_id, multiplier in sorted(report.multipliers.items())
        )
        print(
            f"rebalanced {args.root} -> v{manifest.version} from "
            f"{len(log)} logged queries in {elapsed:.2f}s: "
            f"{report.payloads_reused} payloads reused, "
            f"{report.payload_builds} recompressed; "
            f"multipliers [{multipliers}]"
        )
        return 0

    if args.action == "stats":
        store = CollectionStore(args.root, verify=args.verify)
        snapshot = store.stats_snapshot()
        if args.json:
            print(json_module.dumps(snapshot, indent=2, sort_keys=True))
        else:
            budgets = ", ".join(
                str(budget) for budget in snapshot["budget_distribution"]
            )
            print(
                f"{args.root} v{snapshot['version']}: "
                f"{snapshot['documents']} documents, "
                f"{snapshot['distinct_structures']} distinct structures, "
                f"{snapshot['shard_count']} shards, "
                f"budget {snapshot['total_budget']} bytes [{budgets}], "
                f"rollup: {'yes' if snapshot['rollup'] else 'no'}"
            )
        return 0

    # export
    store = CollectionStore(args.root)
    written = export_edge_model(store, args.edge_model)
    for name in sorted(written):
        print(f"{os.path.join(args.edge_model, name)}: {written[name]} rows")
    return 0


def _default_rounds() -> int:
    """Fuzz rounds: the ``REPRO_CHECK_ROUNDS`` env knob, default 3."""
    try:
        return max(0, int(os.environ.get("REPRO_CHECK_ROUNDS", "3")))
    except ValueError:
        return 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="XCluster synopses (ICDE 2006 reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser("summarize", help="build and save a synopsis")
    summarize.add_argument("input", help="XML document to summarize")
    summarize.add_argument("-o", "--output", required=True, help="synopsis path")
    summarize.add_argument("--structural-budget", type=int, default=4096)
    summarize.add_argument("--value-budget", type=int, default=32768)
    summarize.add_argument(
        "--format",
        choices=("json", "snapshot"),
        default="json",
        help="output encoding: portable JSON or the binary mmap "
        "snapshot format (default %(default)s)",
    )
    summarize.set_defaults(handler=_cmd_summarize)

    estimate = commands.add_parser("estimate", help="estimate a twig's selectivity")
    estimate.add_argument(
        "synopsis", help="synopsis path (JSON or snapshot, auto-detected)"
    )
    estimate.add_argument("query", help="twig query, e.g. //a[./b >= 3]/c")
    estimate.set_defaults(handler=_cmd_estimate)

    convert = commands.add_parser(
        "convert", help="re-encode a saved synopsis between formats"
    )
    convert.add_argument(
        "input", help="saved synopsis (JSON or snapshot, auto-detected)"
    )
    convert.add_argument("output", help="destination path")
    convert.add_argument(
        "--format",
        choices=("json", "snapshot"),
        default="snapshot",
        help="output encoding (default %(default)s)",
    )
    convert.set_defaults(handler=_cmd_convert)

    serve = commands.add_parser(
        "serve", help="run the always-on estimation daemon"
    )
    serve.add_argument(
        "synopsis",
        nargs="?",
        help="synopsis path (JSON or snapshot, auto-detected); "
        "omit when using --document",
    )
    serve.add_argument(
        "--document",
        help="serve a live synopsis maintained over this XML document "
        "(enables POST /update)",
    )
    serve.add_argument(
        "--collection",
        help="serve a built collection directory (routes /estimate by "
        "document id; read-only)",
    )
    serve.add_argument(
        "--max-open-shards",
        type=int,
        default=8,
        help="LRU capacity of open shard containers with --collection "
        "(default %(default)s)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for large batches (copy-on-write under fork)",
    )
    serve.add_argument(
        "--window-ms",
        type=float,
        default=0.0,
        help="coalescing window in milliseconds (default: next loop tick)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="distinct plans per dispatched batch (default %(default)s)",
    )
    serve.set_defaults(handler=_cmd_serve)

    evaluate = commands.add_parser("evaluate", help="exact selectivity on a document")
    evaluate.add_argument("input", help="XML document")
    evaluate.add_argument("query", help="twig query")
    evaluate.add_argument(
        "--engine",
        choices=("interval", "treewalk"),
        default="interval",
        help="exact-evaluation engine (default %(default)s)",
    )
    evaluate.set_defaults(handler=_cmd_evaluate)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("--scale", type=float, default=0.25)
    experiments.add_argument("--queries", type=int, default=15)
    experiments.set_defaults(handler=_cmd_experiments)

    check = commands.add_parser(
        "check",
        help="audit synopsis invariants and fuzz engine parity",
    )
    check.add_argument(
        "--rounds",
        type=int,
        default=_default_rounds(),
        help="fuzz rounds (default: REPRO_CHECK_ROUNDS env var, else 3)",
    )
    check.add_argument(
        "--seed", type=int, default=20060402, help="master fuzz seed"
    )
    check.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="XMark scale for the fresh-synopsis audit",
    )
    check.add_argument(
        "--synopsis",
        help="audit a saved synopsis (JSON or snapshot) instead of "
        "building one",
    )
    check.add_argument(
        "--skip-fuzz",
        action="store_true",
        help="run only the invariant audit, no differential rounds",
    )
    check.add_argument(
        "--evaluator",
        action="store_true",
        help="run evaluator-only fuzz rounds (interval-join engine vs "
        "tree-walk oracle on workload + mutated twigs)",
    )
    check.add_argument(
        "--updates",
        action="store_true",
        help="run update-maintenance fuzz rounds (incremental maintainer "
        "vs rebuild-from-scratch after every seeded random update)",
    )
    check.add_argument(
        "--updates-per-round",
        type=int,
        default=40,
        help="random update ops per --updates round (default %(default)s)",
    )
    check.add_argument(
        "--collection",
        action="store_true",
        help="run collection-store fuzz rounds (shard-routed estimates "
        "vs a monolithic single-synopsis oracle on the merged document)",
    )
    check.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    check.set_defaults(handler=_cmd_check)

    ingest = commands.add_parser(
        "ingest",
        help="stream a document into the columnar store",
    )
    ingest.add_argument("input", help="XML document to ingest")
    ingest.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="streaming read size in bytes (default %(default)s)",
    )
    ingest.add_argument(
        "--compare",
        action="store_true",
        help="also parse the object tree and verify phase-1 parity "
        "(exits non-zero on divergence)",
    )
    ingest.set_defaults(handler=_cmd_ingest)

    collection = commands.add_parser(
        "collection",
        help="manage a directory-of-snapshots collection store",
    )
    actions = collection.add_subparsers(dest="action", required=True)

    coll_build = actions.add_parser(
        "build", help="build a collection from a directory of XML files"
    )
    coll_build.add_argument("root", help="collection directory to create")
    coll_build.add_argument(
        "--input",
        required=True,
        help="directory of .xml documents (file name becomes the doc id)",
    )
    coll_build.add_argument(
        "--shards", type=int, default=8, help="shard count (default %(default)s)"
    )
    coll_build.add_argument(
        "--budget",
        type=int,
        default=1 << 20,
        help="total synopsis bytes across all shards (default %(default)s)",
    )
    coll_build.add_argument(
        "--structural-share",
        type=float,
        default=0.3,
        help="B_str fraction of each payload budget (default %(default)s)",
    )
    coll_build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for distinct-structure builds (default %(default)s)",
    )
    coll_build.add_argument(
        "--no-compress",
        action="store_true",
        help="store uncompressed reference synopses (exact mode)",
    )
    coll_build.set_defaults(handler=_cmd_collection)

    coll_rebalance = actions.add_parser(
        "rebalance",
        help="reallocate synopsis bytes toward shards a query log hits",
    )
    coll_rebalance.add_argument("root", help="built collection directory")
    coll_rebalance.add_argument(
        "--log",
        required=True,
        help="observed query log: JSON lines (or a JSON array) of "
        '{"doc": <id>, "query": <xpath>}',
    )
    coll_rebalance.add_argument("--workers", type=int, default=1)
    coll_rebalance.set_defaults(handler=_cmd_collection)

    coll_stats = actions.add_parser(
        "stats", help="print a collection's manifest and serving counters"
    )
    coll_stats.add_argument("root", help="built collection directory")
    coll_stats.add_argument(
        "--json", action="store_true", help="emit the stats as JSON"
    )
    coll_stats.add_argument(
        "--verify",
        action="store_true",
        help="hash-verify every container against the manifest first",
    )
    coll_stats.set_defaults(handler=_cmd_collection)

    coll_export = actions.add_parser(
        "export", help="dump the collection as edge-model CSV tables"
    )
    coll_export.add_argument("root", help="built collection directory")
    coll_export.add_argument(
        "--edge-model",
        required=True,
        metavar="OUT_DIR",
        help="destination directory for shards/documents/nodes/edges CSVs",
    )
    coll_export.set_defaults(handler=_cmd_collection)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""The always-on synopsis serving tier (``python -m repro serve``).

A built synopsis is tiny next to its document — the paper's premise is
that it stays resident and answers selectivity questions for everyone.
This package makes that literal:

* :mod:`repro.serve.engine` — the serving core: one shared
  :class:`~repro.core.estimation.serving.WorkloadEstimator` per loaded
  synopsis (so the cross-query plan cache is shared across *users*),
  coalescing of structurally identical in-flight plans into a single
  batched dispatch, and latency/throughput observability riding on
  ``EstimatorStats``;
* :mod:`repro.serve.http` — a dependency-free asyncio HTTP front end
  accepting twig queries as XPath-subset text or JSON AST
  (:mod:`repro.query.jsonast`), with ``/stats`` exposing the serving
  counters.

Snapshots (:mod:`repro.core.snapshot`) are the intended cold-start
path: load is mmap-backed and lazy, and under the ``fork`` pool start
method workers share the loaded pages copy-on-write.
"""

from repro.serve.collection import CollectionServeEngine
from repro.serve.engine import PlanCoalescer, ServeEngine, ServingStats
from repro.serve.http import ServeClient, SynopsisServer, run_server

__all__ = [
    "CollectionServeEngine",
    "PlanCoalescer",
    "ServeEngine",
    "ServingStats",
    "ServeClient",
    "SynopsisServer",
    "run_server",
]

"""Collection-backed serving engine (``repro serve --collection``).

Implements the same engine surface :mod:`repro.serve.http` dispatches
against — ``parse_request_query`` / ``estimate`` / ``estimate_batch`` /
``stats_snapshot`` / a :class:`~repro.serve.engine.PlanCoalescer` — but
backed by a :class:`~repro.collection.store.CollectionStore` instead of
one loaded synopsis:

* ``/estimate`` with a ``"doc"`` key routes to the document's own
  payload synopsis (shard by id hash, payload by content hash) through
  the store's LRU of open mmaps;
* ``/estimate`` without ``"doc"`` is collection-wide: the exact
  multiplicity-weighted sum over every payload, coalesced and batched
  exactly like single-synopsis serving (the store's single shared plan
  cache makes one compiled twig serve all shards);
* ``"scope": "rollup"`` answers from the merged rollup synopsis
  without touching any shard — the cheap approximate path;
* ``/update`` is rejected: a collection directory is rebuilt or
  rebalanced offline, not mutated in place.

Latency and throughput ride the same :class:`ServingStats` as the
single-synopsis daemon, with the store's own counters (LRU hit rates,
per-shard budgets) nested under ``"collection"`` in ``/stats``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List

from repro.collection.store import CollectionStore
from repro.query.ast import TwigQuery
from repro.serve.engine import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW_SECONDS,
    PlanCoalescer,
    ServeEngine,
    ServingStats,
)


class _ReadOnlyVersion:
    """The ``engine.synopsis`` facade: just a manifest version number."""

    __slots__ = ("version",)

    def __init__(self, version: int) -> None:
        self.version = version


class CollectionServeEngine:
    """Serve ``/estimate`` traffic for a whole collection directory."""

    def __init__(
        self,
        store: CollectionStore,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        self.store = store
        self.synopsis = _ReadOnlyVersion(store.manifest.version)
        self.stats = ServingStats(store.stats)
        self.coalescer = PlanCoalescer(
            self, window_seconds=window_seconds, max_batch=max_batch
        )

    # The request-body grammar is identical to single-synopsis serving
    # (and the method reads no engine state), so share the one parser.
    parse_request_query = ServeEngine.parse_request_query

    def apply_updates(self, ops: List[Any]) -> List[Dict[str, Any]]:
        """Reject updates: collection stores are served read-only."""
        raise ValueError(
            "a collection store is read-only; rebuild or rebalance the "
            "directory with `repro collection` instead of POST /update"
        )

    def estimate_batch(self, queries: List[TwigQuery]) -> List[float]:
        """Collection-wide exact sums for one coalesced batch."""
        return [self.store.estimate_collection(query) for query in queries]

    async def estimate(self, query: TwigQuery) -> float:
        """One collection-wide request through the coalescer."""
        started = perf_counter()
        try:
            value = await self.coalescer.submit(query)
        except Exception:
            self.stats.errors += 1
            raise
        self.stats.observe_latency(perf_counter() - started)
        return value

    async def estimate_doc(self, doc_id: str, query: TwigQuery) -> float:
        """One document-routed request (raises ``KeyError`` if unknown)."""
        started = perf_counter()
        try:
            value = self.store.estimate(doc_id, query)
        except KeyError:
            self.stats.errors += 1
            raise
        self.stats.observe_latency(perf_counter() - started)
        return value

    async def estimate_rollup(self, query: TwigQuery) -> float:
        """One request against the merged rollup synopsis."""
        started = perf_counter()
        value = self.store.estimate_rollup(query)
        self.stats.observe_latency(perf_counter() - started)
        return value

    def stats_snapshot(self) -> Dict[str, Any]:
        """Serving stats plus a nested ``collection`` store section."""
        snapshot = self.stats.snapshot()
        snapshot["collection"] = self.store.stats_snapshot()
        return snapshot


__all__ = ["CollectionServeEngine"]

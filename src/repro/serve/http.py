"""A dependency-free asyncio HTTP front end for the serving engine.

The wire protocol is deliberately small — JSON request/response bodies
over HTTP/1.1 with keep-alive — so any client (curl, a load generator,
another service) can talk to the daemon without a client library:

* ``GET /healthz`` — liveness: ``{"status": "ok"}``.
* ``GET /stats`` — the :class:`~repro.serve.engine.ServingStats`
  snapshot (latency percentiles, coalescing, estimator cache rates).
* ``POST /estimate`` — body ``{"query": "//item/name"}`` or
  ``{"ast": {...}}`` (:mod:`repro.query.jsonast`), optional ``"user"``
  tag echoed back; response ``{"estimate": <float>}``.  Requests flow
  through the plan coalescer, so concurrent identical plans cost one
  execution.
* ``POST /batch`` — body ``{"queries": [<request body>, ...]}``;
  response ``{"estimates": [...]}``.  Large batches shard over the
  copy-on-write worker pool.
* ``POST /update`` — body ``{"updates": [<update dict>, ...]}``
  (:func:`repro.update.ops.update_from_dict`); response
  ``{"applied": N, "version": V, "elements": E}``.  Only available
  when the engine was started from a document (``repro serve
  --document``), so an :class:`~repro.update.maintainer.
  IncrementalMaintainer` owns the synopsis; 400 otherwise.  The
  maintainer bumps the synopsis version per applied op, which
  invalidates the shared plan/index caches mid-stream.
* ``POST /shutdown`` — graceful stop (used by tests and the CI smoke
  job; a production deployment would firewall it).

Malformed queries map to 400 with a JSON error body; unknown routes to
404.  The server never lets a request exception kill the connection
loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.engine import ServeEngine
from repro.update.ops import UpdateFormatError, update_from_dict

#: Request bodies above this size are rejected (a twig AST is tiny).
MAX_BODY_BYTES = 4 * 1024 * 1024

_MAX_HEADER_LINES = 100


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response_bytes(
    status: int, body: Dict[str, Any], keep_alive: bool
) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One request as (method, path, headers, body); None at EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError):
        raise _HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("ascii").partition(":")
        except UnicodeDecodeError:
            raise _HttpError(400, "malformed header")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "too many headers")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _HttpError(400, f"bad content-length {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body of {length} bytes exceeds limit")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    return method, target.split("?", 1)[0], headers, body


def _parse_json_body(body: bytes) -> Any:
    if not body:
        raise _HttpError(400, "empty request body")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise _HttpError(400, f"bad JSON body: {err}")


class SynopsisServer:
    """The ``repro serve`` daemon: one engine behind an asyncio server."""

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._connections: Dict[asyncio.StreamWriter, "asyncio.Task[None]"] = {}

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until ``/shutdown`` (or :meth:`shutdown`) is called."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self._close()

    def shutdown(self) -> None:
        """Signal the serve loop to stop accepting and drain cleanly."""
        self._shutdown.set()

    async def _close(self) -> None:
        # Flush anything still pending so no request hangs forever.
        self.engine.coalescer.flush()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Nudge idle keep-alive connections to EOF and let their handler
        # tasks finish, so loop teardown never cancels them mid-write.
        for writer in list(self._connections):
            writer.close()
        tasks = list(self._connections.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._connections.clear()

    async def __aenter__(self) -> "SynopsisServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.shutdown()
        await self._close()

    # -- request handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[writer] = task
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as err:
                    writer.write(
                        _response_bytes(
                            err.status, {"error": err.message}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    status, response = await self._dispatch(method, path, body)
                except _HttpError as err:
                    status, response = err.status, {"error": err.message}
                except Exception as err:  # pragma: no cover - last resort
                    self.engine.stats.errors += 1
                    status, response = 500, {"error": str(err)}
                writer.write(_response_bytes(status, response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.pop(writer, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _estimate_routed(self, payload: Any, query: Any) -> float:
        """Route one ``/estimate`` body: by document id, rollup, or whole.

        ``{"doc": <id>}`` asks for the document's own synopsis and
        ``{"scope": "rollup"}`` for the merged rollup — both only exist
        on collection-backed engines (``repro serve --collection``);
        other engines answer 400 so the client learns the capability
        gap rather than silently getting a different quantity.
        """
        doc_id = payload.get("doc") if isinstance(payload, dict) else None
        scope = payload.get("scope") if isinstance(payload, dict) else None
        if scope not in (None, "collection", "rollup"):
            raise _HttpError(400, f"unknown scope {scope!r}")
        if doc_id is not None:
            if not isinstance(doc_id, str):
                raise _HttpError(400, "'doc' must be a document id string")
            estimate_doc = getattr(self.engine, "estimate_doc", None)
            if estimate_doc is None:
                self.engine.stats.errors += 1
                raise _HttpError(
                    400,
                    "this engine does not route by document id; start the "
                    "daemon with `repro serve --collection`",
                )
            try:
                return await estimate_doc(doc_id, query)
            except KeyError as err:
                raise _HttpError(404, str(err.args[0]) if err.args else str(err))
        if scope == "rollup":
            estimate_rollup = getattr(self.engine, "estimate_rollup", None)
            if estimate_rollup is None:
                self.engine.stats.errors += 1
                raise _HttpError(
                    400,
                    "this engine has no rollup; start the daemon with "
                    "`repro serve --collection`",
                )
            return await estimate_rollup(query)
        return await self.engine.estimate(query)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET /healthz")
            return 200, {"status": "ok"}
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET /stats")
            return 200, self.engine.stats_snapshot()
        if path == "/estimate":
            if method != "POST":
                raise _HttpError(405, "use POST /estimate")
            payload = _parse_json_body(body)
            try:
                query = self.engine.parse_request_query(payload)
            except ValueError as err:
                self.engine.stats.errors += 1
                raise _HttpError(400, str(err))
            estimate = await self._estimate_routed(payload, query)
            response: Dict[str, Any] = {"estimate": estimate}
            if isinstance(payload, dict) and "user" in payload:
                response["user"] = payload["user"]
            return 200, response
        if path == "/batch":
            if method != "POST":
                raise _HttpError(405, "use POST /batch")
            payload = _parse_json_body(body)
            if not isinstance(payload, dict) or not isinstance(
                payload.get("queries"), list
            ):
                raise _HttpError(400, "body must be {'queries': [...]}")
            queries = []
            for item in payload["queries"]:
                try:
                    queries.append(self.engine.parse_request_query(item))
                except ValueError as err:
                    self.engine.stats.errors += 1
                    raise _HttpError(400, str(err))
            estimates = self.engine.estimate_batch(queries)
            self.engine.stats.record_batch(len(queries), len(queries))
            return 200, {"estimates": estimates}
        if path == "/update":
            if method != "POST":
                raise _HttpError(405, "use POST /update")
            payload = _parse_json_body(body)
            if not isinstance(payload, dict) or not isinstance(
                payload.get("updates"), list
            ):
                raise _HttpError(400, "body must be {'updates': [...]}")
            try:
                ops = [update_from_dict(item) for item in payload["updates"]]
            except UpdateFormatError as err:
                self.engine.stats.errors += 1
                raise _HttpError(400, str(err))
            try:
                results = self.engine.apply_updates(ops)
            except ValueError as err:
                # Either a static-synopsis engine, or an op invalid
                # against the current document.  Earlier ops in the
                # batch stay applied; report how far we got.
                self.engine.stats.errors += 1
                raise _HttpError(400, str(err))
            return 200, {
                "applied": len(results),
                "version": self.engine.synopsis.version,
                "elements": results[-1]["elements"] if results else None,
            }
        if path == "/shutdown":
            if method != "POST":
                raise _HttpError(405, "use POST /shutdown")
            self.shutdown()
            return 200, {"status": "shutting down"}
        raise _HttpError(404, f"no route {path}")


async def _run_server_async(
    engine: ServeEngine, host: str, port: int, ready_line: bool
) -> None:
    server = SynopsisServer(engine, host, port)
    await server.start()
    if ready_line:
        # The smoke scripts scrape this exact line for the bound port.
        print(f"serving on http://{server.host}:{server.port}", flush=True)
    await server.serve_until_shutdown()


def run_server(
    engine: ServeEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_line: bool = True,
) -> None:
    """Run the daemon until ``/shutdown`` or KeyboardInterrupt."""
    try:
        asyncio.run(_run_server_async(engine, host, port, ready_line))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass


class ServeClient:
    """A tiny asyncio client for tests, benchmarks, and smoke jobs.

    Speaks the same keep-alive protocol as the server over one
    connection; not a public API surface, just enough to drive the
    daemon without external HTTP libraries.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        """Open the persistent keep-alive connection to the daemon."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        """Close the connection, tolerating an already-dropped peer."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Send one HTTP request; returns ``(status, decoded JSON body)``."""
        if self._writer is None:
            await self.connect()
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("ascii")
        self._writer.write(head + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(data.decode("utf-8"))

    async def estimate(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """POST ``body`` to ``/estimate``; returns ``(status, response)``."""
        return await self.request("POST", "/estimate", body)

    async def stats(self) -> Dict[str, Any]:
        """Fetch the daemon's ``/stats`` counters as a dict."""
        _status, body = await self.request("GET", "/stats")
        return body


__all__ = ["SynopsisServer", "ServeClient", "run_server", "MAX_BODY_BYTES"]

"""The serving core: shared estimator state, plan coalescing, stats.

Three pieces compose the daemon's hot path:

* :class:`ServeEngine` — owns the loaded synopsis and one
  :class:`~repro.core.estimation.serving.WorkloadEstimator`, so every
  request from every user funnels into one plan-signature cache and one
  ``EstimatorStats``.  Plan signatures are name-free and include value
  predicates, which is what makes cross-user sharing sound: two users
  asking structurally identical twigs *with identical predicates* get
  byte-identical plans — and identical estimates.
* :class:`PlanCoalescer` — request coalescing.  In-flight requests are
  keyed by plan signature inside a short dispatch window; structurally
  identical plans collapse onto one representative execution and the
  whole window flushes as a single
  :func:`~repro.core.estimation.serving.estimate_many` batch (which
  shards over the copy-on-write fork pool once batches are large
  enough to amortize it).  Under a repetition-heavy user mix — the
  redbench-style banded workload — most of a window is duplicates, so
  the executed batch is far smaller than the arrival batch.
* :class:`ServingStats` — latency/throughput observability riding on
  the estimator counters: a bounded reservoir of per-request latencies
  (p50/p99), batch occupancy, coalescing rate, and the cross-user plan
  cache hit rate, all exported by the ``/stats`` endpoint.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional

from repro.core.estimation import WorkloadEstimator, estimate_many
from repro.core.estimation.engine import CompiledEstimator, EstimatorStats
from repro.core.estimation.plan import PlanSignature, compile_query
from repro.core.synopsis import XClusterSynopsis
from repro.query.ast import TwigQuery
from repro.query.jsonast import QueryFormatError, twig_from_dict
from repro.query.xpath import XPathSyntaxError, parse_twig
from repro.update.maintainer import IncrementalMaintainer
from repro.update.ops import UpdateOp

#: Default coalescing window.  Zero means "flush on the next event-loop
#: iteration": every request whose bytes were readable in the same loop
#: tick — i.e. genuinely concurrent arrivals across connections — lands
#: in one batch, while a lone sequential client pays no added latency.
#: Raise it to trade tail latency for bigger batches.
DEFAULT_WINDOW_SECONDS = 0.0

#: Default cap on distinct plans per dispatched batch.
DEFAULT_MAX_BATCH = 64

#: Latency reservoir size: enough for stable p99 at serving rates
#: without unbounded growth on a long-lived daemon.
LATENCY_WINDOW = 8192


class ServingStats:
    """Latency/throughput counters layered over ``EstimatorStats``.

    Latencies are kept in a bounded reservoir (the most recent
    :data:`LATENCY_WINDOW` requests), so percentiles track current
    behaviour on a long-lived daemon rather than averaging over its
    whole life.
    """

    def __init__(
        self, estimator_stats: EstimatorStats, window: int = LATENCY_WINDOW
    ) -> None:
        self.estimator_stats = estimator_stats
        self._latencies: Deque[float] = deque(maxlen=window)
        self.requests_total = 0
        #: Requests absorbed by an already in-flight identical plan.
        self.coalesced_requests = 0
        #: Dispatches to ``estimate_many`` and what they carried.
        self.batches_dispatched = 0
        self.batched_requests_total = 0
        self.batched_plans_total = 0
        self.errors = 0
        self._started = perf_counter()

    def observe_latency(self, seconds: float) -> None:
        """Record one served request's wall-clock latency, in seconds."""
        self._latencies.append(seconds)
        self.requests_total += 1

    def record_batch(self, requests: int, plans: int) -> None:
        """Record one dispatched batch: requests served and distinct plans."""
        self.batches_dispatched += 1
        self.batched_requests_total += requests
        self.batched_plans_total += plans

    def latency_percentile(self, percentile: float) -> float:
        """The given percentile (in [0, 100]) of recent latencies, seconds."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = max(0, math.ceil(percentile / 100.0 * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile(50.0) * 1000.0

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile(99.0) * 1000.0

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean requests carried per dispatched batch (≥ 1 when busy)."""
        if not self.batches_dispatched:
            return 0.0
        return self.batched_requests_total / self.batches_dispatched

    @property
    def coalesce_rate(self) -> float:
        """Fraction of requests that rode an in-flight identical plan."""
        if not self.requests_total:
            return 0.0
        return self.coalesced_requests / self.requests_total

    @property
    def uptime_seconds(self) -> float:
        return perf_counter() - self._started

    def snapshot(self) -> Dict[str, Any]:
        """The ``/stats`` payload: serving + estimator counters."""
        estimator = self.estimator_stats
        return {
            "requests_total": self.requests_total,
            "errors": self.errors,
            "uptime_seconds": self.uptime_seconds,
            "latency": {
                "p50_ms": self.p50_ms,
                "p99_ms": self.p99_ms,
                "window": len(self._latencies),
            },
            "coalescing": {
                "coalesced_requests": self.coalesced_requests,
                "coalesce_rate": self.coalesce_rate,
                "batches_dispatched": self.batches_dispatched,
                "mean_batch_occupancy": self.mean_batch_occupancy,
                "batched_plans_total": self.batched_plans_total,
            },
            "estimator": {
                "queries_estimated": estimator.queries_estimated,
                "plans_compiled": estimator.plans_compiled,
                "plan_cache_hits": estimator.plan_cache_hits,
                "plan_cache_hit_rate": estimator.plan_cache_hit_rate,
                "reach_cache_hit_rate": estimator.reach_cache_hit_rate,
                "selectivity_cache_hit_rate": estimator.selectivity_cache_hit_rate,
                "workers_used": estimator.workers_used,
            },
        }


class ServeEngine:
    """One loaded synopsis plus the shared estimation state serving it.

    All users of a synopsis share one ``WorkloadEstimator`` — its plan
    cache and stats object — so a plan compiled for one user is a cache
    hit for every later user asking the same shape, which is exactly
    the structure a repetition-banded workload rewards.
    """

    def __init__(
        self,
        synopsis: Optional[XClusterSynopsis] = None,
        workers: int = 1,
        max_path_length: int = 40,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        maintainer: Optional[IncrementalMaintainer] = None,
    ) -> None:
        if (synopsis is None) == (maintainer is None):
            raise ValueError(
                "ServeEngine needs exactly one of a synopsis or a maintainer"
            )
        self.maintainer = maintainer
        # A maintainer-backed engine serves the maintainer's live
        # synopsis; grafts preserve object identity, so this binding
        # (and every derived cache, through the version protocol) stays
        # valid across ``/update`` batches.
        self.synopsis = synopsis if maintainer is None else maintainer.synopsis
        self.workers = max(1, workers)
        self.max_path_length = max_path_length
        self.workload = WorkloadEstimator([], max_path_length)
        self.stats = ServingStats(self.workload.stats)
        self.coalescer = PlanCoalescer(
            self, window_seconds=window_seconds, max_batch=max_batch
        )

    @property
    def estimator(self) -> CompiledEstimator:
        """The shared compiled estimator bound to the loaded synopsis."""
        return self.workload.estimator_for(self.synopsis)

    def apply_updates(self, ops: List[UpdateOp]) -> List[Dict[str, Any]]:
        """Apply a document-update batch through the live maintainer.

        Returns one result dict per applied op.  Raises ``ValueError``
        when the engine serves a static synopsis (no maintainer) or
        when an op is invalid against the current document — earlier
        ops in the batch stay applied, and the synopsis version has
        already advanced past them, so serving state remains coherent.
        """
        if self.maintainer is None:
            raise ValueError(
                "this engine serves a static synopsis; restart it from a "
                "document to accept updates"
            )
        results = []
        for op in ops:
            results.append(self.maintainer.apply(op))
        return results

    def parse_request_query(self, payload: Dict[str, Any]) -> TwigQuery:
        """A twig from a request body: ``query`` (XPath) or ``ast``.

        Raises ``ValueError`` subclasses (``XPathSyntaxError`` /
        ``QueryFormatError``) on malformed input; the HTTP layer maps
        those to 400 responses.
        """
        if not isinstance(payload, dict):
            raise QueryFormatError("request body must be a JSON object")
        text = payload.get("query")
        ast = payload.get("ast")
        if (text is None) == (ast is None):
            raise QueryFormatError(
                "request needs exactly one of 'query' (XPath) or 'ast' (JSON AST)"
            )
        if text is not None:
            if not isinstance(text, str):
                raise QueryFormatError("'query' must be an XPath string")
            return parse_twig(text)
        return twig_from_dict(ast)

    def estimate_batch(self, queries: List[TwigQuery]) -> List[float]:
        """Synchronously estimate a batch through the shared state.

        Large batches shard over the process pool (fork children share
        the loaded snapshot pages copy-on-write); small ones execute
        in-process against the shared caches.
        """
        return estimate_many(
            self.synopsis,
            queries,
            workers=self.workers,
            max_path_length=self.max_path_length,
            estimator=self.estimator,
        )

    async def estimate(self, query: TwigQuery) -> float:
        """Estimate one request through the coalescer, recording latency."""
        started = perf_counter()
        try:
            value = await self.coalescer.submit(query)
        except Exception:
            self.stats.errors += 1
            raise
        self.stats.observe_latency(perf_counter() - started)
        return value

    def stats_snapshot(self) -> Dict[str, Any]:
        """A point-in-time copy of the serving counters (see ``/stats``)."""
        snapshot = self.stats.snapshot()
        if self.maintainer is not None:
            maintenance = self.maintainer.stats.snapshot()
            maintenance["synopsis_version"] = self.synopsis.version
            maintenance["document_elements"] = len(self.maintainer.doc)
            snapshot["maintenance"] = maintenance
        return snapshot


class _PendingPlan:
    """One distinct in-flight plan and every request waiting on it."""

    __slots__ = ("query", "futures")

    def __init__(self, query: TwigQuery) -> None:
        self.query = query
        self.futures: List["asyncio.Future[float]"] = []


class PlanCoalescer:
    """Coalesce structurally identical in-flight plans into one batch.

    Requests submitted inside one dispatch window are grouped by plan
    signature; each signature is estimated once and its result fans out
    to every waiting future.  The window flushes after
    ``window_seconds`` or as soon as ``max_batch`` distinct plans are
    pending, whichever comes first.  All state is touched only from the
    event loop, so no locking is needed.
    """

    def __init__(
        self,
        engine: ServeEngine,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        self._engine = engine
        self._window = window_seconds
        self._max_batch = max_batch
        self._pending: Dict[PlanSignature, _PendingPlan] = {}
        self._flush_handle: Optional[asyncio.TimerHandle] = None

    @property
    def pending_plans(self) -> int:
        return len(self._pending)

    async def submit(self, query: TwigQuery) -> float:
        """Enqueue ``query``, coalescing with signature-identical in-flight
        plans, and await its estimate from the next dispatched batch."""
        loop = asyncio.get_running_loop()
        signature = compile_query(query).signature
        future: "asyncio.Future[float]" = loop.create_future()
        pending = self._pending.get(signature)
        if pending is None:
            pending = _PendingPlan(query)
            self._pending[signature] = pending
        else:
            self._engine.stats.coalesced_requests += 1
        pending.futures.append(future)
        if len(self._pending) >= self._max_batch:
            self.flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self._window, self.flush)
        return await future

    def flush(self) -> None:
        """Dispatch everything pending as one ``estimate_many`` batch."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        pending = self._pending
        if not pending:
            return
        self._pending = {}
        plans = list(pending.values())
        requests = sum(len(plan.futures) for plan in plans)
        try:
            estimates = self._engine.estimate_batch(
                [plan.query for plan in plans]
            )
        except Exception as err:  # pragma: no cover - estimator is total
            for plan in plans:
                for future in plan.futures:
                    if not future.done():
                        future.set_exception(err)
            return
        self._engine.stats.record_batch(requests, len(plans))
        for plan, estimate in zip(plans, estimates):
            for future in plan.futures:
                if not future.done():
                    future.set_result(estimate)

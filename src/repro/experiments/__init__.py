"""Experiment harness regenerating every table and figure of Section 6.

* :mod:`repro.experiments.harness` — shared context (datasets, reference
  synopses, workloads, budget sweeps) with in-process caching;
* :mod:`repro.experiments.tables` — Table 1 (dataset characteristics)
  and Table 2 (workload characteristics);
* :mod:`repro.experiments.figures` — Figure 8 (error vs. synopsis size,
  five series per dataset) and Figure 9 (absolute error of low-count
  queries), plus the negative-workload check;
* :mod:`repro.experiments.reporting` — plain-text table/series
  rendering shared by benches and examples.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentContext,
    SweepPoint,
)
from repro.experiments.tables import table1_rows, table2_rows
from repro.experiments.figures import (
    figure8_series,
    figure9_rows,
    negative_workload_estimates,
)
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "SweepPoint",
    "table1_rows",
    "table2_rows",
    "figure8_series",
    "figure9_rows",
    "negative_workload_estimates",
    "format_series",
    "format_table",
]

"""Shared experiment context and the Figure 8 budget sweep.

The paper varies the *structural* budget from 0 KB to 50 KB while the
*value* budget stays fixed at 150 KB (Section 6.2).  Our corpora are
generator-scaled, so budgets are expressed as **fractions of the
reference synopsis size**: the sweep covers structural fractions from 0
(the tag-only summary, the smallest possible structural clustering) up
to 1 (the full reference structure), with the value budget fixed at a
fraction of the reference value size chosen to mirror the paper's
150 KB / 473 KB ≈ 1/3 ratio.

:class:`ExperimentContext` memoizes datasets, reference synopses, and
workloads so the per-figure benches do not recompute shared inputs.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.reference import build_reference_synopsis, build_tag_synopsis
from repro.core.sizing import (
    structural_size_bytes,
    total_size_bytes,
    value_size_bytes,
)
from repro.core.synopsis import XClusterSynopsis
from repro.datasets import Dataset, generate_imdb, generate_xmark
from repro.values.summary import SummaryConfig
from repro.workload import (
    Workload,
    evaluate_synopsis,
    generate_workload,
    sanity_bound,
)
from repro.workload.metrics import ErrorReport

#: Default structural-budget fractions of the reference structural size.
DEFAULT_STRUCTURAL_FRACTIONS: Tuple[float, ...] = (
    0.0, 0.05, 0.1, 0.2, 0.35, 0.55, 0.8, 1.0,
)


@dataclass
class ExperimentConfig:
    """Scale and sweep parameters shared by all experiments."""

    scale: float = 0.25
    imdb_seed: int = 42
    xmark_seed: int = 7
    workload_seed: int = 1234
    queries_per_class: int = 25
    structural_fractions: Sequence[float] = DEFAULT_STRUCTURAL_FRACTIONS
    #: Value budget as a fraction of the reference value size (the paper
    #: fixes 150 KB against a 473 KB reference; just under half of the
    #: reference's value portion).
    value_fraction: float = 0.45
    pool_max: int = 10000
    pool_min: int = 5000
    #: Exact-evaluation engine grading workload queries ("interval" or
    #: "treewalk"); interval joins keep large-scale sweeps tractable.
    evaluation_engine: str = "interval"


@dataclass
class SweepPoint:
    """One point of the Figure 8 sweep."""

    structural_fraction: float
    structural_bytes: int
    value_bytes: int
    total_bytes: int
    report: ErrorReport

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0


class ExperimentContext:
    """Builds and caches every shared experiment input."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self._datasets: Dict[str, Dataset] = {}
        self._references: Dict[str, XClusterSynopsis] = {}
        self._workloads: Dict[str, Workload] = {}

    # -- cached inputs ------------------------------------------------------

    def dataset(self, name: str) -> Dataset:
        """The (cached) generated dataset with the given name."""
        cached = self._datasets.get(name)
        if cached is None:
            if name == "imdb":
                cached = generate_imdb(self.config.scale, self.config.imdb_seed)
            elif name == "xmark":
                cached = generate_xmark(self.config.scale, self.config.xmark_seed)
            else:
                raise KeyError(f"unknown dataset {name!r}")
            self._datasets[name] = cached
        return cached

    def reference(self, name: str) -> XClusterSynopsis:
        """The (cached) reference synopsis; callers must not mutate it."""
        cached = self._references.get(name)
        if cached is None:
            dataset = self.dataset(name)
            cached = build_reference_synopsis(dataset.tree, dataset.value_paths)
            self._references[name] = cached
        return cached

    def fresh_reference(self, name: str) -> XClusterSynopsis:
        """A mutable deep copy of the reference synopsis for compression."""
        return copy.deepcopy(self.reference(name))

    def workload(self, name: str) -> Workload:
        """The (cached) positive workload for the named dataset."""
        cached = self._workloads.get(name)
        if cached is None:
            cached = generate_workload(
                self.dataset(name),
                self.config.queries_per_class,
                self.config.workload_seed,
                engine=self.config.evaluation_engine,
            )
            self._workloads[name] = cached
        return cached

    # -- synopsis construction at a budget point --------------------------------

    def _build_config(self, structural_budget: int, value_budget: int) -> BuildConfig:
        return BuildConfig(
            structural_budget=structural_budget,
            value_budget=value_budget,
            pool_max=self.config.pool_max,
            pool_min=self.config.pool_min,
        )

    def build_at_fraction(
        self, name: str, structural_fraction: float
    ) -> XClusterSynopsis:
        """Build a budgeted synopsis at one sweep point.

        Fraction 0 uses the tag-only summary (the paper's "0 KB" point);
        the value-compression phase still enforces the value budget.
        """
        reference = self.reference(name)
        value_budget = int(value_size_bytes(reference) * self.config.value_fraction)
        dataset = self.dataset(name)
        if structural_fraction <= 0.0:
            synopsis = build_tag_synopsis(
                dataset.tree, dataset.value_paths, SummaryConfig()
            )
            structural_budget = structural_size_bytes(synopsis)
        else:
            synopsis = self.fresh_reference(name)
            structural_budget = int(
                structural_size_bytes(reference) * structural_fraction
            )
        builder = XClusterBuilder(self._build_config(structural_budget, value_budget))
        return builder.compress(synopsis)

    # -- the Figure 8 sweep ---------------------------------------------------------

    def sweep(
        self,
        name: str,
        fractions: Optional[Sequence[float]] = None,
    ) -> List[SweepPoint]:
        """Run the error-vs-budget sweep for one dataset.

        The sanity bound is computed once from the workload (it depends
        only on true counts) and shared across budget points, exactly as
        in the paper.
        """
        fractions = (
            list(fractions)
            if fractions is not None
            else list(self.config.structural_fractions)
        )
        workload = self.workload(name)
        bound = sanity_bound([wq.exact for wq in workload.queries])
        points: List[SweepPoint] = []
        for fraction in fractions:
            synopsis = self.build_at_fraction(name, fraction)
            report = evaluate_synopsis(synopsis, workload, bound)
            points.append(
                SweepPoint(
                    structural_fraction=fraction,
                    structural_bytes=structural_size_bytes(synopsis),
                    value_bytes=value_size_bytes(synopsis),
                    total_bytes=total_size_bytes(synopsis),
                    report=report,
                )
            )
        return points

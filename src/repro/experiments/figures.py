"""Figures 8 and 9 of the paper, plus the negative-workload check.

Figure 8 — average relative estimation error vs. synopsis size, with
five series (Text, String, Numeric, Struct, Overall) per dataset, for a
structural-budget sweep at fixed value budget.

Figure 9 — average *absolute* error of the low-count queries (true size
below the sanity bound) per value-predicate class, at the largest
budget.

The negative-workload check re-validates the paper's Section 6.1 remark:
zero-selectivity queries receive near-zero estimates at every budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.estimation import WorkloadEstimator
from repro.experiments.harness import ExperimentContext, SweepPoint
from repro.workload import make_negative_workload
from repro.workload.generator import QueryClass

#: Series order matching the Figure 8 legend.
FIGURE8_SERIES = (
    ("Text", QueryClass.TEXT),
    ("String", QueryClass.STRING),
    ("Numeric", QueryClass.NUMERIC),
    ("Struct", QueryClass.STRUCT),
    ("Overall", None),
)


@dataclass
class Figure8Result:
    """The full sweep for one dataset, organized per series."""

    dataset: str
    points: List[SweepPoint]

    @property
    def total_kb(self) -> List[float]:
        return [point.total_kb for point in self.points]

    def series(self, query_class: Optional[QueryClass]) -> List[float]:
        """Error values across the sweep for one legend entry."""
        if query_class is None:
            return [point.report.overall for point in self.points]
        return [point.report.class_error(query_class) for point in self.points]

    def as_series_table(self) -> Dict[str, List[float]]:
        """All five legend series keyed by display name."""
        return {name: self.series(cls) for name, cls in FIGURE8_SERIES}


def figure8_series(
    context: ExperimentContext,
    dataset_name: str,
    fractions: Optional[Sequence[float]] = None,
) -> Figure8Result:
    """Run the Figure 8 sweep for one dataset."""
    points = context.sweep(dataset_name, fractions)
    return Figure8Result(dataset_name, points)


@dataclass
class Figure9Row:
    """Absolute error of low-count queries for one value class."""

    query_class: QueryClass
    imdb: float
    xmark: float


def figure9_rows(
    imdb_result: Figure8Result, xmark_result: Figure8Result
) -> List[Figure9Row]:
    """Extract the Figure 9 table from the largest-budget sweep points."""
    imdb_report = imdb_result.points[-1].report
    xmark_report = xmark_result.points[-1].report
    rows = []
    for query_class in (QueryClass.NUMERIC, QueryClass.STRING, QueryClass.TEXT):
        rows.append(
            Figure9Row(
                query_class=query_class,
                imdb=imdb_report.low_count_absolute.get(query_class, 0.0),
                xmark=xmark_report.low_count_absolute.get(query_class, 0.0),
            )
        )
    return rows


def negative_workload_estimates(
    context: ExperimentContext,
    dataset_name: str,
    fractions: Optional[Sequence[float]] = None,
) -> List[float]:
    """Average estimate on the negative workload at each budget point.

    All values should stay near zero (the paper omits the figure for
    exactly this reason).
    """
    dataset = context.dataset(dataset_name)
    positive = context.workload(dataset_name)
    negative = make_negative_workload(dataset, positive)
    fractions = (
        list(fractions)
        if fractions is not None
        else list(context.config.structural_fractions)
    )
    workload_estimator = WorkloadEstimator([wq.query for wq in negative.queries])
    averages = []
    for fraction in fractions:
        synopsis = context.build_at_fraction(dataset_name, fraction)
        estimates = workload_estimator.estimate_all(synopsis)
        averages.append(sum(estimates) / len(estimates) if estimates else 0.0)
    return averages

"""Tables 1 and 2 of the paper (Section 6.1).

Table 1 — data-set characteristics: serialized file size, element count,
reference-synopsis size, and node counts (value-summarized / total).

Table 2 — workload characteristics: the average result size of the
structural queries and of the queries with value predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.sizing import total_size_bytes
from repro.experiments.harness import ExperimentContext
from repro.xmltree.serializer import serialized_size_bytes

DATASET_NAMES = ("imdb", "xmark")


@dataclass
class Table1Row:
    """One Table 1 row."""

    dataset: str
    file_size_mb: float
    element_count: int
    reference_size_kb: float
    value_nodes: int
    total_nodes: int


@dataclass
class Table2Row:
    """One Table 2 row."""

    dataset: str
    avg_result_struct: float
    avg_result_pred: float


def table1_rows(context: ExperimentContext) -> List[Table1Row]:
    """Compute the Table 1 characteristics for both datasets."""
    rows = []
    for name in DATASET_NAMES:
        dataset = context.dataset(name)
        reference = context.reference(name)
        rows.append(
            Table1Row(
                dataset=name,
                file_size_mb=serialized_size_bytes(dataset.tree) / (1024.0 * 1024.0),
                element_count=dataset.element_count,
                reference_size_kb=total_size_bytes(reference) / 1024.0,
                value_nodes=len(reference.valued_nodes()),
                total_nodes=len(reference),
            )
        )
    return rows


def table2_rows(context: ExperimentContext) -> List[Table2Row]:
    """Compute the Table 2 workload characteristics for both datasets."""
    rows = []
    for name in DATASET_NAMES:
        workload = context.workload(name)
        rows.append(
            Table2Row(
                dataset=name,
                avg_result_struct=workload.average_result_size(
                    workload.structural_queries
                ),
                avg_result_pred=workload.average_result_size(
                    workload.predicate_queries
                ),
            )
        )
    return rows

"""Plain-text rendering of experiment tables and series."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned fixed-width text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths))

    lines: List[str] = [render_row(headers)]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    series: Sequence[Sequence[float]],
    series_names: Sequence[str],
    percent: bool = True,
) -> str:
    """Render figure series as one row per x value, one column per series."""
    headers = [x_label, *series_names]
    rows = []
    for index, x_value in enumerate(x_values):
        row = [f"{x_value:.1f}"]
        for values in series:
            value = values[index]
            if value != value:  # NaN
                row.append("-")
            elif percent:
                row.append(f"{100.0 * value:.1f}")
            else:
                row.append(f"{value:.3f}")
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"

"""Negative (zero-selectivity) workloads (paper Section 6.1).

The paper reports — without a figure — that XClusters "consistently
yield close to zero estimates" on negative workloads at all budgets.
This module derives a negative workload from a positive one by mutating
queries into certifiably unsatisfiable variants:

* NUMERIC ranges pushed entirely outside the value domain;
* substring needles containing a symbol absent from the data;
* keyword predicates using a term outside the vocabulary;
* structural branches requiring a child label that never occurs.

Every mutated query is re-checked against the exact evaluator.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.datasets.dataset import Dataset
from repro.query.ast import AxisStep, EdgePath, QueryNode, TwigQuery
from repro.query.evaluator import ExactEvaluator
from repro.query.predicates import (
    KeywordPredicate,
    RangePredicate,
    SubstringPredicate,
    TruePredicate,
)
from repro.workload.generator import QueryClass, Workload, WorkloadQuery
from repro.xmltree.stats import collect_statistics
from repro.xmltree.types import ValueType

#: A substring character guaranteed absent from generated datasets.
_IMPOSSIBLE_CHAR = "§"  # section sign
_IMPOSSIBLE_TERM = "zzzzunusedterm"
_IMPOSSIBLE_LABEL = "no_such_element"


def _copy_twig(query: TwigQuery) -> TwigQuery:
    """Deep-copy a twig (query nodes are mutable)."""

    def copy_node(node: QueryNode) -> QueryNode:
        duplicate = QueryNode(node.name, node.edge, node.predicate)
        for child in node.children:
            duplicate.children.append(copy_node(child))
        return duplicate

    return TwigQuery(copy_node(query.root))


def _negate_predicates(twig: TwigQuery, domain_hi: int, rng: random.Random) -> bool:
    """Replace one value predicate with an unsatisfiable one."""
    candidates = [node for node in twig.nodes() if node.has_value_predicate]
    if not candidates:
        return False
    node = rng.choice(candidates)
    predicate = node.predicate
    if isinstance(predicate, RangePredicate):
        node.predicate = RangePredicate(domain_hi + 10, domain_hi + 20)
    elif isinstance(predicate, SubstringPredicate):
        node.predicate = SubstringPredicate(_IMPOSSIBLE_CHAR + predicate.needle)
    elif isinstance(predicate, KeywordPredicate):
        node.predicate = KeywordPredicate(
            list(predicate.terms) + [_IMPOSSIBLE_TERM]
        )
    else:
        return False
    return True


def _negate_structure(twig: TwigQuery, rng: random.Random) -> bool:
    """Attach a branch requiring a label that never occurs."""
    nodes = twig.nodes()
    owner = rng.choice(nodes[1:]) if len(nodes) > 1 else nodes[0]
    branch = QueryNode(
        "impossible",
        EdgePath((AxisStep("child", _IMPOSSIBLE_LABEL),)),
        TruePredicate(),
    )
    owner.add_child(branch)
    return True


def make_negative_workload(
    dataset: Dataset,
    positive: Workload,
    seed: int = 99,
    limit: Optional[int] = None,
    evaluator: Optional[ExactEvaluator] = None,
    engine: str = "interval",
) -> Workload:
    """Derive a verified zero-selectivity workload from ``positive``.

    Every mutated query is re-graded to certify it really is zero;
    pass a shared ``evaluator`` (or pick an ``engine``) the same way as
    :class:`TwigWorkloadGenerator`.
    """
    rng = random.Random(seed)
    stats = collect_statistics(dataset.tree)
    domain_hi = stats.numeric_domain[1] if stats.numeric_domain else 1
    if evaluator is None:
        evaluator = ExactEvaluator(dataset.tree, engine=engine)

    negatives: List[WorkloadQuery] = []
    for workload_query in positive.queries:
        if limit is not None and len(negatives) >= limit:
            break
        mutated = _copy_twig(workload_query.query)
        if workload_query.query_class is QueryClass.STRUCT:
            changed = _negate_structure(mutated, rng)
        else:
            changed = _negate_predicates(mutated, domain_hi, rng)
            if not changed:
                changed = _negate_structure(mutated, rng)
        if not changed:
            continue
        if evaluator.selectivity(mutated) != 0:
            continue  # mutation accidentally stayed satisfiable
        negatives.append(
            WorkloadQuery(mutated, 0, workload_query.query_class)
        )
    return Workload(f"{positive.name}-negative", negatives)

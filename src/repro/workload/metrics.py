"""The paper's evaluation metric (Section 6.1, "Evaluation Metric").

Accuracy is the *average absolute relative error* of result estimates:
for a query with true size ``c`` and estimate ``e``, the error is
``|c - e| / max(c, s)`` where the sanity bound ``s`` is the
10-percentile of the true counts in the workload (so 90% of queries have
true size at least ``s``, and tiny counts cannot dominate the average).

:func:`evaluate_synopsis` scores a synopsis over a classified workload
and returns an :class:`ErrorReport` with the Overall number plus the
per-class breakdown of Figure 8 and the low-count absolute errors of
Figure 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimation import estimate_many
from repro.core.synopsis import XClusterSynopsis
from repro.workload.generator import QueryClass, Workload, WorkloadQuery


def sanity_bound(true_counts: Sequence[int], percentile: float = 0.10) -> float:
    """The ``percentile`` quantile of the true counts (default: 10%)."""
    if not true_counts:
        return 1.0
    ordered = sorted(true_counts)
    index = min(len(ordered) - 1, max(0, math.ceil(percentile * len(ordered)) - 1))
    return float(max(1, ordered[index]))


def absolute_relative_error(true_count: float, estimate: float, bound: float) -> float:
    """``|c - e| / max(c, s)``."""
    return abs(true_count - estimate) / max(true_count, bound)


@dataclass
class ErrorReport:
    """Error breakdown of one synopsis over one workload.

    Attributes:
        overall: average relative error over every query.
        by_class: average relative error per :class:`QueryClass`.
        low_count_absolute: average absolute error of queries whose true
            size falls below the sanity bound, per class (Figure 9).
        low_count_true_mean: average true size of those low-count
            queries, per class.
        bound: the sanity bound used.
        query_count: workload size.
    """

    overall: float
    by_class: Dict[QueryClass, float]
    low_count_absolute: Dict[QueryClass, float]
    low_count_true_mean: Dict[QueryClass, float]
    bound: float
    query_count: int

    def class_error(self, query_class: QueryClass) -> float:
        """Average relative error of one class (NaN when class empty)."""
        return self.by_class.get(query_class, float("nan"))


def evaluate_estimates(
    pairs: Sequence[Tuple[WorkloadQuery, float]],
    bound: Optional[float] = None,
) -> ErrorReport:
    """Score pre-computed (query, estimate) pairs."""
    if not pairs:
        return ErrorReport(float("nan"), {}, {}, {}, 1.0, 0)
    if bound is None:
        bound = sanity_bound([wq.exact for wq, _ in pairs])

    errors: List[float] = []
    class_errors: Dict[QueryClass, List[float]] = {}
    low_absolute: Dict[QueryClass, List[float]] = {}
    low_true: Dict[QueryClass, List[float]] = {}
    for workload_query, estimate in pairs:
        error = absolute_relative_error(workload_query.exact, estimate, bound)
        errors.append(error)
        class_errors.setdefault(workload_query.query_class, []).append(error)
        if workload_query.exact < bound:
            low_absolute.setdefault(workload_query.query_class, []).append(
                abs(workload_query.exact - estimate)
            )
            low_true.setdefault(workload_query.query_class, []).append(
                float(workload_query.exact)
            )

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    return ErrorReport(
        overall=mean(errors),
        by_class={cls: mean(values) for cls, values in class_errors.items()},
        low_count_absolute={cls: mean(v) for cls, v in low_absolute.items()},
        low_count_true_mean={cls: mean(v) for cls, v in low_true.items()},
        bound=bound,
        query_count=len(pairs),
    )


def evaluate_synopsis(
    synopsis: XClusterSynopsis,
    workload: Workload,
    bound: Optional[float] = None,
    workers: int = 1,
) -> ErrorReport:
    """Estimate every workload query on ``synopsis`` and score it.

    Estimation runs on the compiled engine (:mod:`repro.core.estimation`);
    ``workers > 1`` shards the workload over a process pool.
    """
    estimates = estimate_many(
        synopsis, [wq.query for wq in workload.queries], workers=workers
    )
    pairs = list(zip(workload.queries, estimates))
    return evaluate_estimates(pairs, bound)

"""Workloads and the paper's evaluation metric (Section 6.1).

* :mod:`repro.workload.generator` — random *positive* twig queries
  (non-zero selectivity), sampled with a bias toward high-count paths,
  with value predicates attached at summarized nodes, stratified into
  the paper's reporting classes (Struct / Numeric / String / Text);
* :mod:`repro.workload.negative` — zero-selectivity variants used to
  verify that XClusters "consistently yield close to zero estimates";
* :mod:`repro.workload.metrics` — average absolute relative error with
  the 10-percentile *sanity bound*, plus the low-count absolute-error
  breakdown of Figure 9.
"""

from repro.workload.generator import (
    QueryClass,
    TwigWorkloadGenerator,
    Workload,
    WorkloadQuery,
    generate_workload,
)
from repro.workload.negative import make_negative_workload
from repro.workload.metrics import (
    ErrorReport,
    absolute_relative_error,
    evaluate_estimates,
    evaluate_synopsis,
    sanity_bound,
)

__all__ = [
    "QueryClass",
    "TwigWorkloadGenerator",
    "Workload",
    "WorkloadQuery",
    "generate_workload",
    "make_negative_workload",
    "ErrorReport",
    "absolute_relative_error",
    "evaluate_estimates",
    "evaluate_synopsis",
    "sanity_bound",
]

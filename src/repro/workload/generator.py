"""Random positive twig-query workloads (paper Section 6.1).

Queries are sampled with a bias toward high counts, mirroring the paper
("the sampling of paths and predicates is biased toward high-counts"):

* a random document *element* is drawn uniformly, so populous paths are
  proportionally more likely to anchor a query;
* its root-to-element label path becomes the query's main spine, with
  random steps compressed into descendant (``//``) axes;
* value predicates are drawn, with configurable probability, from the
  *most frequent* values on the target path — the top substrings of a
  path-wide suffix tree, the highest-document-frequency terms, wide
  numeric ranges — falling back to values of the sampled element (which
  exercises the low-count tail that Figure 9 reports on).

Two twig shapes are generated: *leaf-predicate* queries whose spine ends
at the valued element, and *branch-predicate* queries where the
predicate sits on a branch (``//movie[./year >= 2000]/cast/actor``) so
the estimate couples predicate selectivity with downstream structure —
the atomic ``u[p]/c`` pattern of the paper's Δ metric.

Each query gets a reporting class: ``STRUCT`` (no predicates), or
``NUMERIC`` / ``STRING`` / ``TEXT`` per its single predicate type (the
per-class series of Figure 8); ``MIXED`` is reserved for user-built
queries with several predicate types.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.dataset import Dataset
from repro.query.ast import AxisStep, EdgePath, QueryNode, TwigQuery
from repro.query.evaluator import ExactEvaluator
from repro.query.predicates import (
    KeywordPredicate,
    Predicate,
    RangePredicate,
    SubstringPredicate,
)
from repro.values.pst import PrunedSuffixTree
from repro.xmltree.paths import LabelPath, matches_any
from repro.xmltree.tree import XMLElement
from repro.xmltree.types import ValueType


class QueryClass(enum.Enum):
    """Reporting class of a workload query."""

    STRUCT = "struct"
    NUMERIC = "numeric"
    STRING = "string"
    TEXT = "text"
    MIXED = "mixed"


@dataclass
class WorkloadQuery:
    """A twig query with its ground-truth selectivity."""

    query: TwigQuery
    exact: int
    query_class: QueryClass


@dataclass
class Workload:
    """A collection of classified workload queries."""

    name: str
    queries: List[WorkloadQuery] = field(default_factory=list)

    def by_class(self, query_class: QueryClass) -> List[WorkloadQuery]:
        """The queries of one reporting class."""
        return [wq for wq in self.queries if wq.query_class is query_class]

    @property
    def structural_queries(self) -> List[WorkloadQuery]:
        return self.by_class(QueryClass.STRUCT)

    @property
    def predicate_queries(self) -> List[WorkloadQuery]:
        return [wq for wq in self.queries if wq.query_class is not QueryClass.STRUCT]

    def average_result_size(
        self, queries: Optional[Sequence[WorkloadQuery]] = None
    ) -> float:
        """Mean exact selectivity (Table 2's "Avg. Result Size")."""
        chosen = list(queries) if queries is not None else self.queries
        if not chosen:
            return 0.0
        return sum(wq.exact for wq in chosen) / len(chosen)

    def __len__(self) -> int:
        return len(self.queries)


@dataclass
class WorkloadConfig:
    """Workload-shape knobs."""

    #: Queries per predicate class (and for the structural class).
    queries_per_class: int = 25
    #: Probability of converting a spine step to the descendant axis.
    descendant_probability: float = 0.3
    #: Probability of attaching an extra structural branch.
    branch_probability: float = 0.4
    #: Probability of the branch-predicate twig shape (vs leaf-predicate).
    branch_predicate_probability: float = 0.45
    #: Probability of lifting a branch-predicate anchor one level higher
    #: (multi-level branches measure cross-level correlations).
    anchor_lift_probability: float = 0.5
    #: Probability of drawing the predicate from the high-count pool.
    high_count_bias: float = 0.7
    #: Maximum attempts at generating one positive query.
    max_attempts: int = 60
    #: Range-predicate half-width as a fraction of the value domain.
    numeric_width_fraction: float = 0.15
    #: Substring needle length bounds.
    substring_length: Tuple[int, int] = (3, 6)
    #: Fallback needles are redrawn (a few times) until they occur in at
    #: least this many strings on the path (the paper's high-count bias).
    min_needle_frequency: int = 3
    #: Probability of a second keyword in TEXT predicates (multi-term
    #: queries stress the Boolean-independence assumption of the model).
    second_keyword_probability: float = 0.3
    #: Size of the per-path frequent-substring / frequent-term pools.
    pool_size: int = 48


class _PathValuePool:
    """High-count predicate material for one concrete valued label path."""

    def __init__(
        self,
        value_type: ValueType,
        elements: List[XMLElement],
        config: WorkloadConfig,
    ) -> None:
        self.value_type = value_type
        self.elements = elements
        self.frequent_substrings: List[Tuple[str, int]] = []
        self.frequent_terms: List[Tuple[str, int]] = []
        self.substring_index: PrunedSuffixTree = None
        if value_type is ValueType.STRING:
            pst = PrunedSuffixTree.from_strings(
                (element.value for element in elements), max_depth=6
            )
            self.substring_index = pst
            self.frequent_substrings = [
                (substring, count)
                for substring, count in pst.top_substrings(config.pool_size * 3)
                if len(substring) >= 2
            ][: config.pool_size]
        elif value_type is ValueType.TEXT:
            frequency: Dict[str, int] = {}
            for element in elements:
                for term in element.value:
                    frequency[term] = frequency.get(term, 0) + 1
            ranked = sorted(frequency.items(), key=lambda item: (-item[1], item[0]))
            self.frequent_terms = ranked[: config.pool_size]


def _weighted_choice(
    rng: random.Random, items: List[Tuple[str, int]]
) -> str:
    total = sum(weight for _, weight in items)
    pick = rng.uniform(0, total)
    acc = 0.0
    for value, weight in items:
        acc += weight
        if acc >= pick:
            return value
    return items[-1][0]


class TwigWorkloadGenerator:
    """Generates classified positive twig workloads over one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        seed: int = 1234,
        config: Optional[WorkloadConfig] = None,
        evaluator: Optional[ExactEvaluator] = None,
        engine: str = "interval",
    ) -> None:
        self.dataset = dataset
        self.rng = random.Random(seed)
        self.config = config if config is not None else WorkloadConfig()
        # Grading thousands of candidate twigs dominates generation, so
        # the evaluator engine is a knob; a shared evaluator (e.g. the
        # experiments harness's) skips rebuilding the interval indexes.
        self.evaluator = (
            evaluator
            if evaluator is not None
            else ExactEvaluator(dataset.tree, engine=engine)
        )
        self._elements: List[XMLElement] = list(dataset.tree)

        self._valued_by_type: Dict[ValueType, List[XMLElement]] = {}
        by_path: Dict[LabelPath, List[XMLElement]] = {}
        for element in self._elements:
            if element.value_type is ValueType.NULL:
                continue
            path = element.label_path()
            if not matches_any(path, dataset.value_paths):
                continue
            self._valued_by_type.setdefault(element.value_type, []).append(element)
            by_path.setdefault(path, []).append(element)
        self._pools: Dict[LabelPath, _PathValuePool] = {
            path: _PathValuePool(members[0].value_type, members, self.config)
            for path, members in by_path.items()
        }
        self._numeric_domain = self._compute_numeric_domain()

    def _compute_numeric_domain(self) -> Tuple[int, int]:
        values = [
            element.value
            for element in self._valued_by_type.get(ValueType.NUMERIC, [])
        ]
        if not values:
            return (0, 1)
        return (min(values), max(values))

    # -- predicate construction ------------------------------------------------

    def _numeric_predicate(self, element: XMLElement) -> Predicate:
        lo, hi = self._numeric_domain
        width = max(1, round((hi - lo) * self.config.numeric_width_fraction))
        value = element.value
        if self.rng.random() < self.config.high_count_bias:
            # Wide, high-count ranges anchored at the element's value.
            width *= 2
        style = self.rng.random()
        if style < 0.4:
            return RangePredicate(
                value - self.rng.randint(0, width), value + self.rng.randint(0, width)
            )
        if style < 0.7:
            return RangePredicate(low=value - self.rng.randint(0, width))
        return RangePredicate(high=value + self.rng.randint(0, width))

    def _string_predicate(self, element: XMLElement) -> Predicate:
        pool = self._pools.get(element.label_path())
        if (
            pool is not None
            and pool.frequent_substrings
            and self.rng.random() < self.config.high_count_bias
        ):
            return SubstringPredicate(
                _weighted_choice(self.rng, pool.frequent_substrings)
            )
        # Fallback: a needle cut from the sampled element's own string.
        # Per the paper's high-count bias, prefer needles that also occur
        # elsewhere on the path (a handful of retries; the last draw is
        # kept regardless, so the low-count tail stays populated).
        text = element.value
        min_len, max_len = self.config.substring_length
        needle = text
        for _ in range(5):
            length = max(1, min(len(text), self.rng.randint(min_len, max_len)))
            start = self.rng.randint(0, len(text) - length)
            needle = text[start : start + length]
            if pool is None or pool.substring_index is None:
                break
            frequency = pool.substring_index.lookup(needle)
            if frequency is None or frequency >= self.config.min_needle_frequency:
                break
        return SubstringPredicate(needle)

    def _text_predicate(self, element: XMLElement) -> Predicate:
        wanted = 1
        if self.rng.random() < self.config.second_keyword_probability:
            wanted = 2
        pool = self._pools.get(element.label_path())
        if (
            pool is not None
            and pool.frequent_terms
            and self.rng.random() < self.config.high_count_bias
        ):
            terms = {
                _weighted_choice(self.rng, pool.frequent_terms)
                for _ in range(wanted)
            }
            return KeywordPredicate(terms)
        terms = sorted(element.value)
        count = min(len(terms), wanted)
        return KeywordPredicate(self.rng.sample(terms, count))

    def _predicate_for(self, element: XMLElement) -> Predicate:
        if element.value_type is ValueType.NUMERIC:
            return self._numeric_predicate(element)
        if element.value_type is ValueType.STRING:
            return self._string_predicate(element)
        if element.value_type is ValueType.TEXT:
            return self._text_predicate(element)
        raise ValueError(f"element {element.label} carries no value")

    # -- twig construction ----------------------------------------------------------

    def _spine_steps(
        self, path: LabelPath, protect_leaf: bool = False
    ) -> List[AxisStep]:
        """Convert a label path into axis steps, randomly compressing
        prefixes/infixes into descendant steps (never dropping the leaf).

        With ``protect_leaf`` the final step always uses the child axis:
        predicate-carrying variables must resolve to summarized clusters
        only (the paper's workload attaches predicates at synopsis nodes
        with values), and a trailing descendant step could also capture
        same-tag clusters outside the summarized paths.
        """
        steps: List[AxisStep] = []
        skipping = False
        for index, label in enumerate(path):
            last = index == len(path) - 1
            may_skip = not last and not (protect_leaf and index == len(path) - 2)
            if may_skip and self.rng.random() < self.config.descendant_probability:
                skipping = True
                continue
            axis = "descendant" if skipping else "child"
            steps.append(AxisStep(axis, label))
            skipping = False
        if skipping:
            steps.append(AxisStep("descendant", path[-1]))
        return steps

    def _chain(self, owner: QueryNode, steps: Sequence[AxisStep]) -> QueryNode:
        current = owner
        for step in steps:
            child = QueryNode(f"v{id(current)}", EdgePath((step,)))
            current.add_child(child)
            current = child
        return current

    def _random_descent(self, element: XMLElement) -> List[str]:
        """A random downward label walk from ``element`` (1-2 steps)."""
        labels: List[str] = []
        node = element
        for _ in range(self.rng.randint(1, 2)):
            if not node.children:
                break
            node = self.rng.choice(node.children)
            labels.append(node.label)
        return labels

    def _build_leaf_predicate_twig(
        self, target: XMLElement, predicate: Optional[Predicate]
    ) -> TwigQuery:
        """Spine ends at the valued element; predicate sits on the leaf."""
        twig = TwigQuery()
        leaf = self._chain(
            twig.root,
            self._spine_steps(target.label_path(), protect_leaf=predicate is not None),
        )
        if predicate is not None:
            leaf.predicate = predicate
        if self.rng.random() < self.config.branch_probability:
            anchor = target.parent if target.parent is not None else target
            parent_variable = self._variable_parent(twig, leaf)
            if parent_variable is not None:
                self._attach_structural_branch(parent_variable, anchor)
        return twig

    def _build_branch_predicate_twig(
        self, target: XMLElement, predicate: Predicate
    ) -> Optional[TwigQuery]:
        """Predicate on a branch; the main path continues elsewhere.

        Shape: ``//anchor[./.../valued-label pred]/sibling/...`` — the
        paper's atomic ``u[p]/c`` pattern, coupling a predicate with
        downstream structure.  The anchor is the valued element's parent
        or, with probability ``anchor_lift_probability``, a higher
        ancestor; lifted anchors yield queries like
        ``//movie[./cast/actor/name contains(X)]/plot`` whose accuracy
        hinges on path-to-value correlations across several levels.
        """
        anchor = target.parent
        if anchor is None:
            return None
        if (
            anchor.parent is not None
            and anchor.parent.parent is not None  # keep the anchor below the root
            and self.rng.random() < self.config.anchor_lift_probability
        ):
            anchor = anchor.parent
        # The label chain from the anchor down to the valued target.
        branch_labels: List[str] = []
        node = target
        while node is not anchor:
            branch_labels.append(node.label)
            node = node.parent
        branch_labels.reverse()
        siblings = [
            child for child in anchor.children if child.label != branch_labels[0]
        ]
        if not siblings:
            return None
        twig = TwigQuery()
        anchor_variable = self._chain(
            twig.root, self._spine_steps(anchor.label_path(), protect_leaf=True)
        )
        branch_leaf = self._chain(
            anchor_variable,
            [AxisStep("child", label) for label in branch_labels],
        )
        branch_leaf.predicate = predicate
        # Weight the continuation toward populous sibling subtrees: they
        # dominate the query's result size (high-count bias), and they
        # are where structure correlates with the predicate's values.
        weights = [sibling.subtree_size() for sibling in siblings]
        sibling_element = self.rng.choices(siblings, weights=weights, k=1)[0]
        continuation = [sibling_element.label]
        continuation.extend(self._random_descent(sibling_element))
        steps = [AxisStep("child", label) for label in continuation]
        self._chain(anchor_variable, steps)
        return twig

    def _attach_structural_branch(
        self, variable: QueryNode, element: XMLElement
    ) -> None:
        """Attach ``[./label]`` for a label actually under ``element``."""
        candidates = {child.label for child in element.children}
        if not candidates:
            return
        label = self.rng.choice(sorted(candidates))
        variable.add_child(
            QueryNode("branch", EdgePath((AxisStep("child", label),)))
        )

    @staticmethod
    def _variable_parent(twig: TwigQuery, leaf: QueryNode) -> Optional[QueryNode]:
        parent = None
        for node in twig.nodes():
            if leaf in node.children:
                parent = node
                break
        if parent is twig.root:
            return None
        return parent

    # -- query generation --------------------------------------------------------------

    def _generate_one(self, query_class: QueryClass) -> Optional[WorkloadQuery]:
        for _ in range(self.config.max_attempts):
            if query_class is QueryClass.STRUCT:
                target = self.rng.choice(self._elements)
                twig = self._build_leaf_predicate_twig(target, None)
            else:
                wanted = ValueType(query_class.value)
                pool = self._valued_by_type.get(wanted)
                if not pool:
                    return None
                target = self.rng.choice(pool)
                predicate = self._predicate_for(target)
                twig = None
                if self.rng.random() < self.config.branch_predicate_probability:
                    twig = self._build_branch_predicate_twig(target, predicate)
                if twig is None:
                    twig = self._build_leaf_predicate_twig(target, predicate)
            exact = self.evaluator.selectivity(twig)
            if exact > 0:
                return WorkloadQuery(twig, exact, query_class)
        return None

    def generate(self, queries_per_class: Optional[int] = None) -> Workload:
        """Generate the full stratified workload."""
        per_class = (
            queries_per_class
            if queries_per_class is not None
            else self.config.queries_per_class
        )
        workload = Workload(self.dataset.name)
        classes = [
            QueryClass.STRUCT,
            QueryClass.NUMERIC,
            QueryClass.STRING,
            QueryClass.TEXT,
        ]
        for query_class in classes:
            produced = 0
            while produced < per_class:
                generated = self._generate_one(query_class)
                if generated is None:
                    break
                workload.queries.append(generated)
                produced += 1
        return workload


def generate_workload(
    dataset: Dataset,
    queries_per_class: int = 25,
    seed: int = 1234,
    engine: str = "interval",
) -> Workload:
    """Convenience wrapper around :class:`TwigWorkloadGenerator`."""
    config = WorkloadConfig(queries_per_class=queries_per_class)
    return TwigWorkloadGenerator(dataset, seed, config, engine=engine).generate()

"""Shared name/word pools for the dataset generators.

Short STRING values (titles, person names, item names) are assembled
from these pools, so substring workloads have meaningful shared
substrings ("The", "Star", "son", ...) with non-trivial selectivities.
"""

from __future__ import annotations

import random
from typing import List, Sequence

_COMMON_FIRST: Sequence[str] = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Nikos",
    "Minos", "Yannis", "Neoklis", "Sofia", "Elena", "Marco", "Lucia",
    "Pierre", "Claire", "Hans", "Greta", "Akira", "Yuki", "Raj", "Priya",
)

_COMMON_LAST: Sequence[str] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Anderson", "Taylor", "Thomas",
    "Jackson", "White", "Harrison", "Martin", "Thompson", "Robinson",
    "Polyzotis", "Garofalakis", "Ioannidis", "Papadimitriou", "Stavros",
    "Nakamura", "Tanaka", "Gupta", "Patel", "Mueller", "Schneider",
)

_NAME_STEMS: Sequence[str] = (
    "Al", "Bar", "Cal", "Dor", "El", "Far", "Gar", "Hal", "Il", "Jor",
    "Kal", "Lor", "Mar", "Nor", "Or", "Par", "Quin", "Ros", "Sal", "Tor",
)
_NAME_MIDDLES: Sequence[str] = (
    "an", "ber", "den", "din", "go", "lan", "len", "mon", "ran", "ren",
    "son", "ten", "ti", "van", "vin", "wen",
)
_NAME_ENDINGS: Sequence[str] = (
    "a", "as", "ez", "i", "ino", "is", "o", "os", "ov", "sen", "ski", "son",
)


def _synthetic_names(count: int, offset: int) -> tuple:
    """Deterministic pool of pronounceable synthetic surnames.

    Real name collections are far more diverse than a handful of common
    names; a large pool keeps substring summaries from trivially indexing
    every distinct name, so pruned suffix trees face realistic pressure.
    """
    names = []
    index = offset
    while len(names) < count:
        stem = _NAME_STEMS[index % len(_NAME_STEMS)]
        middle = _NAME_MIDDLES[(index // len(_NAME_STEMS)) % len(_NAME_MIDDLES)]
        ending = _NAME_ENDINGS[
            (index // (len(_NAME_STEMS) * len(_NAME_MIDDLES))) % len(_NAME_ENDINGS)
        ]
        names.append(stem + middle + ending)
        index += 1
    return tuple(names)


FIRST_NAMES: Sequence[str] = _COMMON_FIRST + _synthetic_names(220, 0)
LAST_NAMES: Sequence[str] = _COMMON_LAST + _synthetic_names(800, 7)

TITLE_WORDS: Sequence[str] = (
    "The", "Star", "Dark", "Night", "Return", "Lost", "City", "Dream",
    "Last", "First", "Golden", "Silver", "Shadow", "Light", "Storm",
    "River", "Mountain", "Ocean", "Fire", "Ice", "Crown", "Empire",
    "Secret", "Hidden", "Broken", "Silent", "Crimson", "Winter",
    "Summer", "Midnight", "Eternal", "Forgotten", "Rising", "Falling",
)

GENRES: Sequence[str] = (
    "Action", "Comedy", "Drama", "Horror", "Romance", "Thriller",
    "Documentary", "Animation", "Fantasy", "ScienceFiction", "Western",
    "Mystery",
)

CITIES: Sequence[str] = (
    "Athens", "Berlin", "Cairo", "Denver", "Edinburgh", "Florence",
    "Geneva", "Helsinki", "Istanbul", "Jakarta", "Kyoto", "Lisbon",
    "Madrid", "Nairobi", "Oslo", "Prague", "Quito", "Rome", "Santiago",
    "Tokyo", "Utrecht", "Vienna", "Warsaw", "Zagreb",
)

EDUCATION_LEVELS: Sequence[str] = (
    "HighSchool", "College", "Graduate", "PostGraduate", "Other",
)

ITEM_ADJECTIVES: Sequence[str] = (
    "Vintage", "Antique", "Modern", "Rare", "Classic", "Deluxe", "Mini",
    "Grand", "Portable", "Handmade", "Refurbished", "Original",
)

ITEM_NOUNS: Sequence[str] = (
    "Clock", "Lamp", "Table", "Guitar", "Camera", "Watch", "Vase",
    "Mirror", "Radio", "Bicycle", "Painting", "Telescope", "Typewriter",
    "Globe", "Compass", "Chessboard",
)


def person_name(rng: random.Random) -> str:
    """A ``First Last`` person name."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def movie_title(rng: random.Random) -> str:
    """A 2-4 word title built from the shared title-word pool."""
    words: List[str] = ["The"] if rng.random() < 0.35 else []
    word_count = rng.randint(2, 4) - len(words)
    while len(words) < word_count + (1 if words else 0):
        word = rng.choice(TITLE_WORDS)
        if not words or words[-1] != word:
            words.append(word)
    return " ".join(words)


def item_name(rng: random.Random) -> str:
    """An auction item name like ``Vintage Brass Clock``."""
    return f"{rng.choice(ITEM_ADJECTIVES)} {rng.choice(ITEM_NOUNS)}"


def email_address(rng: random.Random) -> str:
    """A synthetic e-mail address for XMark people."""
    first = rng.choice(FIRST_NAMES).lower()
    last = rng.choice(LAST_NAMES).lower()
    host = rng.choice(("example.org", "mail.net", "auctions.com"))
    return f"{first}.{last}@{host}"

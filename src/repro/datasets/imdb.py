"""The IMDB-like movie dataset (substitute for the paper's IMDB subset).

The generated document mirrors the element vocabulary and value-type mix
of an IMDB export: movies and shows with STRING titles and person names,
NUMERIC years and ratings, and TEXT plot summaries.  The generator
builds in exactly the *path-to-value correlations* whose capture is
XCluster's selling point — the same tag carries different value
distributions in different structural contexts, so a tag-only summary
(the paper's 0 KB structural point) blends them and errs, while finer
structure-value clusterings separate them:

* ``title`` appears under movies, shows, and episodes with disjoint
  word pools;
* ``year`` under movies spans 1930-2005 (bimodal) but under shows only
  1985-2005;
* ``name`` under actors and directors draws from different name pools;
* ``plot`` text term distributions shift with genre, and episode plots
  use yet another region of the vocabulary;
* structure correlates with values: classic-era movies rarely have a
  plot and have smaller casts; Action/Fantasy movies have large casts.

Exactly 7 label paths carry value summaries, matching the paper's IMDB
configuration (§6.1).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.datasets.dataset import Dataset, LabelPath
from repro.datasets.names import FIRST_NAMES, GENRES, LAST_NAMES
from repro.datasets.text import ZipfTextGenerator
from repro.xmltree.tree import XMLElement, XMLTree

#: The 7 summarized value paths (paper §6.1: "7 paths for IMDB").
IMDB_VALUE_PATHS: List[LabelPath] = [
    ("imdb", "movie", "title"),
    ("imdb", "movie", "year"),
    ("imdb", "movie", "rating"),
    ("imdb", "movie", "plot"),
    ("imdb", "movie", "cast", "actor", "name"),
    ("imdb", "show", "title"),
    ("imdb", "show", "year"),
]

_PLOT_VOCABULARY_SIZE = 1500
_PLOT_MEAN_TERMS = 14

#: Disjoint title-word pools per context (shared tag, different values).
MOVIE_TITLE_WORDS: Sequence[str] = (
    "The", "Star", "Dark", "Night", "Return", "Lost", "City", "Dream",
    "Last", "Golden", "Shadow", "Storm", "Fire", "Crown", "Empire",
    "Secret", "Crimson", "Eternal", "Rising", "Legend",
)
SHOW_TITLE_WORDS: Sequence[str] = (
    "The", "Family", "Street", "Hospital", "Detective", "Office",
    "Kitchen", "Island", "Court", "Station", "Morning", "Tonight",
    "Live", "Weekly", "Files", "Tales",
)
EPISODE_TITLE_WORDS: Sequence[str] = (
    "Part", "Chapter", "Pilot", "Finale", "Beginnings", "Endings",
    "Reunion", "Secrets", "Revelations", "Crossroads", "Homecoming",
    "Fallout", "Aftermath", "Origins",
)

#: Actor and director names come from split name pools, and the actor
#: pool further splits into era cohorts: classic-era movies (which also
#: differ structurally — smaller casts, rarely a plot) credit a largely
#: different generation of actors than modern ones.  A structure-value
#: clustering can capture the correlation; a tag-level summary blends it.
_HALF_FIRST = len(FIRST_NAMES) // 2
_HALF_LAST = len(LAST_NAMES) // 2
ACTOR_FIRST = FIRST_NAMES[:_HALF_FIRST]
ACTOR_LAST = LAST_NAMES[:_HALF_LAST]
DIRECTOR_FIRST = FIRST_NAMES[_HALF_FIRST:]
DIRECTOR_LAST = LAST_NAMES[_HALF_LAST:]
CLASSIC_ACTOR_FIRST = ACTOR_FIRST[: _HALF_FIRST // 2]
CLASSIC_ACTOR_LAST = ACTOR_LAST[: _HALF_LAST // 2]
MODERN_ACTOR_FIRST = ACTOR_FIRST[_HALF_FIRST // 2 :]
MODERN_ACTOR_LAST = ACTOR_LAST[_HALF_LAST // 2 :]

#: Genre-specific title words mixed with the shared pool: Action titles
#: say "Storm" and "Fury", Romance titles say "Hearts" — another
#: structure-correlated value distribution (genre also drives cast size).
GENRE_TITLE_WORDS = {
    "Action": ("Storm", "Fury", "Strike", "Vengeance", "Blast"),
    "Comedy": ("Holiday", "Wedding", "Neighbors", "Trouble", "Mix"),
    "Drama": ("Letters", "Silence", "Inheritance", "Winter", "Promise"),
    "Horror": ("Haunting", "Grave", "Whispers", "Beneath", "Hollow"),
    "Romance": ("Hearts", "Kiss", "Paris", "Forever", "Moonlight"),
    "Thriller": ("Witness", "Hunt", "Deception", "Cipher", "Motive"),
    "Documentary": ("Voices", "Planet", "Untold", "Journey", "Archive"),
    "Animation": ("Adventures", "Kingdom", "Tiny", "Magic", "Friends"),
    "Fantasy": ("Dragon", "Sword", "Realm", "Prophecy", "Throne"),
    "ScienceFiction": ("Orbit", "Quantum", "Colony", "Signal", "Android"),
    "Western": ("Frontier", "Outlaw", "Canyon", "Dust", "Saddle"),
    "Mystery": ("Clue", "Vanishing", "Cold", "Riddle", "Locked"),
}

#: Per-genre rotation of the plot vocabulary: the same Zipf ranks map to
#: different concrete terms per genre, so plot term distributions are
#: genre-correlated while each stays heavy-tailed.
_GENRE_TERM_OFFSET = 97
_EPISODE_TERM_OFFSET = 53


def _title(rng: random.Random, words: Sequence[str]) -> str:
    chosen: List[str] = []
    for _ in range(rng.randint(2, 4)):
        word = rng.choice(words)
        if not chosen or chosen[-1] != word:
            chosen.append(word)
    return " ".join(chosen)


def _person(rng: random.Random, first: Sequence[str], last: Sequence[str]) -> str:
    return f"{rng.choice(first)} {rng.choice(last)}"


def _movie_year(rng: random.Random) -> int:
    """Bimodal years: a modern bulk and a classic-era mode."""
    if rng.random() < 0.65:
        return rng.randint(1990, 2005)
    if rng.random() < 0.5:
        return rng.randint(1930, 1955)
    return rng.randint(1956, 1989)


def _movie_rating(rng: random.Random, year: int, genre: str) -> int:
    base = 55 if year < 1980 else 66
    if genre in ("Documentary", "Drama"):
        base += 7
    if genre == "Horror":
        base -= 9
    return max(0, min(100, round(rng.gauss(base, 11))))


def _cast_size(rng: random.Random, genre: str, year: int) -> int:
    """Credited cast sizes, quantized to a few editorial conventions.

    Quantization keeps the count-stable partition from giving every cast
    cardinality its own class (real catalogs list casts in standard
    billing blocks), while preserving the genre/era correlation.
    """
    if genre in ("Action", "Fantasy", "ScienceFiction"):
        size = rng.choice((5, 8))
    elif genre == "Documentary":
        size = rng.choice((0, 2))
    else:
        size = rng.choice((2, 3, 5))
    if year < 1980 and size > 0:
        size = max(2, size - 3)
    return size


def _plot_terms(
    rng: random.Random, text: ZipfTextGenerator, offset: int, mean_terms: int
):
    """Sample a term set with the vocabulary rotated by ``offset``."""
    vocabulary = text.vocabulary
    base = text.sample_terms(rng, mean_terms)
    return frozenset(
        vocabulary[(text.index_of[term] + offset) % len(vocabulary)] for term in base
    )


def _movie_title_words(genre: str) -> Sequence[str]:
    return MOVIE_TITLE_WORDS + GENRE_TITLE_WORDS[genre] * 2


def _add_movie(
    parent: XMLElement, rng: random.Random, text: ZipfTextGenerator
) -> None:
    movie = parent.add("movie")
    genre_index = rng.randrange(len(GENRES))
    genre = GENRES[genre_index]
    year = _movie_year(rng)
    movie.add("title", _title(rng, _movie_title_words(genre)))
    movie.add("year", year)
    movie.add("rating", _movie_rating(rng, year, genre))
    movie.add("genre", genre)
    if rng.random() < 0.4:
        movie.add("genre", rng.choice(GENRES))
    # Classic-era movies rarely have digitized plot summaries.
    plot_probability = 0.2 if year < 1980 else 0.85
    if rng.random() < plot_probability:
        movie.add(
            "plot",
            _plot_terms(rng, text, genre_index * _GENRE_TERM_OFFSET, _PLOT_MEAN_TERMS),
        )
    cast_size = _cast_size(rng, genre, year)
    if cast_size > 0:
        cast = movie.add("cast")
        # Credited roles are a per-movie editorial property: either the
        # whole cast is credited or none of it (keeps the count-stable
        # partition from splitting every cast into its own class).
        credited = rng.random() < 0.5
        classic = year < 1980
        first_pool = CLASSIC_ACTOR_FIRST if classic else MODERN_ACTOR_FIRST
        last_pool = CLASSIC_ACTOR_LAST if classic else MODERN_ACTOR_LAST
        for _ in range(cast_size):
            actor = cast.add("actor")
            # A slice of careers spans both eras.
            if rng.random() < 0.15:
                actor.add("name", _person(rng, ACTOR_FIRST, ACTOR_LAST))
            else:
                actor.add("name", _person(rng, first_pool, last_pool))
            if credited:
                actor.add("role", _title(rng, _movie_title_words(genre)))
    director = movie.add("director")
    director.add("name", _person(rng, DIRECTOR_FIRST, DIRECTOR_LAST))


def _add_show(
    parent: XMLElement, rng: random.Random, text: ZipfTextGenerator
) -> None:
    show = parent.add("show")
    show.add("title", _title(rng, SHOW_TITLE_WORDS))
    show.add("year", rng.randint(1985, 2005))
    season_count = rng.randint(1, 5)
    show.add("seasons", season_count)
    # Whether episode plots were transcribed is a per-show property, and
    # shows run a fixed number of episodes per season.  Long-running
    # shows also produce longer seasons — a *correlated cardinality* that
    # a tag-level summary (which multiplies independent averages)
    # systematically misestimates.
    has_plots = rng.random() < 0.3
    episodes_per_season = season_count + rng.randint(1, 2)
    for _ in range(season_count):
        season = show.add("season")
        for _ in range(episodes_per_season):
            episode = season.add("episode")
            episode.add("title", _title(rng, EPISODE_TITLE_WORDS))
            if has_plots:
                episode.add(
                    "plot", _plot_terms(rng, text, _EPISODE_TERM_OFFSET, 8)
                )


def generate_imdb(scale: float = 1.0, seed: int = 42) -> Dataset:
    """Generate the IMDB-like dataset.

    Args:
        scale: 1.0 yields roughly 20k elements; element counts grow
            linearly with scale.
        seed: RNG seed; identical (scale, seed) pairs give identical
            documents.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)
    text = ZipfTextGenerator(_PLOT_VOCABULARY_SIZE, exponent=1.05)
    root = XMLElement("imdb")
    movie_count = max(1, round(700 * scale))
    show_count = max(1, round(120 * scale))
    for _ in range(movie_count):
        _add_movie(root, rng, text)
    for _ in range(show_count):
        _add_show(root, rng, text)
    return Dataset("imdb", XMLTree(root), list(IMDB_VALUE_PATHS))

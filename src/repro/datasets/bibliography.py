"""The bibliographic example document of the paper's Figure 1.

A tiny, hand-built tree used by the quickstart example and the unit
tests: authors with papers and books, mixing NUMERIC years, STRING
titles, and TEXT keywords/abstracts/forewords exactly as in the paper.
"""

from __future__ import annotations

from repro.datasets.dataset import Dataset
from repro.xmltree.tree import XMLElement, XMLTree


def bibliography_tree() -> Dataset:
    """Build the Figure 1 document (element ids in comments)."""
    root = XMLElement("dblp")  # d0

    author1 = root.add("author")  # a1
    author1.add("name", "Ann Author")  # n6
    paper2 = author1.add("paper")  # p2
    paper2.add("year", 2000)  # y3
    paper2.add("title", "Counting Twig Matches in a Tree")  # t4
    paper2.add("keywords", frozenset({"xml", "summary", "twig", "count"}))  # k5
    paper7 = author1.add("paper")  # p7
    paper7.add("year", 2002)  # y8
    paper7.add("title", "Holistic Twig Joins")  # t9
    paper7.add(
        "abstract",
        frozenset({"xml", "employs", "hierarchical", "model", "synopsis"}),
    )  # ab10

    author11 = root.add("author")  # a11
    author11.add("name", "Bob Writer")  # n12
    book13 = author11.add("book")  # b13
    book13.add("year", 2002)  # y14
    book13.add("title", "Database Systems in Depth")  # t15
    book13.add(
        "foreword",
        frozenset({"database", "systems", "have", "evolved", "greatly"}),
    )  # f16

    tree = XMLTree(root)
    value_paths = [
        ("dblp", "author", "name"),
        ("dblp", "author", "paper", "year"),
        ("dblp", "author", "paper", "title"),
        ("dblp", "author", "paper", "keywords"),
        ("dblp", "author", "paper", "abstract"),
        ("dblp", "author", "book", "year"),
        ("dblp", "author", "book", "title"),
        ("dblp", "author", "book", "foreword"),
    ]
    return Dataset("bibliography", tree, value_paths)

"""Zipfian free-text generation for TEXT element values.

Real document collections have heavy-tailed term distributions; XMark's
keyword predicates owe their very low selectivities to exactly this tail
(the cause of the paper's Figure 8(b) TEXT anomaly).
:class:`ZipfTextGenerator` samples term sets from a synthetic vocabulary
with Zipf-distributed term probabilities, so a handful of terms appear in
most texts while most terms are rare.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import FrozenSet, List, Optional, Sequence

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def synthetic_vocabulary(size: int) -> List[str]:
    """A deterministic list of pronounceable pseudo-words."""
    words = []
    syllables = [c + v for c, v in itertools.product(_CONSONANTS, _VOWELS)]
    for count in itertools.count(2):
        for combo in itertools.product(syllables, repeat=count):
            words.append("".join(combo))
            if len(words) >= size:
                return words
    raise AssertionError("unreachable")


class ZipfTextGenerator:
    """Samples Boolean term sets under a Zipf(s) term distribution.

    Attributes:
        vocabulary: the term list, most frequent first.
        exponent: the Zipf skew parameter ``s``.
    """

    def __init__(
        self,
        vocabulary_size: int = 2000,
        exponent: float = 1.1,
        vocabulary: Optional[Sequence[str]] = None,
    ) -> None:
        if vocabulary is not None:
            self.vocabulary = list(vocabulary)
        else:
            self.vocabulary = synthetic_vocabulary(vocabulary_size)
        if not self.vocabulary:
            raise ValueError("vocabulary must be non-empty")
        self.exponent = exponent
        self.index_of = {term: index for index, term in enumerate(self.vocabulary)}
        weights = [1.0 / (rank**exponent) for rank in range(1, len(self.vocabulary) + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample_term(self, rng: random.Random) -> str:
        """One term drawn from the Zipf distribution."""
        index = bisect.bisect_left(self._cumulative, rng.random())
        return self.vocabulary[min(index, len(self.vocabulary) - 1)]

    def sample_terms(self, rng: random.Random, mean_terms: int) -> FrozenSet[str]:
        """A term set whose size is roughly Poisson around ``mean_terms``."""
        if mean_terms < 1:
            raise ValueError("mean_terms must be >= 1")
        size = max(1, round(rng.gauss(mean_terms, mean_terms**0.5)))
        terms = set()
        attempts = 0
        while len(terms) < size and attempts < size * 8:
            terms.add(self.sample_term(rng))
            attempts += 1
        return frozenset(terms)

    def frequent_terms(self, count: int) -> List[str]:
        """The ``count`` most probable terms (for workload construction)."""
        return self.vocabulary[:count]

    def rare_terms(self, count: int) -> List[str]:
        """The ``count`` least probable terms."""
        return self.vocabulary[-count:]

"""The XMark-like auction dataset (substitute for the XMark benchmark).

Follows the published XMark DTD shape: a ``site`` with six *named*
geographic regions (``africa`` ... ``samerica``) holding ``item``
listings, a ``people`` section, and open and closed auctions.  As in the
IMDB generator, the same tag carries context-dependent value
distributions, giving XCluster's structure-value clustering real
correlations to preserve:

* ``price`` under European/North-American items skews expensive, under
  African/South-American items cheap; ``price`` under closed auctions
  follows yet another distribution;
* ``description`` TEXT under items is region-rotated Zipfian text, while
  ``description`` under auction annotations uses a different vocabulary
  region;
* ``name`` under items versus persons draws from different pools.

TEXT descriptions draw from a large (4k-term) Zipfian vocabulary, so
most individual keywords are rare — reproducing the very-low-selectivity
TEXT predicates behind the paper's Figure 8(b) anomaly.  The 9
(wildcarded) summarized value paths match the paper's §6.1 count.
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets.dataset import Dataset, LabelPath
from repro.datasets.names import (
    CITIES,
    EDUCATION_LEVELS,
    email_address,
    item_name,
    person_name,
)
from repro.datasets.text import ZipfTextGenerator
from repro.xmltree.tree import XMLElement, XMLTree

#: The 9 summarized value paths (paper §6.1: "9 for XMark").  The ``*``
#: wildcard segment covers the six region elements.
XMARK_VALUE_PATHS: List[LabelPath] = [
    ("site", "regions", "*", "item", "name"),
    ("site", "regions", "*", "item", "price"),
    ("site", "regions", "*", "item", "description"),
    ("site", "people", "person", "name"),
    ("site", "people", "person", "profile", "age"),
    ("site", "open_auctions", "open_auction", "current"),
    ("site", "open_auctions", "open_auction", "bidder", "increase"),
    ("site", "open_auctions", "open_auction", "annotation", "description"),
    ("site", "closed_auctions", "closed_auction", "price"),
]

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
#: Listing volume per region, mirroring XMark's uneven region sizes.
_REGION_WEIGHTS = {
    "africa": 0.06,
    "asia": 0.22,
    "australia": 0.06,
    "europe": 0.30,
    "namerica": 0.30,
    "samerica": 0.06,
}
#: Price magnitude range (log10) per region: rich regions list dear items.
_REGION_PRICE_MAGNITUDE = {
    "africa": (0.3, 2.2),
    "asia": (0.5, 3.0),
    "australia": (0.5, 3.0),
    "europe": (1.0, 4.0),
    "namerica": (1.0, 4.0),
    "samerica": (0.3, 2.2),
}
#: Vocabulary rotation per region for item descriptions.
_REGION_TERM_OFFSET = {name: 211 * index for index, name in enumerate(_REGIONS)}
_ANNOTATION_TERM_OFFSET = 1733

_DESCRIPTION_VOCABULARY_SIZE = 4000
_DESCRIPTION_MEAN_TERMS = 18


def _rotated_terms(
    rng: random.Random, text: ZipfTextGenerator, offset: int, mean_terms: int
):
    vocabulary = text.vocabulary
    base = text.sample_terms(rng, mean_terms)
    return frozenset(
        vocabulary[(text.index_of[term] + offset) % len(vocabulary)] for term in base
    )


def _price(rng: random.Random, magnitude_range) -> int:
    low, high = magnitude_range
    return max(1, round(10 ** rng.uniform(low, high)))


def _add_item(
    region: XMLElement,
    region_name: str,
    rng: random.Random,
    text: ZipfTextGenerator,
) -> None:
    item = region.add("item")
    item.add("name", item_name(rng))
    price = _price(rng, _REGION_PRICE_MAGNITUDE[region_name])
    item.add("price", price)
    item.add("quantity", rng.randint(1, 10))
    item.add(
        "description",
        _rotated_terms(rng, text, _REGION_TERM_OFFSET[region_name], _DESCRIPTION_MEAN_TERMS),
    )
    item.add("location", rng.choice(CITIES))
    # Pricey items attract correspondence.
    mailbox_probability = 0.55 if price > 500 else 0.2
    if rng.random() < mailbox_probability:
        mailbox = item.add("mailbox")
        for _ in range(rng.randint(1, 3)):
            mail = mailbox.add("mail")
            mail.add("from", person_name(rng))
            mail.add("date", rng.randint(1998, 2005))


def _add_person(
    people: XMLElement, rng: random.Random, text: ZipfTextGenerator
) -> None:
    person = people.add("person")
    person.add("name", person_name(rng))
    person.add("emailaddress", email_address(rng))
    if rng.random() < 0.6:
        profile = person.add("profile")
        # Ages cluster in two cohorts, as in XMark's profile skew.
        age = rng.randint(18, 35) if rng.random() < 0.65 else rng.randint(36, 80)
        profile.add("age", age)
        profile.add("education", rng.choice(EDUCATION_LEVELS))
        for _ in range(rng.randint(0, 3)):
            profile.add("interest", rng.choice(CITIES))
    if rng.random() < 0.35:
        person.add("homepage", email_address(rng))


def _add_open_auction(
    auctions: XMLElement, rng: random.Random, text: ZipfTextGenerator
) -> None:
    auction = auctions.add("open_auction")
    initial = _price(rng, (0.5, 3.5))
    auction.add("initial", initial)
    # Cheap listings attract bargain hunters: more bidders, small raises.
    bid_count = rng.randint(2, 8) if initial < 100 else rng.randint(0, 4)
    current = initial
    for _ in range(bid_count):
        bidder = auction.add("bidder")
        increase = rng.randint(1, max(2, initial // 4))
        bidder.add("increase", increase)
        bidder.add("personref", person_name(rng))
        current += increase
    auction.add("current", current)
    annotation = auction.add("annotation")
    annotation.add(
        "description", _rotated_terms(rng, text, _ANNOTATION_TERM_OFFSET, 10)
    )
    auction.add("itemref", rng.choice(_REGIONS))


def _add_closed_auction(
    auctions: XMLElement, rng: random.Random, text: ZipfTextGenerator
) -> None:
    auction = auctions.add("closed_auction")
    # Closed (sold) prices skew higher than open listings.
    auction.add("price", _price(rng, (1.5, 4.0)))
    auction.add("buyer", person_name(rng))
    if rng.random() < 0.5:
        annotation = auction.add("annotation")
        annotation.add(
            "description", _rotated_terms(rng, text, _ANNOTATION_TERM_OFFSET, 10)
        )


def generate_xmark(scale: float = 1.0, seed: int = 7) -> Dataset:
    """Generate the XMark-like dataset.

    Args:
        scale: 1.0 yields roughly 20k elements, growing linearly.
        seed: RNG seed for deterministic output.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)
    text = ZipfTextGenerator(_DESCRIPTION_VOCABULARY_SIZE, exponent=1.15)
    root = XMLElement("site")

    regions = root.add("regions")
    item_total = max(6, round(900 * scale))
    for region_name in _REGIONS:
        region = regions.add(region_name)
        count = max(1, round(item_total * _REGION_WEIGHTS[region_name]))
        for _ in range(count):
            _add_item(region, region_name, rng, text)

    people = root.add("people")
    for _ in range(max(1, round(500 * scale))):
        _add_person(people, rng, text)

    open_auctions = root.add("open_auctions")
    for _ in range(max(1, round(300 * scale))):
        _add_open_auction(open_auctions, rng, text)

    closed_auctions = root.add("closed_auctions")
    for _ in range(max(1, round(200 * scale))):
        _add_closed_auction(closed_auctions, rng, text)

    return Dataset("xmark", XMLTree(root), list(XMARK_VALUE_PATHS))

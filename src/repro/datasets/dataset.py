"""The dataset container shared by generators, workloads, and benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.xmltree.tree import XMLTree

from repro.xmltree.paths import LabelPath, matches_any, path_matches

__all__ = ["Dataset", "LabelPath", "matches_any", "path_matches"]


@dataclass
class Dataset:
    """A generated document plus its experiment metadata.

    Attributes:
        name: dataset identifier ("imdb", "xmark", ...).
        tree: the document.
        value_paths: the label paths under which the reference synopsis
            builds value summaries (7 for IMDB, 9 for XMark; paper §6.1).
    """

    name: str
    tree: XMLTree
    value_paths: List[LabelPath]

    @property
    def element_count(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.name!r}, elements={self.element_count}, "
            f"value_paths={len(self.value_paths)})"
        )

"""Synthetic datasets standing in for the paper's evaluation corpora.

The paper evaluates on a subset of the real-life IMDB data set and the
XMark synthetic benchmark (Section 6.1, Table 1).  Neither corpus ships
with this reproduction, so deterministic generators rebuild documents
with the same element vocabulary, value-type mix, and skew profile:

* :func:`generate_imdb` — a movie database with STRING titles and names,
  NUMERIC years and ratings, and TEXT plot summaries, with built-in
  structure/value correlations (era vs. rating, genre vs. cast size);
* :func:`generate_xmark` — an auction site following the published XMark
  DTD shape (regions/items, people, open and closed auctions) whose TEXT
  descriptions draw from a large Zipfian vocabulary, reproducing XMark's
  very-low-selectivity keyword predicates;
* :func:`bibliography_tree` — the small bibliographic document of the
  paper's Figure 1, for examples and tests.

All generators are pure functions of ``(scale, seed)``.
"""

from repro.datasets.dataset import Dataset
from repro.datasets.imdb import IMDB_VALUE_PATHS, generate_imdb
from repro.datasets.xmark import XMARK_VALUE_PATHS, generate_xmark
from repro.datasets.bibliography import bibliography_tree
from repro.datasets.text import ZipfTextGenerator

__all__ = [
    "Dataset",
    "generate_imdb",
    "IMDB_VALUE_PATHS",
    "generate_xmark",
    "XMARK_VALUE_PATHS",
    "bibliography_tree",
    "ZipfTextGenerator",
]

"""The versioned collection manifest and its typed error contract.

A collection is a directory: per-shard snapshot containers under
``shards/``, per-structure reference snapshots under ``refs/``, an
optional materialized rollup snapshot, and one ``manifest.json`` tying
them together.  The manifest is the collection's root of trust — every
open starts by loading it, and every build/rebalance rewrites it
**atomically** (write to a temporary sibling, ``fsync``, ``rename``) so
a crash mid-write leaves either the old manifest or the new one, never
a torn file.

Each shard entry records the container's content hash (sha256 of the
file bytes), so :func:`verify_collection` can detect truncated or
bit-rotted containers before a single payload is decoded.  Every
failure mode — missing manifest, torn JSON, wrong types, missing shard
file, hash mismatch — raises :class:`CollectionFormatError`, never a
raw ``KeyError``/``json.JSONDecodeError``/``struct.error``; this is the
same contract :mod:`repro.core.snapshot` keeps with
``SynopsisFormatError``, lifted to the directory level.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Bump when a manifest field is added, removed, or retyped.
MANIFEST_FORMAT = 1

MANIFEST_FILENAME = "manifest.json"
SHARD_DIRNAME = "shards"
REFS_DIRNAME = "refs"
ROLLUP_FILENAME = "rollup.snap"


class CollectionFormatError(ValueError):
    """A collection directory is malformed, torn, or inconsistent."""


def sha256_hex(data: bytes) -> str:
    """The content hash used throughout the collection tier."""
    return hashlib.sha256(data).hexdigest()


def hash_file(path: str) -> str:
    """sha256 of a file's bytes (streamed, so containers can be large)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory tmp + rename.

    The rename is atomic on POSIX, so readers racing a rebuild see
    either the previous file or the complete new one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


@dataclass
class ShardEntry:
    """One shard's manifest record.

    Attributes:
        shard_id: dense shard index in ``[0, shard_count)``.
        path: container path relative to the collection root.
        content_hash: sha256 of the container file bytes.
        documents: documents routed to this shard.
        distinct: distinct document structures (payload synopses).
        elements: total elements across the shard's distinct structures.
        budget: synopsis bytes attributed to this shard (the sum of its
            payload ``B_str + B_val`` budgets).
        multiplier: the workload heat multiplier its budgets were built
            with (1.0 under uniform allocation).
    """

    shard_id: int
    path: str
    content_hash: str
    documents: int
    distinct: int
    elements: int
    budget: int
    multiplier: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of this shard entry."""
        return {
            "shard_id": self.shard_id,
            "path": self.path,
            "content_hash": self.content_hash,
            "documents": self.documents,
            "distinct": self.distinct,
            "elements": self.elements,
            "budget": self.budget,
            "multiplier": self.multiplier,
        }


@dataclass
class CollectionManifest:
    """The collection's versioned root record.

    ``version`` counts rebuilds: every :func:`save_manifest` after a
    build or rebalance writes ``version + 1``, so serving tiers (and
    the stats CLI) can tell stale snapshots of the directory apart.
    """

    shard_count: int
    total_budget: int
    structural_share: float
    compressed: bool
    shards: List[ShardEntry] = field(default_factory=list)
    refs: Dict[str, str] = field(default_factory=dict)
    rollup_path: Optional[str] = None
    rollup_hash: Optional[str] = None
    version: int = 1
    manifest_format: int = MANIFEST_FORMAT

    @property
    def documents(self) -> int:
        return sum(entry.documents for entry in self.shards)

    @property
    def budgets(self) -> List[int]:
        """Per-shard attributed budgets, in shard-id order."""
        return [entry.budget for entry in sorted(self.shards, key=lambda e: e.shard_id)]

    def shard(self, shard_id: int) -> ShardEntry:
        """The entry for one shard id (typed error if absent)."""
        for entry in self.shards:
            if entry.shard_id == shard_id:
                return entry
        raise CollectionFormatError(f"manifest has no shard {shard_id}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of the whole manifest."""
        return {
            "manifest_format": self.manifest_format,
            "version": self.version,
            "shard_count": self.shard_count,
            "total_budget": self.total_budget,
            "structural_share": self.structural_share,
            "compressed": self.compressed,
            "shards": [entry.to_dict() for entry in self.shards],
            "refs": dict(sorted(self.refs.items())),
            "rollup_path": self.rollup_path,
            "rollup_hash": self.rollup_hash,
        }


_SHARD_FIELDS = {
    "shard_id": int,
    "path": str,
    "content_hash": str,
    "documents": int,
    "distinct": int,
    "elements": int,
    "budget": int,
    "multiplier": (int, float),
}

_MANIFEST_FIELDS = {
    "manifest_format": int,
    "version": int,
    "shard_count": int,
    "total_budget": int,
    "structural_share": (int, float),
    "compressed": bool,
    "shards": list,
    "refs": dict,
}


def _typed(mapping: Dict[str, Any], name: str, expected, where: str):
    if name not in mapping:
        raise CollectionFormatError(f"{where} is missing field {name!r}")
    value = mapping[name]
    if isinstance(value, bool) and expected is not bool and bool not in (
        expected if isinstance(expected, tuple) else (expected,)
    ):
        raise CollectionFormatError(f"{where} field {name!r} is a bool")
    if not isinstance(value, expected):
        raise CollectionFormatError(
            f"{where} field {name!r} is {type(value).__name__}"
        )
    return value


def manifest_from_dict(payload: Any) -> CollectionManifest:
    """Decode and validate a manifest dictionary."""
    if not isinstance(payload, dict):
        raise CollectionFormatError(
            f"manifest is {type(payload).__name__}, expected an object"
        )
    for name, expected in _MANIFEST_FIELDS.items():
        _typed(payload, name, expected, "manifest")
    if payload["manifest_format"] != MANIFEST_FORMAT:
        raise CollectionFormatError(
            f"manifest format {payload['manifest_format']} is not "
            f"{MANIFEST_FORMAT}"
        )
    shards: List[ShardEntry] = []
    for index, entry in enumerate(payload["shards"]):
        if not isinstance(entry, dict):
            raise CollectionFormatError(f"shard entry {index} is not an object")
        where = f"shard entry {index}"
        values = {
            name: _typed(entry, name, expected, where)
            for name, expected in _SHARD_FIELDS.items()
        }
        shards.append(ShardEntry(**values))
    seen = {entry.shard_id for entry in shards}
    if len(seen) != len(shards):
        raise CollectionFormatError("manifest repeats a shard id")
    for entry in shards:
        if not 0 <= entry.shard_id < payload["shard_count"]:
            raise CollectionFormatError(
                f"shard id {entry.shard_id} outside "
                f"[0, {payload['shard_count']})"
            )
    refs = payload["refs"]
    for key, value in refs.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise CollectionFormatError("manifest refs must map str -> str")
    rollup_path = payload.get("rollup_path")
    rollup_hash = payload.get("rollup_hash")
    if rollup_path is not None and not isinstance(rollup_path, str):
        raise CollectionFormatError("manifest rollup_path must be a string")
    if rollup_hash is not None and not isinstance(rollup_hash, str):
        raise CollectionFormatError("manifest rollup_hash must be a string")
    return CollectionManifest(
        shard_count=payload["shard_count"],
        total_budget=payload["total_budget"],
        structural_share=float(payload["structural_share"]),
        compressed=payload["compressed"],
        shards=shards,
        refs=dict(refs),
        rollup_path=rollup_path,
        rollup_hash=rollup_hash,
        version=payload["version"],
        manifest_format=payload["manifest_format"],
    )


def load_manifest(root: str) -> CollectionManifest:
    """Load and validate ``root/manifest.json``.

    Raises :class:`CollectionFormatError` for a missing directory or
    manifest, torn/truncated JSON, or any schema violation.
    """
    path = os.path.join(root, MANIFEST_FILENAME)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as err:
        raise CollectionFormatError(
            f"{root} has no readable collection manifest: {err}"
        ) from err
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise CollectionFormatError(
            f"manifest at {path} is not valid JSON (torn write?): {err}"
        ) from err
    return manifest_from_dict(payload)


def save_manifest(root: str, manifest: CollectionManifest) -> str:
    """Atomically write the manifest; returns its path."""
    path = os.path.join(root, MANIFEST_FILENAME)
    data = json.dumps(manifest.to_dict(), indent=2, sort_keys=True).encode(
        "utf-8"
    )
    atomic_write(path, data + b"\n")
    return path


def verify_collection(root: str, manifest: Optional[CollectionManifest] = None) -> CollectionManifest:
    """Check every file the manifest references exists and hash-matches.

    This is the partial-write recovery gate: a crash between container
    writes and the manifest rename leaves either a manifest referencing
    only fully written files (rename happened last) or the previous
    manifest (rename never happened); any other combination — missing
    shard container, truncated container, stale bytes — fails here with
    a typed error naming the offending file.
    """
    if manifest is None:
        manifest = load_manifest(root)
    for entry in manifest.shards:
        path = os.path.join(root, entry.path)
        if not os.path.isfile(path):
            raise CollectionFormatError(
                f"shard {entry.shard_id} container {entry.path} is missing"
            )
        actual = hash_file(path)
        if actual != entry.content_hash:
            raise CollectionFormatError(
                f"shard {entry.shard_id} container {entry.path} hash "
                f"mismatch: manifest {entry.content_hash[:12]}…, "
                f"file {actual[:12]}…"
            )
    for content_hash, ref_path in manifest.refs.items():
        path = os.path.join(root, ref_path)
        if not os.path.isfile(path):
            raise CollectionFormatError(
                f"reference snapshot {ref_path} for structure "
                f"{content_hash[:12]}… is missing"
            )
    if manifest.rollup_path is not None:
        path = os.path.join(root, manifest.rollup_path)
        if not os.path.isfile(path):
            raise CollectionFormatError(
                f"rollup snapshot {manifest.rollup_path} is missing"
            )
        if manifest.rollup_hash is not None:
            actual = hash_file(path)
            if actual != manifest.rollup_hash:
                raise CollectionFormatError(
                    f"rollup snapshot hash mismatch: manifest "
                    f"{manifest.rollup_hash[:12]}…, file {actual[:12]}…"
                )
    return manifest

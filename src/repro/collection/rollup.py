"""The merged global rollup synopsis and the merged-document oracle.

Two rollup semantics coexist in the collection tier, and they serve
different masters:

* **Exact sum** (``CollectionStore.estimate_collection``): a twig's
  collection-wide selectivity is the multiplicity-weighted sum of its
  per-structure estimates.  For structural queries this is *exactly*
  additive — each document contributes its own matches and a reference
  synopsis is exact on branching path queries — so the sum equals the
  estimate a monolithic synopsis over the merged document would give,
  which is the parity the harness and benchmarks assert to zero drift.
* **Merged rollup synopsis** (:func:`merge_rollup`): one small graph
  answering cross-collection questions without touching any shard.  It
  is the multiplicity-scaled union of every distinct payload graph with
  all the root clusters fused through the paper's ``merge`` operation
  (weighted-average outgoing / summed incoming edge counts), value
  summaries dropped — a *structural* rollup.  Estimates against it are
  per average document (the estimator anchors one virtual root above
  the fused root cluster), so the store scales them by the root count.
  This path is approximate: fusing roots mixes the per-structure child
  distributions, exactly like any synopsis merge; its error is
  recorded by the benchmark, never asserted.

:func:`merged_document_events` is the oracle's substrate: it splices
the token streams of many single-root documents under the first
document's root element, producing the event stream of the one big
document a monolithic build would have summarized.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.synopsis import SynopsisNode, XClusterSynopsis
from repro.xmltree.events import END, START, iter_events


def merged_document_events(sources: Iterable[str]) -> Iterator[tuple]:
    """Token stream of all ``sources`` merged under one shared root.

    Every source document's children are re-parented under the first
    document's root element; the merged stream is exactly what a
    monolithic ingest of the concatenated collection would see.  All
    sources must have the same root label (the stream would otherwise
    describe a different collection than the per-document builds).
    """
    first = True
    root_label: Optional[str] = None
    for xml in sources:
        events = iter_events(xml)
        try:
            event = next(events)
        except StopIteration:  # pragma: no cover - empty source
            continue
        if event[0] != START:  # pragma: no cover - tokenizer contract
            raise ValueError("document stream does not open with an element")
        if first:
            root_label = event[1]
            yield event
            first = False
        elif event[1] != root_label:
            raise ValueError(
                f"cannot merge root {event[1]!r} under root {root_label!r}"
            )
        depth = 1
        for event in events:
            if event[0] == START:
                depth += 1
            elif event[0] == END:
                depth -= 1
                if depth == 0:
                    break
            yield event
    if root_label is not None:
        yield (END, root_label)


def merge_rollup(
    payloads: Sequence[Tuple[XClusterSynopsis, int]]
) -> Optional[XClusterSynopsis]:
    """Fuse distinct payload synopses into one collection-wide graph.

    Args:
        payloads: ``(synopsis, multiplicity)`` pairs, one per distinct
            structure (each synopsis is left untouched).

    Returns:
        The rollup synopsis, or ``None`` when the payload roots are not
        merge-compatible (different labels or value types) — a
        collection of heterogeneous corpora keeps only the exact-sum
        path, and the manifest records no rollup.

    Every node is copied with ``count × multiplicity`` (edge averages
    are per-parent and unaffected by scaling); value summaries are
    dropped — their internal counts cannot be scaled without re-reading
    the values, so the rollup answers structural questions only.  Root
    clusters are then fused pairwise with
    :meth:`~repro.core.synopsis.XClusterSynopsis.merge_nodes`, whose
    count-weighted edge semantics make the fused root's child averages
    the document-weighted mean across structures.
    """
    pairs = [(synopsis, multiplicity) for synopsis, multiplicity in payloads]
    if not pairs:
        return None
    root_keys = set()
    for synopsis, _ in pairs:
        if synopsis.root_id is None:
            return None
        root_keys.add(synopsis.root.merge_key())
    if len(root_keys) != 1:
        return None

    rollup = XClusterSynopsis()
    root_ids: List[int] = []
    for synopsis, multiplicity in pairs:
        id_map = {}
        for node in sorted(synopsis, key=lambda n: n.node_id):
            copied = rollup.add_node(
                node.label, node.value_type, node.count * multiplicity, None
            )
            id_map[node.node_id] = copied
        for node in sorted(synopsis, key=lambda n: n.node_id):
            for child_id in sorted(node.children):
                rollup.add_edge(
                    id_map[node.node_id],
                    id_map[child_id],
                    node.children[child_id],
                )
        root_ids.append(id_map[synopsis.root_id].node_id)

    rollup.set_root(rollup.node(root_ids[0]))
    merged_root = root_ids[0]
    for other in root_ids[1:]:
        merged_root = rollup.merge_nodes(merged_root, other).node_id
    rollup.set_root(rollup.node(merged_root))
    return rollup

"""Directory-of-snapshots collection store (multi-document serving).

The collection tier generalizes the single-snapshot serving story to a
corpus: documents are routed to shards by a stable content-independent
hash of their id, each shard keeps one mmap-able container of snapshot
payloads (deduplicated by document content hash), a versioned JSON
manifest ties the directory together, and a merged rollup synopsis
answers cross-collection questions without opening any shard.

Modules:
    manifest  — the versioned manifest, atomic writes, typed errors.
    store     — shard container format, readers, the LRU'd store.
    build     — parallel dedup build and workload-driven rebalance.
    budget    — query-log clustering and bytes-conserving multipliers.
    rollup    — merged rollup synopsis and the merged-document oracle.
    export    — edge-model CSV dump.
"""

from repro.collection.budget import (
    ClusteredLog,
    QueryCluster,
    autobudget_sample,
    cluster_log,
    shard_multipliers,
)
from repro.collection.build import (
    BuildReport,
    CollectionConfig,
    build_collection,
    rebalance_collection,
)
from repro.collection.export import export_edge_model
from repro.collection.manifest import (
    CollectionFormatError,
    CollectionManifest,
    ShardEntry,
    load_manifest,
    save_manifest,
    verify_collection,
)
from repro.collection.rollup import merge_rollup, merged_document_events
from repro.collection.store import (
    CollectionStore,
    ShardReader,
    shard_for_doc,
)

__all__ = [
    "BuildReport",
    "ClusteredLog",
    "CollectionConfig",
    "CollectionFormatError",
    "CollectionManifest",
    "CollectionStore",
    "QueryCluster",
    "ShardEntry",
    "ShardReader",
    "autobudget_sample",
    "build_collection",
    "cluster_log",
    "export_edge_model",
    "load_manifest",
    "merge_rollup",
    "merged_document_events",
    "rebalance_collection",
    "save_manifest",
    "shard_for_doc",
    "shard_multipliers",
    "verify_collection",
]

"""Collection build and rebalance pipelines.

The naive way to summarize N documents is N independent runs of the
single-document pipeline: parse, derive the reference synopsis,
compress, serialize — per document, serially.  Real collections are
template-repetitive (the same catalog entry, log record, or listing
shape stamped out thousands of times), and the whole single-document
stack is deterministic, so the collection build exploits that head-on:

1. **content-hash dedup** — documents are grouped by the sha256 of
   their bytes; each *distinct structure* is ingested (columnar,
   byte-tokenizer), summarized, and compressed exactly once per budget
   variant, however many documents share it.  Under uniform budgets a
   structure's budget depends only on its own element count, so the
   build cache dedups across shards too;
2. **parallel fan-out** — distinct structures are independent, so they
   shard over :func:`repro.core.parallel.pool_context` when
   ``workers > 1`` (fork → spawn → serial fallback; the report records
   what actually ran);
3. **snapshot encode** — payloads are binary snapshots, packed into
   per-shard containers, so serving opens one mmap per shard instead
   of N files.

Both pipelines end the same way: containers and reference snapshots
written atomically, then the manifest (version bumped) renamed into
place last — the commit point.

:func:`rebalance_collection` is the workload-driven half: it clusters
the observed query log (:mod:`repro.collection.budget`), computes
bytes-conserving shard multipliers, picks each hot shard's B_str/B_val
split with :func:`repro.core.autobudget.allocate_budget` against the
stored reference snapshots, and rebuilds only the payloads whose
budgets actually changed — unchanged ``(structure, budget)`` pairs are
copied byte-for-byte from the existing containers (cold shards are
typically untouched), which is what makes rebalancing cheap next to a
full rebuild.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.collection.budget import (
    autobudget_sample,
    cluster_log,
    shard_multipliers,
)
from repro.collection.manifest import (
    CollectionFormatError,
    CollectionManifest,
    REFS_DIRNAME,
    ROLLUP_FILENAME,
    SHARD_DIRNAME,
    ShardEntry,
    atomic_write,
    load_manifest,
    save_manifest,
    sha256_hex,
)
from repro.collection.rollup import merge_rollup
from repro.collection.store import (
    PayloadRecord,
    ShardReader,
    shard_for_doc,
    write_shard_container,
)
from repro.core.autobudget import allocate_budget
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.parallel import pool_context
from repro.core.reference import build_reference_synopsis
from repro.core.snapshot import snapshot_to_bytes, synopsis_from_snapshot
from repro.query.ast import TwigQuery
from repro.xmltree.columnar import ingest_string


@dataclass
class CollectionConfig:
    """Build knobs for a collection.

    Attributes:
        shard_count: number of shards documents are routed across.
        total_budget: synopsis bytes across every shard's payloads
            (``B_str + B_val``, summed).
        structural_share: default B_str fraction of each payload's
            budget (rebalancing may re-pick it per shard).
        compress: ``False`` stores the uncompressed reference synopses
            as payloads — the exact mode the differential harness pits
            against the monolithic oracle.
        text_word_threshold: ingestion typing knob (parser semantics).
        workers: processes for the distinct-structure fan-out.
        min_payload_budget: floor for one payload's total budget.
    """

    shard_count: int = 8
    total_budget: int = 1 << 20
    structural_share: float = 0.3
    compress: bool = True
    text_word_threshold: int = 2
    workers: int = 1
    min_payload_budget: int = 512


@dataclass
class BuildReport:
    """What one build/rebalance actually did (for benches and the CLI)."""

    documents: int = 0
    distinct_structures: int = 0
    payload_builds: int = 0
    payloads_reused: int = 0
    shards_written: int = 0
    workers_requested: int = 1
    workers_effective: int = 1
    multipliers: Dict[int, float] = field(default_factory=dict)
    ratios: Dict[int, float] = field(default_factory=dict)

    @property
    def dedup_rate(self) -> float:
        """Fraction of documents served by an already-built structure."""
        if not self.documents:
            return 0.0
        return 1.0 - self.distinct_structures / self.documents


@dataclass
class _Distinct:
    """One distinct document structure during a build."""

    content_hash: str
    xml: str
    elements: int
    #: shard id -> multiplicity.
    shards: Dict[int, int] = field(default_factory=dict)


def _split_budget(
    total: int, structural_share: float
) -> Tuple[int, int]:
    structural = max(128, int(total * structural_share))
    return structural, max(128, total - structural)


def _waterfill_floors(
    targets: Dict[object, float], floor: int
) -> Dict[object, int]:
    """Integer budgets ``>= floor`` whose sum tracks ``sum(targets)``.

    Clamping cold payloads up to the floor spends bytes the multiplier
    scheme already allocated elsewhere; this recovers them by scaling
    down the payloads still above the floor (mirroring
    :func:`repro.collection.budget.shard_multipliers`'s waterfill one
    level down), so a rebalance conserves total payload bytes up to
    integer rounding even when many shards are pinned at the floor.
    """
    total = sum(targets.values())
    values = {key: max(float(floor), value) for key, value in targets.items()}
    for _ in range(16):
        spent = sum(values.values())
        deficit = total - spent
        if abs(deficit) <= 1e-9 * max(1.0, total):
            break
        adjustable = [
            key
            for key, value in values.items()
            if value > floor or deficit > 0
        ]
        adjustable_spend = sum(values[key] for key in adjustable)
        if not adjustable or adjustable_spend <= 0:
            break
        scale = 1.0 + deficit / adjustable_spend
        for key in adjustable:
            values[key] = max(float(floor), values[key] * scale)
    return {key: int(round(value)) for key, value in values.items()}


def _build_payload_bytes(
    xml: str,
    budgets: Sequence[Tuple[int, int]],
    compress: bool,
    text_word_threshold: int,
) -> Tuple[bytes, List[Tuple[int, int, bytes]], int]:
    """Reference snapshot + one payload per budget variant for one doc.

    Returns ``(ref_bytes, [(b_str, b_val, payload_bytes), ...],
    elements)``.  The reference is derived once; each budget variant
    compresses a deep copy of it, so variants are independent and
    bit-deterministic regardless of evaluation order.
    """
    doc = ingest_string(xml, text_word_threshold=text_word_threshold)
    reference = build_reference_synopsis(doc, doc.value_paths())
    ref_bytes = snapshot_to_bytes(reference)
    variants: List[Tuple[int, int, bytes]] = []
    for b_str, b_val in budgets:
        if not compress:
            variants.append((b_str, b_val, ref_bytes))
            continue
        trial = copy.deepcopy(reference)
        XClusterBuilder(
            BuildConfig(structural_budget=b_str, value_budget=b_val)
        ).compress(trial)
        variants.append((b_str, b_val, snapshot_to_bytes(trial)))
    return ref_bytes, variants, len(doc)


def _payload_task(item):
    """Pool task: build every budget variant of one distinct structure."""
    content_hash, xml, budgets, compress, threshold = item
    ref_bytes, variants, elements = _build_payload_bytes(
        xml, budgets, compress, threshold
    )
    return content_hash, ref_bytes, variants, elements


def _run_payload_builds(
    tasks: List[tuple], workers: int
) -> Tuple[List[tuple], int]:
    """Run the distinct-structure builds, parallel when possible."""
    if workers > 1 and len(tasks) > 1:
        context = pool_context()
        if context is not None:
            try:
                with context.Pool(processes=workers) as pool:
                    return pool.map(_payload_task, tasks), workers
            except (OSError, PermissionError, RuntimeError):
                pass
    return [_payload_task(task) for task in tasks], 1


def _ensure_layout(root: str) -> None:
    os.makedirs(os.path.join(root, SHARD_DIRNAME), exist_ok=True)
    os.makedirs(os.path.join(root, REFS_DIRNAME), exist_ok=True)


def _ref_relpath(content_hash: str) -> str:
    return os.path.join(REFS_DIRNAME, f"{content_hash[:24]}.snap")


def _shard_relpath(shard_id: int) -> str:
    return os.path.join(SHARD_DIRNAME, f"shard-{shard_id:04d}.shard")


def build_collection(
    root: str,
    documents: Iterable[Tuple[str, str]],
    config: Optional[CollectionConfig] = None,
) -> Tuple[CollectionManifest, BuildReport]:
    """Build a collection directory from ``(doc_id, xml)`` pairs.

    Budgets are *uniform*: every shard's payloads get bytes
    proportional to their structure's element count at one global
    rate, with multiplier 1.0 recorded in the manifest — the baseline
    :func:`rebalance_collection` later reallocates from.
    """
    config = config if config is not None else CollectionConfig()
    if config.shard_count <= 0:
        raise ValueError("shard_count must be positive")
    report = BuildReport(workers_requested=config.workers)

    # -- route and dedup ----------------------------------------------------
    distinct: Dict[str, _Distinct] = {}
    assignments: Dict[int, List[Tuple[str, str]]] = {}
    seen_ids: set = set()
    for doc_id, xml in documents:
        if doc_id in seen_ids:
            raise ValueError(f"duplicate document id {doc_id!r}")
        seen_ids.add(doc_id)
        content_hash = sha256_hex(xml.encode("utf-8"))
        shard_id = shard_for_doc(doc_id, config.shard_count)
        entry = distinct.get(content_hash)
        if entry is None:
            entry = distinct[content_hash] = _Distinct(
                content_hash, xml, elements=0
            )
        entry.shards[shard_id] = entry.shards.get(shard_id, 0) + 1
        assignments.setdefault(shard_id, []).append((doc_id, content_hash))
    if not seen_ids:
        raise ValueError("cannot build a collection from zero documents")
    report.documents = len(seen_ids)
    report.distinct_structures = len(distinct)

    # Element counts come from a cheap pre-pass ingest of each distinct
    # structure (the build tasks re-ingest in their own process; the
    # strings are small next to the build itself).
    for entry in distinct.values():
        entry.elements = len(
            ingest_string(
                entry.xml, text_word_threshold=config.text_word_threshold
            )
        )

    # -- uniform budgets ----------------------------------------------------
    # One global byte rate per element of *distinct* structure stored:
    # a shard's budget is proportional to the data it actually keeps.
    total_weight = sum(
        entry.elements
        for entry in distinct.values()
        for _ in entry.shards
    )
    rate = config.total_budget / max(1, total_weight)
    budgets: Dict[str, Tuple[int, int]] = {}
    for content_hash, entry in distinct.items():
        payload_total = max(
            config.min_payload_budget, int(round(rate * entry.elements))
        )
        budgets[content_hash] = _split_budget(
            payload_total, config.structural_share
        )

    # -- build each distinct structure once ---------------------------------
    tasks = [
        (
            content_hash,
            entry.xml,
            [budgets[content_hash]],
            config.compress,
            config.text_word_threshold,
        )
        for content_hash, entry in sorted(distinct.items())
    ]
    results, effective = _run_payload_builds(tasks, config.workers)
    report.workers_effective = effective
    report.payload_builds = len(tasks)
    report.payloads_reused = report.documents - report.distinct_structures

    ref_bytes: Dict[str, bytes] = {}
    payload_bytes: Dict[Tuple[str, int, int], bytes] = {}
    for content_hash, refs, variants, elements in results:
        ref_bytes[content_hash] = refs
        distinct[content_hash].elements = elements
        for b_str, b_val, data in variants:
            payload_bytes[(content_hash, b_str, b_val)] = data

    # -- write the directory ------------------------------------------------
    _ensure_layout(root)
    refs_map: Dict[str, str] = {}
    for content_hash, data in sorted(ref_bytes.items()):
        rel = _ref_relpath(content_hash)
        atomic_write(os.path.join(root, rel), data)
        refs_map[content_hash] = rel

    multipliers = {
        shard_id: 1.0 for shard_id in range(config.shard_count)
    }
    ratios = {
        shard_id: config.structural_share
        for shard_id in range(config.shard_count)
    }
    previous_version = 0
    try:
        previous_version = load_manifest(root).version
    except CollectionFormatError:
        pass
    manifest = _write_collection(
        root,
        config,
        distinct,
        assignments,
        budgets_by_shard={
            shard_id: {
                content_hash: budgets[content_hash]
                for content_hash in {
                    h for _, h in assignments.get(shard_id, [])
                }
            }
            for shard_id in range(config.shard_count)
        },
        payload_bytes=payload_bytes,
        refs_map=refs_map,
        ref_bytes=ref_bytes,
        multipliers=multipliers,
        version=previous_version + 1,
        report=report,
    )
    report.multipliers = multipliers
    report.ratios = ratios
    return manifest, report


def _write_collection(
    root: str,
    config: CollectionConfig,
    distinct: Dict[str, _Distinct],
    assignments: Dict[int, List[Tuple[str, str]]],
    budgets_by_shard: Dict[int, Dict[str, Tuple[int, int]]],
    payload_bytes: Dict[Tuple[str, int, int], bytes],
    refs_map: Dict[str, str],
    ref_bytes: Dict[str, bytes],
    multipliers: Dict[int, float],
    version: int,
    report: BuildReport,
) -> CollectionManifest:
    """Write containers + rollup, then commit the manifest atomically."""
    entries: List[ShardEntry] = []
    for shard_id in range(config.shard_count):
        docs = sorted(assignments.get(shard_id, []))
        shard_hashes = sorted({content_hash for _, content_hash in docs})
        shard_budgets = budgets_by_shard.get(shard_id, {})
        payloads: List[PayloadRecord] = []
        index_of: Dict[str, int] = {}
        for content_hash in shard_hashes:
            b_str, b_val = shard_budgets[content_hash]
            entry = distinct[content_hash]
            index_of[content_hash] = len(payloads)
            payloads.append(
                PayloadRecord(
                    content_hash=content_hash,
                    data=payload_bytes[(content_hash, b_str, b_val)],
                    structural_budget=b_str,
                    value_budget=b_val,
                    elements=entry.elements,
                    multiplicity=entry.shards.get(shard_id, 0),
                )
            )
        doc_rows = [
            (doc_id, index_of[content_hash]) for doc_id, content_hash in docs
        ]
        rel = _shard_relpath(shard_id)
        data = write_shard_container(
            os.path.join(root, rel), payloads, doc_rows
        )
        report.shards_written += 1
        entries.append(
            ShardEntry(
                shard_id=shard_id,
                path=rel,
                content_hash=sha256_hex(data),
                documents=len(doc_rows),
                distinct=len(payloads),
                elements=sum(record.elements for record in payloads),
                budget=sum(
                    record.structural_budget + record.value_budget
                    for record in payloads
                ),
                multiplier=multipliers.get(shard_id, 1.0),
            )
        )

    rollup_rel: Optional[str] = None
    rollup_hash: Optional[str] = None
    rollup = merge_rollup(
        [
            (
                synopsis_from_snapshot(ref_bytes[content_hash], verify=False),
                sum(entry.shards.values()),
            )
            for content_hash, entry in sorted(distinct.items())
        ]
    )
    if rollup is not None:
        data = snapshot_to_bytes(rollup)
        atomic_write(os.path.join(root, ROLLUP_FILENAME), data)
        rollup_rel = ROLLUP_FILENAME
        rollup_hash = sha256_hex(data)

    manifest = CollectionManifest(
        shard_count=config.shard_count,
        total_budget=config.total_budget,
        structural_share=config.structural_share,
        compressed=config.compress,
        shards=entries,
        refs=refs_map,
        rollup_path=rollup_rel,
        rollup_hash=rollup_hash,
        version=version,
    )
    save_manifest(root, manifest)
    return manifest


def rebalance_collection(
    root: str,
    log: Sequence[Tuple[str, TwigQuery]],
    workers: int = 1,
    autobudget_queries: int = 8,
) -> Tuple[CollectionManifest, BuildReport]:
    """Reallocate synopsis bytes toward the shards the log actually hits.

    The total byte budget is conserved (see
    :func:`~repro.collection.budget.shard_multipliers`); hot shards
    additionally get their B_str/B_val split re-picked by
    :func:`~repro.core.autobudget.allocate_budget` against their
    dominant structure's reference snapshot, scored on the log's own
    query shapes.  Payloads whose ``(structure, budget)`` pair is
    unchanged are copied from the existing containers byte-for-byte.
    """
    manifest = load_manifest(root)
    config = CollectionConfig(
        shard_count=manifest.shard_count,
        total_budget=manifest.total_budget,
        structural_share=manifest.structural_share,
        compress=manifest.compressed,
        workers=workers,
    )
    report = BuildReport(workers_requested=workers, workers_effective=1)

    clustered = cluster_log(
        log, lambda doc_id: shard_for_doc(doc_id, manifest.shard_count)
    )

    # Reload the current containers (they double as the payload-reuse
    # source) and reconstruct the routing/distinct tables from disk.
    readers: Dict[int, ShardReader] = {}
    distinct: Dict[str, _Distinct] = {}
    assignments: Dict[int, List[Tuple[str, str]]] = {}
    old_payloads: Dict[Tuple[str, int, int], bytes] = {}
    for entry in manifest.shards:
        reader = ShardReader.open(
            os.path.join(root, entry.path), entry.shard_id
        )
        readers[entry.shard_id] = reader
        for index, info in enumerate(reader.payloads):
            record = distinct.get(info.content_hash)
            if record is None:
                record = distinct[info.content_hash] = _Distinct(
                    info.content_hash, "", info.elements
                )
            record.shards[entry.shard_id] = info.multiplicity
            old_payloads[
                (info.content_hash, info.structural_budget, info.value_budget)
            ] = reader.payload_bytes(index)
        for doc_id, index in reader.doc_table.items():
            assignments.setdefault(entry.shard_id, []).append(
                (doc_id, reader.payloads[index].content_hash)
            )
    report.documents = manifest.documents
    report.distinct_structures = len(distinct)

    shard_weights = {
        entry.shard_id: entry.elements for entry in manifest.shards
    }
    multipliers = shard_multipliers(shard_weights, clustered.shard_heat)
    total_weight = sum(shard_weights.values())
    rate = manifest.total_budget / max(1, total_weight)

    # Per-shard B_str/B_val ratio: hot shards re-pick theirs with the
    # autobudget search against their dominant structure's reference.
    ratios = {
        entry.shard_id: manifest.structural_share
        for entry in manifest.shards
    }
    if manifest.compressed:
        for shard_id in clustered.hot_shards():
            reader = readers.get(shard_id)
            if reader is None or not reader.payloads:
                continue
            queries = clustered.shard_queries(
                shard_id, limit=autobudget_queries
            )
            if not queries:
                continue
            dominant = max(
                reader.payloads,
                key=lambda info: (info.multiplicity, info.elements),
            )
            ref = _load_reference(root, manifest, dominant.content_hash)
            if ref is None:
                continue
            budget = max(
                config.min_payload_budget,
                int(
                    round(
                        multipliers[shard_id] * rate * dominant.elements
                    )
                ),
            )
            sample = autobudget_sample(ref, queries)
            try:
                result = allocate_budget(ref, budget, sample, refine_steps=1)
            except ValueError:
                continue
            ratios[shard_id] = result.ratio

    # New budgets per (shard, structure); rebuild only what changed.
    # Targets come from the shard multipliers; the waterfill then
    # claws the minimum-budget floors back from unfloored payloads so
    # the rebalanced store spends the same total bytes it did before.
    targets = {
        (entry.shard_id, info.content_hash): multipliers[entry.shard_id]
        * rate
        * info.elements
        for entry in manifest.shards
        for info in readers[entry.shard_id].payloads
    }
    payload_totals = _waterfill_floors(targets, config.min_payload_budget)
    budgets_by_shard: Dict[int, Dict[str, Tuple[int, int]]] = {}
    needed: Dict[str, List[Tuple[int, int]]] = {}
    payload_bytes: Dict[Tuple[str, int, int], bytes] = {}
    for entry in manifest.shards:
        shard_id = entry.shard_id
        shard_budgets: Dict[str, Tuple[int, int]] = {}
        for info in readers[shard_id].payloads:
            payload_total = payload_totals[(shard_id, info.content_hash)]
            split = _split_budget(payload_total, ratios[shard_id])
            shard_budgets[info.content_hash] = split
            key = (info.content_hash, split[0], split[1])
            if key in old_payloads:
                payload_bytes[key] = old_payloads[key]
                report.payloads_reused += 1
            elif split not in needed.setdefault(info.content_hash, []):
                needed[info.content_hash].append(split)
        budgets_by_shard[shard_id] = shard_budgets

    tasks = []
    for content_hash, variants in sorted(needed.items()):
        ref = _load_reference(root, manifest, content_hash)
        if ref is None:
            raise CollectionFormatError(
                f"cannot rebalance: reference snapshot for "
                f"{content_hash[:12]}… is missing"
            )
        for b_str, b_val in variants:
            trial = copy.deepcopy(ref)
            if manifest.compressed:
                XClusterBuilder(
                    BuildConfig(structural_budget=b_str, value_budget=b_val)
                ).compress(trial)
            payload_bytes[(content_hash, b_str, b_val)] = snapshot_to_bytes(
                trial
            )
            report.payload_builds += 1
            tasks.append((content_hash, b_str, b_val))

    refs_map = dict(manifest.refs)
    ref_blobs = {
        content_hash: _read_ref_bytes(root, manifest, content_hash)
        for content_hash in distinct
    }
    new_manifest = _write_collection(
        root,
        config,
        distinct,
        {shard: sorted(rows) for shard, rows in assignments.items()},
        budgets_by_shard=budgets_by_shard,
        payload_bytes=payload_bytes,
        refs_map=refs_map,
        ref_bytes=ref_blobs,
        multipliers=multipliers,
        version=manifest.version + 1,
        report=report,
    )
    report.multipliers = multipliers
    report.ratios = ratios
    return new_manifest, report


def _read_ref_bytes(
    root: str, manifest: CollectionManifest, content_hash: str
) -> bytes:
    rel = manifest.refs.get(content_hash)
    if rel is None:
        raise CollectionFormatError(
            f"manifest has no reference snapshot for {content_hash[:12]}…"
        )
    try:
        with open(os.path.join(root, rel), "rb") as handle:
            return handle.read()
    except OSError as err:
        raise CollectionFormatError(
            f"reference snapshot {rel} is missing: {err}"
        ) from err


def _load_reference(
    root: str, manifest: CollectionManifest, content_hash: str
):
    rel = manifest.refs.get(content_hash)
    if rel is None:
        return None
    try:
        data = _read_ref_bytes(root, manifest, content_hash)
    except CollectionFormatError:
        return None
    return synopsis_from_snapshot(data, verify=False, lazy=False)

"""Edge-model CSV export of a collection.

Dumps a collection as four relational tables — the node/edge
("edge-model") representation graph stores and relational XML shredders
use for synopsis graphs:

* ``shards.csv``    — the manifest's shard table;
* ``documents.csv`` — ``doc_id -> (shard, payload)`` routing;
* ``nodes.csv``     — every payload synopsis node, one row per
  ``(shard, payload, node)``;
* ``edges.csv``     — the edge table with the paper's per-parent
  average child counts as the edge weight.

The export is read-only and deterministic (rows ordered by shard id,
payload index, node id), so two exports of the same collection diff
clean — which makes the CSVs usable as fixtures and in external
analysis without caring about dict ordering.
"""

from __future__ import annotations

import csv
import os
from typing import Dict

from repro.collection.store import CollectionStore


def export_edge_model(store: CollectionStore, out_dir: str) -> Dict[str, int]:
    """Write the four edge-model CSVs; returns ``filename -> rows``.

    Args:
        store: an open collection store (payload synopses are decoded
            lazily shard by shard, so memory stays bounded by one
            shard's distinct structures).
        out_dir: destination directory, created if needed.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: Dict[str, int] = {}

    manifest = store.manifest
    with open(
        os.path.join(out_dir, "shards.csv"), "w", newline=""
    ) as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "shard_id",
                "path",
                "content_hash",
                "documents",
                "distinct",
                "elements",
                "budget",
                "multiplier",
            ]
        )
        rows = 0
        for entry in sorted(manifest.shards, key=lambda e: e.shard_id):
            writer.writerow(
                [
                    entry.shard_id,
                    entry.path,
                    entry.content_hash,
                    entry.documents,
                    entry.distinct,
                    entry.elements,
                    entry.budget,
                    entry.multiplier,
                ]
            )
            rows += 1
        written["shards.csv"] = rows

    documents = open(os.path.join(out_dir, "documents.csv"), "w", newline="")
    nodes = open(os.path.join(out_dir, "nodes.csv"), "w", newline="")
    edges = open(os.path.join(out_dir, "edges.csv"), "w", newline="")
    try:
        doc_writer = csv.writer(documents)
        doc_writer.writerow(
            ["doc_id", "shard_id", "payload_index", "content_hash"]
        )
        node_writer = csv.writer(nodes)
        node_writer.writerow(
            [
                "shard_id",
                "payload_index",
                "node_id",
                "label",
                "value_type",
                "count",
                "has_summary",
            ]
        )
        edge_writer = csv.writer(edges)
        edge_writer.writerow(
            ["shard_id", "payload_index", "parent_id", "child_id", "avg_count"]
        )
        doc_rows = node_rows = edge_rows = 0
        for entry in sorted(manifest.shards, key=lambda e: e.shard_id):
            reader = store.reader(entry.shard_id)
            for doc_id in sorted(reader.doc_table):
                index = reader.doc_table[doc_id]
                doc_writer.writerow(
                    [
                        doc_id,
                        entry.shard_id,
                        index,
                        reader.payloads[index].content_hash,
                    ]
                )
                doc_rows += 1
            for index in range(len(reader.payloads)):
                synopsis = reader.synopsis(index)
                for node in sorted(synopsis, key=lambda n: n.node_id):
                    node_writer.writerow(
                        [
                            entry.shard_id,
                            index,
                            node.node_id,
                            node.label,
                            node.value_type,
                            node.count,
                            int(
                                node.summary_deferred
                                or node.vsumm is not None
                            ),
                        ]
                    )
                    node_rows += 1
                    for child_id in sorted(node.children):
                        edge_writer.writerow(
                            [
                                entry.shard_id,
                                index,
                                node.node_id,
                                child_id,
                                node.children[child_id],
                            ]
                        )
                        edge_rows += 1
        written["documents.csv"] = doc_rows
        written["nodes.csv"] = node_rows
        written["edges.csv"] = edge_rows
    finally:
        documents.close()
        nodes.close()
        edges.close()
    return written

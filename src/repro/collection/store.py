"""Shard containers, the document router, and the collection store.

One shard *container* packs every distinct document structure routed to
a shard into a single mmap-openable file: a fixed header, a payload
table (offset/length windows plus per-structure metadata), a document
table mapping document ids onto payload indexes, and the payload blob
region — each payload being a standard binary synopsis snapshot
(:mod:`repro.core.snapshot`), so a container is just a directory of
snapshots flattened into one file.  Payloads are decoded lazily: the
container open parses only the tables (every window bounds-checked
against the file size, so truncation is caught up front), and a
payload's synopsis is materialized from a zero-copy ``memoryview``
slice on first use — value summaries inside it defer further still,
via the snapshot format's own thunks.

Documents are routed to shards by :func:`shard_for_doc` — a CRC32 of
the document id, **not** Python's seeded ``hash()``, so the routing is
stable across processes, machines, and interpreter restarts; the same
function serves build time and query time.

:class:`CollectionStore` serves a built collection: an LRU of open
containers (lazily mapped, evicted by dropping references — the mmap
pages stay alive exactly as long as undecoded payload thunks need
them), one shared plan cache + ``EstimatorStats`` across every shard
(the collection analogue of the serving tier's one-``WorkloadEstimator``
-per-synopsis rule), and three estimate paths:

* :meth:`CollectionStore.estimate` — routed: one document's synopsis;
* :meth:`CollectionStore.estimate_collection` — the exact rollup: the
  multiplicity-weighted sum of every distinct payload's estimate, in
  canonical (shard id, payload index) order so the float accumulation
  is reproducible bit-for-bit;
* :meth:`CollectionStore.estimate_rollup` — the merged rollup synopsis
  (:mod:`repro.collection.rollup`), one graph for the whole collection:
  approximate but O(rollup) instead of O(shards).
"""

from __future__ import annotations

import os
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.collection.manifest import (
    CollectionFormatError,
    CollectionManifest,
    ROLLUP_FILENAME,
    atomic_write,
    load_manifest,
    verify_collection,
)
from repro.core.estimation.engine import CompiledEstimator, EstimatorStats
from repro.core.serialization import SynopsisFormatError
from repro.core.snapshot import synopsis_from_snapshot
from repro.core.synopsis import XClusterSynopsis
from repro.query.ast import TwigQuery

#: Leading bytes of every shard container; the final byte is the
#: container format version.
SHARD_MAGIC = b"XCSHRD\x00\x01"

_COUNTS = struct.Struct("<II")
#: payload record: offset, length, B_str, B_val, elements, multiplicity.
_PAYLOAD = struct.Struct("<QQQQQQ")
_HASH_LEN = 32
_DOC_HEAD = struct.Struct("<II")


def shard_for_doc(doc_id: str, shard_count: int) -> int:
    """Deterministic document routing (CRC32, process-independent)."""
    if shard_count <= 0:
        raise ValueError("shard_count must be positive")
    return zlib.crc32(doc_id.encode("utf-8")) % shard_count


@dataclass
class PayloadRecord:
    """One distinct structure's payload, as written into a container."""

    content_hash: str
    data: bytes
    structural_budget: int
    value_budget: int
    elements: int
    multiplicity: int


def pack_shard_container(
    payloads: Sequence[PayloadRecord], docs: Sequence[Tuple[str, int]]
) -> bytes:
    """Encode one shard container; ``docs`` maps doc id -> payload index."""
    parts: List[bytes] = [SHARD_MAGIC, _COUNTS.pack(len(payloads), len(docs))]
    doc_table = bytearray()
    for doc_id, payload_index in docs:
        if not 0 <= payload_index < len(payloads):
            raise ValueError(
                f"document {doc_id!r} references payload {payload_index}"
            )
        encoded = doc_id.encode("utf-8")
        doc_table += _DOC_HEAD.pack(len(encoded), payload_index)
        doc_table += encoded
    header_size = (
        len(SHARD_MAGIC)
        + _COUNTS.size
        + len(payloads) * (_PAYLOAD.size + _HASH_LEN)
        + len(doc_table)
    )
    offset = header_size
    for record in payloads:
        digest = bytes.fromhex(record.content_hash)
        if len(digest) != _HASH_LEN:
            raise ValueError(
                f"content hash {record.content_hash!r} is not sha256"
            )
        parts.append(
            _PAYLOAD.pack(
                offset,
                len(record.data),
                record.structural_budget,
                record.value_budget,
                record.elements,
                record.multiplicity,
            )
        )
        parts.append(digest)
        offset += len(record.data)
    parts.append(bytes(doc_table))
    parts.extend(record.data for record in payloads)
    return b"".join(parts)


def write_shard_container(
    path: str, payloads: Sequence[PayloadRecord], docs: Sequence[Tuple[str, int]]
) -> bytes:
    """Atomically write one container; returns the encoded bytes."""
    data = pack_shard_container(payloads, docs)
    atomic_write(path, data)
    return data


@dataclass
class PayloadInfo:
    """Decoded payload-table row of an open container."""

    content_hash: str
    offset: int
    length: int
    structural_budget: int
    value_budget: int
    elements: int
    multiplicity: int


class ShardReader:
    """One open shard container: eager tables, lazy payload synopses."""

    def __init__(self, buffer, shard_id: int = -1) -> None:
        self.shard_id = shard_id
        self._buffer = buffer
        self.payloads: List[PayloadInfo] = []
        self.doc_table: Dict[str, int] = {}
        self._synopses: Dict[int, XClusterSynopsis] = {}
        self._estimators: Dict[int, CompiledEstimator] = {}
        self._parse_tables()

    @classmethod
    def open(cls, path: str, shard_id: int = -1) -> "ShardReader":
        """Map a container read-only (falling back to one read)."""
        import mmap

        with open(path, "rb") as handle:
            try:
                buffer = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError):
                buffer = handle.read()
        return cls(buffer, shard_id)

    def _parse_tables(self) -> None:
        buffer = self._buffer
        size = len(buffer)
        magic_len = len(SHARD_MAGIC)
        if size < magic_len or bytes(buffer[:magic_len]) != SHARD_MAGIC:
            raise CollectionFormatError(
                "not a shard container (bad magic bytes)"
            )
        at = magic_len
        try:
            if at + _COUNTS.size > size:
                raise CollectionFormatError(
                    "shard container truncated inside its header"
                )
            payload_count, doc_count = _COUNTS.unpack_from(buffer, at)
            at += _COUNTS.size
            for _ in range(payload_count):
                if at + _PAYLOAD.size + _HASH_LEN > size:
                    raise CollectionFormatError(
                        "shard container truncated inside its payload table"
                    )
                offset, length, b_str, b_val, elements, multiplicity = (
                    _PAYLOAD.unpack_from(buffer, at)
                )
                at += _PAYLOAD.size
                digest = bytes(buffer[at:at + _HASH_LEN])
                at += _HASH_LEN
                if offset + length > size:
                    raise CollectionFormatError(
                        f"payload window [{offset}, {offset + length}) lies "
                        f"outside the {size}-byte container"
                    )
                self.payloads.append(
                    PayloadInfo(
                        digest.hex(), offset, length, b_str, b_val,
                        elements, multiplicity,
                    )
                )
            for _ in range(doc_count):
                if at + _DOC_HEAD.size > size:
                    raise CollectionFormatError(
                        "shard container truncated inside its document table"
                    )
                id_len, payload_index = _DOC_HEAD.unpack_from(buffer, at)
                at += _DOC_HEAD.size
                if at + id_len > size:
                    raise CollectionFormatError(
                        "shard container truncated inside a document id"
                    )
                raw = bytes(buffer[at:at + id_len])
                at += id_len
                try:
                    doc_id = raw.decode("utf-8")
                except UnicodeDecodeError as err:
                    raise CollectionFormatError(
                        f"corrupt document id in shard container: {err}"
                    ) from err
                if payload_index >= payload_count:
                    raise CollectionFormatError(
                        f"document {doc_id!r} references missing payload "
                        f"{payload_index}"
                    )
                if doc_id in self.doc_table:
                    raise CollectionFormatError(
                        f"duplicate document id {doc_id!r} in shard container"
                    )
                self.doc_table[doc_id] = payload_index
        except struct.error as err:  # pragma: no cover - bounds caught above
            raise CollectionFormatError(
                f"corrupt shard container record: {err}"
            ) from err
        counted: Dict[int, int] = {}
        for payload_index in self.doc_table.values():
            counted[payload_index] = counted.get(payload_index, 0) + 1
        for index, info in enumerate(self.payloads):
            if counted.get(index, 0) != info.multiplicity:
                raise CollectionFormatError(
                    f"payload {index} claims multiplicity "
                    f"{info.multiplicity} but the document table holds "
                    f"{counted.get(index, 0)}"
                )

    @property
    def documents(self) -> int:
        return len(self.doc_table)

    def payload_bytes(self, index: int) -> bytes:
        """One payload's raw snapshot bytes, copied out of the buffer."""
        info = self.payloads[index]
        return bytes(self._buffer[info.offset:info.offset + info.length])

    def synopsis(self, index: int) -> XClusterSynopsis:
        """The payload's synopsis, decoded once from a zero-copy window."""
        cached = self._synopses.get(index)
        if cached is not None:
            return cached
        info = self.payloads[index]
        window = memoryview(self._buffer)[info.offset:info.offset + info.length]
        try:
            synopsis = synopsis_from_snapshot(window, verify=False, lazy=True)
        except SynopsisFormatError as err:
            raise CollectionFormatError(
                f"payload {index} ({info.content_hash[:12]}…) is corrupt: "
                f"{err}"
            ) from err
        self._synopses[index] = synopsis
        return synopsis

    def estimator(
        self,
        index: int,
        plan_cache: Optional[dict] = None,
        stats: Optional[EstimatorStats] = None,
        max_path_length: int = 40,
    ) -> CompiledEstimator:
        """A compiled estimator on one payload, sharing the caller's
        plan cache and stats across every payload and shard."""
        cached = self._estimators.get(index)
        if cached is None:
            cached = CompiledEstimator(
                self.synopsis(index),
                max_path_length,
                plan_cache=plan_cache,
                stats=stats,
            )
            self._estimators[index] = cached
        return cached


class CollectionStore:
    """Serve estimates over a built collection directory.

    Containers open lazily and live in an LRU of at most
    ``max_open_shards`` readers; eviction simply drops the reader — any
    synopsis already decoded from it keeps the underlying mmap alive
    through its summary thunks, so eviction can never invalidate an
    estimate in flight.  One plan cache and one ``EstimatorStats``
    serve every payload estimator, so a twig compiled for one document
    is a cache hit for every other document and for the rollup.
    """

    def __init__(
        self,
        root: str,
        max_open_shards: int = 8,
        max_path_length: int = 40,
        verify: bool = False,
    ) -> None:
        self.root = root
        self.manifest: CollectionManifest = (
            verify_collection(root) if verify else load_manifest(root)
        )
        self.max_open_shards = max(1, max_open_shards)
        self.max_path_length = max_path_length
        self.plan_cache: dict = {}
        self.stats = EstimatorStats()
        self._readers: "OrderedDict[int, ShardReader]" = OrderedDict()
        self._rollup: Optional[XClusterSynopsis] = None
        self._rollup_estimator: Optional[CompiledEstimator] = None
        self.lru_hits = 0
        self.lru_misses = 0
        self.lru_evictions = 0

    # -- shard access -------------------------------------------------------

    def shard_of(self, doc_id: str) -> int:
        """The shard a document id routes to."""
        return shard_for_doc(doc_id, self.manifest.shard_count)

    def reader(self, shard_id: int) -> ShardReader:
        """The shard's open container, via the LRU of open mmaps."""
        reader = self._readers.get(shard_id)
        if reader is not None:
            self.lru_hits += 1
            self._readers.move_to_end(shard_id)
            return reader
        self.lru_misses += 1
        entry = self.manifest.shard(shard_id)
        path = os.path.join(self.root, entry.path)
        if not os.path.isfile(path):
            raise CollectionFormatError(
                f"shard {shard_id} container {entry.path} is missing"
            )
        reader = ShardReader.open(path, shard_id)
        self._readers[shard_id] = reader
        while len(self._readers) > self.max_open_shards:
            self._readers.popitem(last=False)
            self.lru_evictions += 1
        return reader

    def document_ids(self) -> Iterator[str]:
        """Every document id, in canonical (shard, container) order."""
        for entry in sorted(self.manifest.shards, key=lambda e: e.shard_id):
            yield from self.reader(entry.shard_id).doc_table

    def payload_of(self, doc_id: str) -> Tuple[int, int]:
        """``(shard_id, payload_index)`` for a document id."""
        shard_id = self.shard_of(doc_id)
        reader = self.reader(shard_id)
        index = reader.doc_table.get(doc_id)
        if index is None:
            raise KeyError(f"collection holds no document {doc_id!r}")
        return shard_id, index

    def synopsis_for(self, doc_id: str) -> XClusterSynopsis:
        """The document's own payload synopsis (decoded lazily)."""
        shard_id, index = self.payload_of(doc_id)
        return self.reader(shard_id).synopsis(index)

    # -- estimation ---------------------------------------------------------

    def _estimator(self, shard_id: int, index: int) -> CompiledEstimator:
        return self.reader(shard_id).estimator(
            index, self.plan_cache, self.stats, self.max_path_length
        )

    def estimate(self, doc_id: str, query: TwigQuery) -> float:
        """Routed estimate: the document's own payload synopsis."""
        shard_id, index = self.payload_of(doc_id)
        return self._estimator(shard_id, index).estimate(query)

    def estimate_collection(self, query: TwigQuery) -> float:
        """Exact rollup: multiplicity-weighted sum over every payload.

        Payloads are visited in canonical (shard id, payload index)
        order, so the accumulation order — and therefore the float
        result — is independent of LRU state and identical to a fresh
        single-pass oracle over the same containers.
        """
        total = 0.0
        for entry in sorted(self.manifest.shards, key=lambda e: e.shard_id):
            reader = self.reader(entry.shard_id)
            for index, info in enumerate(reader.payloads):
                estimate = self._estimator(entry.shard_id, index).estimate(
                    query
                )
                total += info.multiplicity * estimate
        return total

    def rollup_synopsis(self) -> Optional[XClusterSynopsis]:
        """The materialized merged rollup, if the build produced one."""
        if self._rollup is not None:
            return self._rollup
        if self.manifest.rollup_path is None:
            return None
        from repro.core.snapshot import load_snapshot

        path = os.path.join(self.root, self.manifest.rollup_path)
        try:
            self._rollup = load_snapshot(path, verify=False, lazy=True)
        except SynopsisFormatError as err:
            raise CollectionFormatError(
                f"rollup snapshot is corrupt: {err}"
            ) from err
        except OSError as err:
            raise CollectionFormatError(
                f"rollup snapshot is missing: {err}"
            ) from err
        return self._rollup

    def estimate_rollup(self, query: TwigQuery) -> float:
        """Cross-collection estimate from the merged rollup synopsis.

        The rollup's root cluster counts every document root, while the
        estimator anchors one virtual document above the root (weight
        1.0), so its raw estimate is per *average document*; scaling by
        the root count yields the collection-wide figure.  Falls back
        to the exact sum when the build produced no rollup (mixed root
        labels).
        """
        rollup = self.rollup_synopsis()
        if rollup is None or rollup.root_id is None:
            return self.estimate_collection(query)
        if self._rollup_estimator is None:
            self._rollup_estimator = CompiledEstimator(
                rollup,
                self.max_path_length,
                plan_cache=self.plan_cache,
                stats=self.stats,
            )
        return rollup.root.count * self._rollup_estimator.estimate(query)

    # -- observability ------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, object]:
        """Manifest, budget, LRU, and estimator counters as one dict."""
        manifest = self.manifest
        return {
            "version": manifest.version,
            "shard_count": manifest.shard_count,
            "documents": manifest.documents,
            "distinct_structures": len(manifest.refs),
            "total_budget": manifest.total_budget,
            "compressed": manifest.compressed,
            "budget_distribution": manifest.budgets,
            "multipliers": [
                entry.multiplier
                for entry in sorted(manifest.shards, key=lambda e: e.shard_id)
            ],
            "rollup": manifest.rollup_path is not None,
            "open_shards": len(self._readers),
            "max_open_shards": self.max_open_shards,
            "lru": {
                "hits": self.lru_hits,
                "misses": self.lru_misses,
                "evictions": self.lru_evictions,
            },
            "estimator": {
                "queries_estimated": self.stats.queries_estimated,
                "plans_compiled": self.stats.plans_compiled,
                "plan_cache_hits": self.stats.plan_cache_hits,
                "plan_cache_hit_rate": self.stats.plan_cache_hit_rate,
            },
        }


def rollup_path(root: str) -> str:
    """Absolute path of a collection's rollup snapshot."""
    return os.path.join(root, ROLLUP_FILENAME)

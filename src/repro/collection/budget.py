"""Workload-driven budget allocation across shards.

The Materialized View Selection idea (PAPERS.md), applied to synopsis
bytes: cluster the observed query log, measure how much of it each
shard absorbs, and hand hot shards proportionally bigger budgets.  The
pieces:

* :func:`cluster_log` groups log entries by their compiled twig-plan
  *signature* — the same name-free structural key the serving tier
  coalesces on — and routes each entry to its document's shard, so the
  result is both a per-shard heat map and a ranked list of distinct
  query shapes with representative queries (the sample
  :mod:`repro.core.autobudget` needs).
* :func:`shard_multipliers` turns shard heat into per-shard budget
  multipliers under a **conservation constraint**: the element-weighted
  mean multiplier is 1, so a reallocated collection spends the same
  total bytes as the uniform one (rounding aside) — which is what makes
  the uniform-vs-workload error comparison in the benchmark a
  same-cost comparison.  Cold shards are clamped to
  :data:`MULTIPLIER_FLOOR` (an estimate for a cold document should
  degrade, not disappear).
* :func:`autobudget_sample` converts one shard's log cluster into the
  ``(query, exact)`` pairs :func:`~repro.core.autobudget.allocate_budget`
  scores candidate B_str/B_val splits on.  The collection stores no
  raw documents, so "exact" is the detailed reference synopsis's
  estimate — the best ground truth the tier retains, and the exact
  quantity compression error is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimation.plan import compile_query
from repro.query.ast import TwigQuery

#: No shard's budget multiplier falls below this, however cold it is.
MULTIPLIER_FLOOR = 0.25

#: And none rises above this, however hot.
MULTIPLIER_CAP = 8.0


@dataclass
class QueryCluster:
    """One distinct query shape observed in the log."""

    representative: TwigQuery
    count: int = 0
    #: Hits per shard id for this shape.
    shard_counts: Dict[int, int] = field(default_factory=dict)


@dataclass
class ClusteredLog:
    """The clustered query log: shapes ranked by mass, heat by shard."""

    clusters: List[QueryCluster]
    shard_heat: Dict[int, int]
    total: int

    def hot_shards(self) -> List[int]:
        """Shard ids that absorbed any traffic, hottest first."""
        return [
            shard_id
            for shard_id, heat in sorted(
                self.shard_heat.items(), key=lambda item: (-item[1], item[0])
            )
            if heat > 0
        ]

    def shard_queries(self, shard_id: int, limit: int = 12) -> List[TwigQuery]:
        """Representative queries hitting one shard, heaviest shapes first."""
        ranked = sorted(
            (
                (cluster.shard_counts.get(shard_id, 0), index)
                for index, cluster in enumerate(self.clusters)
            ),
            key=lambda item: (-item[0], item[1]),
        )
        return [
            self.clusters[index].representative
            for count, index in ranked[:limit]
            if count > 0
        ]


def cluster_log(
    log: Sequence[Tuple[str, TwigQuery]], shard_of
) -> ClusteredLog:
    """Group ``(doc_id, query)`` log entries by plan signature.

    Args:
        log: the observed query log.
        shard_of: ``doc_id -> shard_id`` (the store's router).
    """
    clusters: Dict[object, QueryCluster] = {}
    shard_heat: Dict[int, int] = {}
    for doc_id, query in log:
        signature = compile_query(query).signature
        cluster = clusters.get(signature)
        if cluster is None:
            cluster = clusters[signature] = QueryCluster(query)
        shard_id = shard_of(doc_id)
        cluster.count += 1
        cluster.shard_counts[shard_id] = (
            cluster.shard_counts.get(shard_id, 0) + 1
        )
        shard_heat[shard_id] = shard_heat.get(shard_id, 0) + 1
    ranked = sorted(
        clusters.values(), key=lambda cluster: -cluster.count
    )
    return ClusteredLog(ranked, shard_heat, len(log))


def shard_multipliers(
    shard_weights: Dict[int, int],
    shard_heat: Dict[int, int],
    floor: float = MULTIPLIER_FLOOR,
    cap: float = MULTIPLIER_CAP,
) -> Dict[int, float]:
    """Per-shard budget multipliers from observed heat, bytes-conserving.

    Args:
        shard_weights: distinct-structure element counts per shard (the
            quantity uniform budgets are proportional to).
        shard_heat: query hits per shard from :func:`cluster_log`.

    Returns:
        ``shard_id -> multiplier`` with every value in ``[floor, cap]``
        and the weight-weighted mean equal to 1 (up to the clamp), so
        reallocation moves bytes between shards without changing their
        total.  An empty or all-cold log yields all-1.0 (uniform).
    """
    total_weight = sum(shard_weights.values())
    total_heat = sum(shard_heat.get(s, 0) for s in shard_weights)
    if total_weight <= 0 or total_heat <= 0:
        return {shard_id: 1.0 for shard_id in shard_weights}

    # Raw multiplier: the shard's share of traffic over its share of
    # data.  A shard receiving traffic exactly proportional to its size
    # gets 1.0.
    raw = {
        shard_id: (
            (shard_heat.get(shard_id, 0) / total_heat)
            / (weight / total_weight)
            if weight > 0
            else 1.0
        )
        for shard_id, weight in shard_weights.items()
    }
    multipliers = {
        shard_id: min(cap, max(floor, value)) for shard_id, value in raw.items()
    }
    # Waterfill the conservation constraint: clamping changes the total,
    # so repeatedly rescale the shards that still have clamp headroom in
    # the needed direction until the weighted mean is 1 again (or every
    # shard is pinned at a bound, when exact conservation is infeasible).
    for _ in range(16):
        spent = sum(multipliers[s] * shard_weights[s] for s in shard_weights)
        deficit = total_weight - spent
        if abs(deficit) <= 1e-9 * total_weight:
            break
        adjustable = [
            shard_id
            for shard_id, value in multipliers.items()
            if shard_weights[shard_id] > 0
            and (value < cap if deficit > 0 else value > floor)
        ]
        if not adjustable:
            break
        adjustable_spend = sum(
            multipliers[s] * shard_weights[s] for s in adjustable
        )
        scale = 1.0 + deficit / adjustable_spend
        for shard_id in adjustable:
            multipliers[shard_id] = min(
                cap, max(floor, multipliers[shard_id] * scale)
            )
    return {
        shard_id: round(value, 6) for shard_id, value in multipliers.items()
    }


def autobudget_sample(
    reference, queries: Sequence[TwigQuery], limit: int = 12
) -> List[Tuple[TwigQuery, int]]:
    """``(query, exact)`` pairs for the B_str/B_val ratio search.

    "Exact" counts come from the stored *reference* snapshot of the
    shard's dominant structure — the detailed synopsis compression
    degrades from, and the only ground truth a documentless store can
    offer.  Zero-count shapes are kept (autobudget's sanity bound
    handles them) unless everything is zero, in which case the caller
    should skip the search.
    """
    from repro.core.estimation.engine import CompiledEstimator

    estimator = CompiledEstimator(reference)
    sample: List[Tuple[TwigQuery, int]] = []
    for query in list(queries)[:limit]:
        sample.append((query, int(round(estimator.estimate(query)))))
    return sample

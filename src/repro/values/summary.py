"""The uniform value-summary interface consumed by the synopsis core.

Each XCluster node with values carries a ``vsumm`` — one of the three
concrete summaries below — behind a single interface providing exactly
what construction and estimation need:

* ``selectivity(predicate)`` — the fraction σ_p(u) of the node's values
  satisfying a predicate (Path-Value Independence, Section 5);
* ``atomic_predicates(limit)`` — the atomic predicates of the Δ metric
  (Section 4.1): prefix ranges for histograms, indexed substrings for
  PSTs, individual terms for term histograms;
* ``fuse(other)`` — the type-specific fusion function f() applied during
  node merges;
* ``compress(amount)`` — one value-compression step (``hist_cmprs``,
  ``st_cmprs``, ``tv_cmprs``), returning a *new* summary so the builder
  can score Δ(S, S′) against the uncompressed original;
* ``size_bytes()`` — byte-accurate storage accounting.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.query.predicates import (
    AtLeastKPredicate,
    KeywordPredicate,
    Predicate,
    RangePredicate,
    SubstringPredicate,
)
from repro.values.ebth import EndBiasedTermHistogram
from repro.values.histogram import Histogram
from repro.values.kernels.ebth import fuse_ebth
from repro.values.kernels.histogram import compress_histogram
from repro.values.kernels.pst import fuse_psts
from repro.values.pst import PrunedSuffixTree, _Node
from repro.values.termvector import TermCentroid, Vocabulary
from repro.values.wavelet import HaarWavelet
from repro.xmltree.types import ValueType


@dataclass
class SummaryConfig:
    """Knobs for building the *detailed* reference-synopsis summaries.

    Attributes:
        histogram_buckets: bucket budget of a detailed NUMERIC histogram.
        pst_max_depth: maximum indexed substring length.
        pst_max_nodes: hard node cap for a detailed PST.
        pst_nodes_per_string: per-cluster PST detail scales with the
            number of summarized strings (full substring tries for tiny
            clusters would bloat the reference synopsis with redundant
            detail; the paper's reference summaries approximate value
            distributions "with low error", not losslessly).
        vocabulary: the synopsis-wide term-id space for TEXT summaries.
        atomic_predicate_limit: cap on atomic predicates per summary when
            evaluating the Δ metric.
    """

    histogram_buckets: int = 64
    #: NUMERIC summarization mechanism: "histogram" (default) or
    #: "wavelet" (the paper's named alternative, §3).
    numeric_summary: str = "histogram"
    wavelet_coefficients: int = 64
    pst_max_depth: int = 5
    pst_max_nodes: int = 2048
    pst_nodes_per_string: int = 16
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    atomic_predicate_limit: int = 48


class ValueSummary:
    """Abstract value-distribution summary attached to a synopsis node."""

    value_type: ValueType = ValueType.NULL

    @property
    def count(self) -> float:
        """Number of element values summarized."""
        raise NotImplementedError

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of values satisfying ``predicate``."""
        raise NotImplementedError

    def fast_selectivity(self, predicate: Predicate) -> float:
        """``selectivity`` via the cheapest equivalent evaluation path.

        The candidate-scoring engine resolves selectivities in bulk, so
        summaries may serve it from sub-linear structures (the histogram
        answers range predicates from a cached CDF).  The default simply
        delegates; overrides must stay numerically equivalent to
        :meth:`selectivity` up to float rounding.
        """
        return self.selectivity(predicate)

    def atomic_predicates(self, limit: int = 48) -> List[Predicate]:
        """The localized micro-benchmark predicates for the Δ metric."""
        raise NotImplementedError

    def canonical_atomic_predicates(self, limit: int = 48) -> Tuple[Predicate, ...]:
        """The atomic predicates as a stable, memoized tuple.

        Summaries are immutable once attached to a synopsis node (fusion
        and compression both return *new* objects), so the atomic set is
        a pure function of the summary and can be canonicalized once:
        the candidate-scoring engine keys selectivity profiles on it and
        avoids re-enumerating predicate sets per candidate pair (for
        suffix-tree summaries each enumeration walks and sorts the whole
        trie).  The tuple preserves ``atomic_predicates`` order exactly.
        """
        memo = self.__dict__.get("_canonical_predicates")
        if memo is None:
            memo = {}
            self.__dict__["_canonical_predicates"] = memo
        canonical = memo.get(limit)
        if canonical is None:
            canonical = tuple(self.atomic_predicates(limit))
            memo[limit] = canonical
        return canonical

    def fuse(self, other: "ValueSummary") -> "ValueSummary":
        """Combine with another summary of the same type (node merge)."""
        raise NotImplementedError

    @property
    def can_compress(self) -> bool:
        """Whether a further compression step is possible."""
        raise NotImplementedError

    def compress(self, amount: int = 1) -> Optional["ValueSummary"]:
        """A new summary one compression step smaller, or ``None``."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Storage footprint of the summary in bytes."""
        raise NotImplementedError

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        """Issues with the summary's internal invariants (empty = healthy).

        The introspection hook consumed by the invariant auditor
        (:mod:`repro.check.invariants`): each concrete summary delegates
        to its kernel structure's own ``invariant_issues`` so corruption
        is reported in the structure's vocabulary (bucket index, trie
        substring, term id).  The base implementation reports nothing.
        """
        del tolerance
        return []

    def sample_value(self, rng: random.Random):
        """Draw one synthetic value from the summarized distribution.

        Used by approximate query answering to synthesize documents from
        a synopsis (in the spirit of the TreeSketch line of work the
        paper builds on).
        """
        raise NotImplementedError


class HistogramSummary(ValueSummary):
    """NUMERIC summary: a bucketed frequency histogram."""

    value_type = ValueType.NUMERIC

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram

    @classmethod
    def from_values(
        cls, values: Iterable[int], config: SummaryConfig
    ) -> "HistogramSummary":
        return cls(Histogram.from_values(values, config.histogram_buckets))

    @property
    def count(self) -> float:
        return self.histogram.total

    def selectivity(self, predicate: Predicate) -> float:
        if not isinstance(predicate, RangePredicate):
            raise TypeError(f"NUMERIC summary cannot evaluate {predicate!r}")
        return self.histogram.selectivity(predicate.low, predicate.high)

    def fast_selectivity(self, predicate: Predicate) -> float:
        if not isinstance(predicate, RangePredicate):
            raise TypeError(f"NUMERIC summary cannot evaluate {predicate!r}")
        return self.histogram.selectivity_cdf(predicate.low, predicate.high)

    def atomic_predicates(self, limit: int = 48) -> List[Predicate]:
        domain_low = self.histogram.domain[0]
        boundaries = self.histogram.boundaries()
        if len(boundaries) > limit:
            step = len(boundaries) / limit
            boundaries = [boundaries[int(index * step)] for index in range(limit)]
        return [RangePredicate(domain_low, high) for high in boundaries]

    def fuse(self, other: "ValueSummary") -> "HistogramSummary":
        if not isinstance(other, HistogramSummary):
            raise TypeError("can only fuse NUMERIC with NUMERIC")
        return HistogramSummary(self.histogram.fuse(other.histogram))

    @property
    def can_compress(self) -> bool:
        return self.histogram.bucket_count > 1

    def compress(self, amount: int = 1) -> Optional["HistogramSummary"]:
        if not self.can_compress:
            return None
        return HistogramSummary(compress_histogram(self.histogram, amount))

    def size_bytes(self) -> int:
        """Storage footprint (see :mod:`repro.values.histogram`)."""
        return self.histogram.size_bytes()

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        return self.histogram.invariant_issues(tolerance)

    def sample_value(self, rng: random.Random) -> int:
        buckets = self.histogram.buckets
        if not buckets:
            return 0
        pick = rng.uniform(0.0, self.histogram.total)
        acc = 0.0
        for bucket in buckets:
            acc += bucket.count
            if acc >= pick:
                return rng.randint(bucket.lo, bucket.hi)
        return buckets[-1].hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HistogramSummary({self.histogram!r})"


class WaveletSummary(ValueSummary):
    """NUMERIC summary backed by a truncated Haar wavelet (extension).

    Interchangeable with :class:`HistogramSummary` behind the uniform
    interface, per the paper's remark that the framework extends to
    other numeric summarization techniques.
    """

    value_type = ValueType.NUMERIC

    def __init__(self, wavelet: HaarWavelet) -> None:
        self.wavelet = wavelet

    @classmethod
    def from_values(
        cls, values: Iterable[int], config: SummaryConfig
    ) -> "WaveletSummary":
        return cls(
            HaarWavelet.from_values(values, config.wavelet_coefficients)
        )

    @property
    def count(self) -> float:
        return self.wavelet.total

    def selectivity(self, predicate: Predicate) -> float:
        if not isinstance(predicate, RangePredicate):
            raise TypeError(f"NUMERIC summary cannot evaluate {predicate!r}")
        return self.wavelet.selectivity(predicate.low, predicate.high)

    def atomic_predicates(self, limit: int = 48) -> List[Predicate]:
        domain_lo, domain_hi = self.wavelet.domain
        width = max(1, (domain_hi - domain_lo + 1) // max(1, limit))
        edges = list(range(domain_lo + width - 1, domain_hi + 1, width))[:limit]
        if not edges:
            edges = [domain_hi]
        return [RangePredicate(domain_lo, edge) for edge in edges]

    def fuse(self, other: "ValueSummary") -> "WaveletSummary":
        if not isinstance(other, WaveletSummary):
            raise TypeError("can only fuse wavelet with wavelet summaries")
        return WaveletSummary(self.wavelet.fuse(other.wavelet))

    @property
    def can_compress(self) -> bool:
        return self.wavelet.coefficient_count > 1

    def compress(self, amount: int = 1) -> Optional["WaveletSummary"]:
        if not self.can_compress:
            return None
        return WaveletSummary(self.wavelet.compress(amount))

    def size_bytes(self) -> int:
        """Storage footprint (see :mod:`repro.values.wavelet`)."""
        return self.wavelet.size_bytes()

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        return self.wavelet.invariant_issues(tolerance)

    def sample_value(self, rng: random.Random) -> int:
        vector = [max(0.0, mass) for mass in self.wavelet.reconstruct()]
        total = sum(vector)
        if total <= 0.0:
            return self.wavelet.domain[0]
        pick = rng.uniform(0.0, total)
        acc = 0.0
        for cell, mass in enumerate(vector):
            acc += mass
            if acc >= pick:
                lo = self.wavelet.domain_lo + cell * self.wavelet.cell_width
                return rng.randint(lo, lo + self.wavelet.cell_width - 1)
        return self.wavelet.domain[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaveletSummary({self.wavelet!r})"


def _copy_pst(tree: PrunedSuffixTree) -> PrunedSuffixTree:
    """Structural deep copy of a PST (iterative, avoids recursion limits)."""
    clone = PrunedSuffixTree(tree.max_depth)
    clone.root.count = tree.root.count
    stack = [(tree.root, clone.root)]
    nodes = 0
    while stack:
        source, target = stack.pop()
        for char, child in source.children.items():
            copied = _Node(char, target)
            copied.count = child.count
            target.children[char] = copied
            nodes += 1
            stack.append((child, copied))
    clone._node_count = nodes
    return clone


class StringSummary(ValueSummary):
    """STRING summary: a pruned suffix tree."""

    value_type = ValueType.STRING

    def __init__(self, pst: PrunedSuffixTree) -> None:
        self.pst = pst

    @classmethod
    def from_values(
        cls, values: Iterable[str], config: SummaryConfig
    ) -> "StringSummary":
        strings = list(values)
        max_nodes = min(
            config.pst_max_nodes,
            max(24, config.pst_nodes_per_string * len(strings)),
        )
        tree = PrunedSuffixTree.from_strings(
            strings, max_depth=config.pst_max_depth, max_nodes=max_nodes
        )
        return cls(tree)

    @property
    def count(self) -> float:
        return float(self.pst.string_count)

    def selectivity(self, predicate: Predicate) -> float:
        if not isinstance(predicate, SubstringPredicate):
            raise TypeError(f"STRING summary cannot evaluate {predicate!r}")
        return self.pst.selectivity(predicate.needle)

    def atomic_predicates(self, limit: int = 48) -> List[Predicate]:
        """Indexed substrings, mixing frequent and rare ones.

        Using only top-count substrings would make leaf pruning look free
        in the Δ metric (pruning damages *rare* substrings first), so the
        atomic set takes half from the top and half from the bottom of
        the count ranking.  Both ends are heap-selected (O(n log limit)),
        preserving the full-sort order exactly — the ``(-count,
        substring)`` key is unique per substring, so head and tail slices
        are well defined without materializing the middle.
        """
        items = list(self.pst.substrings())
        key = lambda item: (-item[1], item[0])  # noqa: E731
        if len(items) <= limit:
            chosen = sorted(items, key=key)
        else:
            head = limit - limit // 2
            chosen = heapq.nsmallest(head, items, key=key)
            chosen.extend(reversed(heapq.nlargest(limit // 2, items, key=key)))
        return [SubstringPredicate(substring) for substring, _ in chosen]

    def fuse(self, other: "ValueSummary") -> "StringSummary":
        if not isinstance(other, StringSummary):
            raise TypeError("can only fuse STRING with STRING")
        return StringSummary(fuse_psts(self.pst, other.pst))

    @property
    def can_compress(self) -> bool:
        return self.pst.can_prune

    def compress(self, amount: int = 1) -> Optional["StringSummary"]:
        if not self.can_compress:
            return None
        clone = _copy_pst(self.pst)
        pruned = clone.prune_leaves(amount)
        if pruned == 0:
            return None
        return StringSummary(clone)

    def size_bytes(self) -> int:
        """Storage footprint (see :mod:`repro.values.pst`)."""
        return self.pst.size_bytes()

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        del tolerance  # trie counts are integral; no float comparisons
        return self.pst.invariant_issues()

    def sample_value(self, rng: random.Random, max_length: int = 24) -> str:
        """Generate a plausible string by a count-weighted trie walk.

        Produces Markov-style text whose substring statistics follow the
        summarized distribution (it is *not* guaranteed to be one of the
        original strings).
        """
        chars: List[str] = []
        node = self.pst.root
        while len(chars) < max_length:
            children = node.children
            if not children:
                break
            total = sum(child.count for child in children.values())
            # Allow termination proportional to the count drop-off.
            stop_weight = max(0.0, node.count - total) if node is not self.pst.root else 0.0
            pick = rng.uniform(0.0, total + stop_weight)
            if pick > total:
                break
            acc = 0.0
            for char, child in children.items():
                acc += child.count
                if acc >= pick:
                    chars.append(char)
                    node = child
                    break
        return "".join(chars)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringSummary({self.pst!r})"


class TextSummary(ValueSummary):
    """TEXT summary: an end-biased term histogram.

    The detailed reference form indexes every non-zero term exactly;
    compression demotes terms into the uniform bucket.
    """

    value_type = ValueType.TEXT

    def __init__(self, ebth: EndBiasedTermHistogram) -> None:
        self.ebth = ebth

    @classmethod
    def from_values(
        cls, values: Iterable[frozenset], config: SummaryConfig
    ) -> "TextSummary":
        centroid = TermCentroid.from_term_sets(values)
        return cls(
            EndBiasedTermHistogram.from_centroid(centroid, config.vocabulary)
        )

    @property
    def count(self) -> float:
        return float(self.ebth.count)

    def selectivity(self, predicate: Predicate) -> float:
        if isinstance(predicate, KeywordPredicate):
            return self.ebth.selectivity(predicate.terms)
        if isinstance(predicate, AtLeastKPredicate):
            return self._at_least_k(predicate)
        raise TypeError(f"TEXT summary cannot evaluate {predicate!r}")

    def _at_least_k(self, predicate: AtLeastKPredicate) -> float:
        """P(at least k of the probe terms occur), assuming per-term
        independence within the cluster: the Poisson-binomial tail,
        computed by the standard O(m*k) dynamic program."""
        probabilities = [
            self.ebth.frequency(term) for term in predicate.sorted_terms()
        ]
        threshold = predicate.threshold
        # distribution[j] = P(exactly j matches among terms seen so far),
        # with counts >= threshold collapsed into the tail slot.
        distribution = [1.0] + [0.0] * threshold
        for probability in probabilities:
            updated = [0.0] * (threshold + 1)
            for count, mass in enumerate(distribution):
                if mass == 0.0:
                    continue
                hit = min(threshold, count + 1)
                updated[hit] += mass * probability
                updated[count] += mass * (1.0 - probability)
            # The tail slot absorbs its own hits correctly because
            # min(threshold, threshold + 1) == threshold.
            distribution = updated
        return distribution[threshold]

    def atomic_predicates(self, limit: int = 48) -> List[Predicate]:
        ranked = heapq.nsmallest(
            limit, self.ebth.exact.items(), key=lambda item: (-item[1], item[0])
        )
        predicates = [
            KeywordPredicate([self.ebth.vocabulary.term_of(term_id)])
            for term_id, _ in ranked
        ]
        if len(predicates) < limit:
            # Include a few bucket terms so compression of the uniform
            # bucket average is also observable in the Δ metric.
            extra = [
                term_id
                for term_id in self.ebth.bitmap
                if term_id not in self.ebth.exact
            ]
            for term_id in extra[: limit - len(predicates)]:
                predicates.append(
                    KeywordPredicate([self.ebth.vocabulary.term_of(term_id)])
                )
        return predicates

    def fuse(self, other: "ValueSummary") -> "TextSummary":
        if not isinstance(other, TextSummary):
            raise TypeError("can only fuse TEXT with TEXT")
        return TextSummary(fuse_ebth(self.ebth, other.ebth))

    @property
    def can_compress(self) -> bool:
        return self.ebth.can_compress

    def compress(self, amount: int = 1) -> Optional["TextSummary"]:
        if not self.can_compress:
            return None
        return TextSummary(self.ebth.compress(amount))

    def size_bytes(self) -> int:
        """Storage footprint (see :mod:`repro.values.ebth`)."""
        return self.ebth.size_bytes()

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        return self.ebth.invariant_issues(tolerance)

    def sample_value(self, rng: random.Random, max_terms: int = 64) -> frozenset:
        """Draw a synthetic term set: each term kept with its frequency."""
        terms = []
        vocabulary = self.ebth.vocabulary
        for term_id in self.ebth.bitmap:
            if len(terms) >= max_terms:
                break
            if rng.random() < self.ebth.frequency_by_id(term_id):
                terms.append(vocabulary.term_of(term_id))
        return frozenset(terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextSummary({self.ebth!r})"


def build_summary(
    value_type: ValueType,
    values: Sequence,
    config: SummaryConfig,
) -> Optional[ValueSummary]:
    """Construct the detailed summary for a collection of typed values."""
    if value_type is ValueType.NULL:
        return None
    if value_type is ValueType.NUMERIC:
        if config.numeric_summary == "wavelet":
            return WaveletSummary.from_values(values, config)
        if config.numeric_summary != "histogram":
            raise ValueError(
                f"unknown numeric_summary {config.numeric_summary!r}"
            )
        return HistogramSummary.from_values(values, config)
    if value_type is ValueType.STRING:
        return StringSummary.from_values(values, config)
    if value_type is ValueType.TEXT:
        return TextSummary.from_values(values, config)
    raise ValueError(f"unknown value type {value_type!r}")


def fuse_summaries(
    first: Optional[ValueSummary], second: Optional[ValueSummary]
) -> Optional[ValueSummary]:
    """Fuse two (possibly absent) summaries of the same type."""
    if first is None:
        return second
    if second is None:
        return first
    return first.fuse(second)

"""Value-summary substrate for XCluster synopses (paper Section 3).

Three approximation mechanisms, one per value type:

* NUMERIC — :class:`~repro.values.histogram.Histogram`: bucketed frequency
  distributions with equi-depth construction, bucket *alignment + merge*
  fusion (used during node merges), and adjacent-pair compression (the
  ``hist_cmprs`` operation);
* STRING — :class:`~repro.values.pst.PrunedSuffixTree`: substring counts
  with greedy maximal-overlap Markovian estimation, and error-driven leaf
  pruning (the ``st_cmprs`` operation) that retains at least one node per
  symbol and preserves the PST monotonicity constraint;
* TEXT — :class:`~repro.values.ebth.EndBiasedTermHistogram`: the paper's
  novel summary for Boolean term-vector centroids, combining exact top
  frequencies with a run-length-compressed 0/1 uniform bucket (the
  ``tv_cmprs`` operation trims the exact part).

:mod:`repro.values.summary` wraps all three behind the uniform
:class:`~repro.values.summary.ValueSummary` interface that the synopsis
core consumes (selectivity lookup, fusion, compression, atomic predicates
for the Δ metric, and byte-accurate size accounting).
"""

from repro.values.rle import RunLengthBitmap
from repro.values.histogram import Histogram, HistogramBucket
from repro.values.pst import PrunedSuffixTree
from repro.values.termvector import TermCentroid, Vocabulary
from repro.values.ebth import EndBiasedTermHistogram
from repro.values.wavelet import HaarWavelet, haar_transform, inverse_haar
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    TextSummary,
    ValueSummary,
    WaveletSummary,
    build_summary,
    fuse_summaries,
)

__all__ = [
    "RunLengthBitmap",
    "Histogram",
    "HistogramBucket",
    "PrunedSuffixTree",
    "TermCentroid",
    "Vocabulary",
    "EndBiasedTermHistogram",
    "HaarWavelet",
    "haar_transform",
    "inverse_haar",
    "WaveletSummary",
    "ValueSummary",
    "HistogramSummary",
    "StringSummary",
    "TextSummary",
    "build_summary",
    "fuse_summaries",
]

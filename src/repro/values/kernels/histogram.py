"""Histogram kernels: heap-driven ``hist_cmprs``.

The reference :meth:`Histogram.compress` rescans every adjacent bucket
pair (:meth:`Histogram.best_merge_index`) and rebuilds the full bucket
tuple per merge — O(buckets) twice per step.
:class:`HistogramCompressionKernel` replays the *exact* same greedy
merge sequence from a priority queue over pair scores, maintained on a
doubly linked list of live bucket slots: each merge pops the global
minimum, splices out one slot, and rescores only the two pairs adjacent
to the merged bucket (stale entries are skipped on pop via per-slot
stamps).  Ties break toward the lower bucket index, matching the
reference's first-minimum scan, and the score arithmetic is the
reference expression verbatim, so decisions are bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.values.histogram import Histogram, HistogramBucket


class HistogramCompressionKernel:
    """Incremental ``hist_cmprs`` over one histogram's bucket chain."""

    __slots__ = ("_buckets", "_next", "_prev", "_heap", "_entry", "_stamp", "_live")

    def __init__(self, histogram: Histogram) -> None:
        buckets = list(histogram.buckets)
        size = len(buckets)
        #: Slot -> live bucket (``None`` once merged away).
        self._buckets: List[Optional[HistogramBucket]] = buckets
        self._next = list(range(1, size)) + [-1] if size else []
        self._prev = [-1] + list(range(size - 1)) if size else []
        #: Entries: (score, left bucket lo, stamp, left slot).
        self._heap: List[Tuple[float, int, int, int]] = []
        #: Left slot -> stamp of its current (non-stale) entry.
        self._entry: Dict[int, int] = {}
        self._stamp = 0
        self._live = size
        for slot in range(size - 1):
            self._push(slot)

    def _push(self, left_slot: int) -> None:
        """(Re)score the pair whose left bucket lives in ``left_slot``."""
        right_slot = self._next[left_slot]
        if right_slot < 0:
            self._entry.pop(left_slot, None)
            return
        left = self._buckets[left_slot]
        right = self._buckets[right_slot]
        # Reference scoring expression, verbatim (bit-exact parity).
        merged_width = right.hi - left.lo + 1
        merged_count = left.count + right.count
        merged_estimate = merged_count * (left.width / merged_width)
        score = (left.count - merged_estimate) ** 2
        self._stamp += 1
        self._entry[left_slot] = self._stamp
        heapq.heappush(self._heap, (score, left.lo, self._stamp, left_slot))

    @property
    def bucket_count(self) -> int:
        return self._live

    def merge(self, count: int) -> int:
        """Apply up to ``count`` more pair merges; returns merges done."""
        heap = self._heap
        entries = self._entry
        merged = 0
        while merged < count and self._live > 1:
            while heap:
                _, _, stamp, left_slot = heap[0]
                if entries.get(left_slot) == stamp:
                    break
                heapq.heappop(heap)
            else:
                break
            heapq.heappop(heap)
            right_slot = self._next[left_slot]
            left = self._buckets[left_slot]
            right = self._buckets[right_slot]
            self._buckets[left_slot] = HistogramBucket(
                left.lo, right.hi, left.count + right.count
            )
            self._buckets[right_slot] = None
            entries.pop(right_slot, None)
            after = self._next[right_slot]
            self._next[left_slot] = after
            if after >= 0:
                self._prev[after] = left_slot
            self._live -= 1
            merged += 1
            self._push(left_slot)
            before = self._prev[left_slot]
            if before >= 0:
                self._push(before)
        return merged

    def snapshot(self) -> Histogram:
        """The current bucket chain as an immutable histogram."""
        return Histogram([bucket for bucket in self._buckets if bucket is not None])


def compress_histogram(histogram: Histogram, buckets_to_remove: int = 1) -> Histogram:
    """``hist_cmprs`` via the kernel — bit-exact with ``Histogram.compress``."""
    if buckets_to_remove < 0:
        raise ValueError("buckets_to_remove must be >= 0")
    if buckets_to_remove == 0 or histogram.bucket_count < 2:
        return histogram
    kernel = HistogramCompressionKernel(histogram)
    kernel.merge(buckets_to_remove)
    return kernel.snapshot()

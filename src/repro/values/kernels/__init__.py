"""Optimized execution kernels for the value-summary families.

The classes in :mod:`repro.values` stay the bit-exact reference oracles
(the same pattern as the scoring and estimation engines): every kernel
here produces *identical* results — same prune/merge decisions, same
counts, same float arithmetic — while replacing the scalar hot loops:

* :mod:`repro.values.kernels.pst` — an incremental pruning-error
  priority queue for ``st_cmprs`` (lazy invalidation keyed on the one
  suffix node each Markov estimate depends on) and single-pass
  run-merge PST fusion;
* :mod:`repro.values.kernels.histogram` — heap-driven ``hist_cmprs``
  that replays the exact greedy merge sequence without rescanning all
  adjacent pairs per step;
* :mod:`repro.values.kernels.ebth` — vocabulary-id array fusion over
  run cursors and incremental ``tv_cmprs`` demotion chains;
* :mod:`repro.values.kernels.queue` — the per-node compression steppers
  the builder's phase-2 priority queue drives.
"""

from repro.values.kernels.ebth import EBTHCompressionKernel, fuse_ebth
from repro.values.kernels.histogram import (
    HistogramCompressionKernel,
    compress_histogram,
)
from repro.values.kernels.pst import (
    PSTPruneKernel,
    fuse_psts,
    prune_leaves_reference,
)


def __getattr__(name):
    # The stepper layer imports repro.values.summary, which itself uses
    # the fusion/compression kernels above — loading it lazily keeps this
    # package importable from summary.py without a cycle (PEP 562).
    if name in ("SummaryStepper", "make_stepper"):
        from repro.values.kernels import queue

        return getattr(queue, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EBTHCompressionKernel",
    "HistogramCompressionKernel",
    "PSTPruneKernel",
    "SummaryStepper",
    "compress_histogram",
    "fuse_ebth",
    "fuse_psts",
    "make_stepper",
    "prune_leaves_reference",
]

"""PST kernels: incremental ``st_cmprs`` and run-merge fusion.

``st_cmprs`` prunes leaves in increasing pruning-error order, re-ranking
after every deletion (see :meth:`PrunedSuffixTree.prune_leaves`).  The
scalar way to do that — re-enumerate every prunable leaf, recompute every
Markov estimate, re-sort, per deletion — is quadratic in the tree size
and is kept here only as the parity oracle
(:func:`prune_leaves_reference`).

:class:`PSTPruneKernel` gets the same prune sequence from a priority
queue with *lazy invalidation*.  The key observation: during pruning,
node counts never change and the depth-1 symbol layer survives, so a
leaf's pruning error depends on tree structure only through the single
conditioning-suffix node its Markov estimate used
(:meth:`PrunedSuffixTree._markov_estimate_details` reports it).  Deleting
a leaf therefore invalidates exactly (a) the leaves whose recorded suffix
dependency was the deleted node and (b) the parent it may have exposed as
a new prunable leaf — everything else keeps its score.  Substring keys
are memoized per node (computed once by a path-carrying DFS) instead of
being re-derived by parent walks.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.values.pst import PrunedSuffixTree, _Node


def prune_leaves_reference(tree: PrunedSuffixTree, count: int) -> int:
    """Scalar ``st_cmprs`` oracle: full re-rank after every deletion.

    Deletes, ``count`` times, the prunable leaf minimizing
    ``(pruning_error, -count, substring)`` — recomputing every leaf's
    error from scratch each time.  :class:`PSTPruneKernel` must produce
    the exact same prune sequence; the parity tests pin that.
    """
    pruned = 0
    while pruned < count:
        leaves = tree._prunable_leaves()
        if not leaves:
            break
        victim = min(
            leaves,
            key=lambda node: (tree.pruning_error(node), -node.count, node.substring()),
        )
        del victim.parent.children[victim.char]
        tree._node_count -= 1
        pruned += 1
    return pruned


class PSTPruneKernel:
    """Incremental ``st_cmprs`` executor over one (mutated) PST.

    The queue holds ``(error, -count, substring, serial, node)`` entries;
    ``substring`` makes the key a total order (trie substrings are
    unique), and ``serial`` per-node stamps make superseded entries
    skippable on pop.  ``prune(a)`` followed by ``prune(b)`` prunes
    exactly the same leaves as ``prune(a + b)`` — the greedy sequence is
    a fixed point of the tree state — which is what lets the builder's
    compression steppers serve successive ``st_cmprs`` candidates
    without restarting.
    """

    __slots__ = (
        "tree",
        "_heap",
        "_latest",
        "_substrings",
        "_dependents",
        "_dependency",
        "_serial",
    )

    def __init__(self, tree: PrunedSuffixTree) -> None:
        self.tree = tree
        self._heap: List[Tuple[float, int, str, int, _Node]] = []
        #: Liveness + freshness: node -> serial of its current entry.
        self._latest: Dict[_Node, int] = {}
        #: Memoized substring keys (computed once per node).
        self._substrings: Dict[_Node, str] = {}
        #: suffix node -> prunable leaves whose estimate used it.
        self._dependents: Dict[_Node, Set[_Node]] = {}
        #: prunable leaf -> suffix node its current estimate used.
        self._dependency: Dict[_Node, _Node] = {}
        self._serial = 0
        self._seed()

    def _seed(self) -> None:
        """Score every prunable leaf once, via a path-carrying DFS."""
        stack = [
            (child, char) for char, child in self.tree.root.children.items()
        ]
        while stack:
            node, substring = stack.pop()
            if node.children:
                stack.extend(
                    (child, substring + char)
                    for char, child in node.children.items()
                )
            elif len(substring) >= 2:  # depth-1 symbol layer is protected
                self._push(node, substring)

    def _push(self, leaf: _Node, substring: str) -> None:
        """(Re)score one prunable leaf and register its dependency."""
        self._substrings[leaf] = substring
        error, used = self.tree.pruning_error_details(leaf, substring)
        previous = self._dependency.pop(leaf, None)
        if previous is not None:
            dependents = self._dependents.get(previous)
            if dependents is not None:
                dependents.discard(leaf)
        if used is not None:
            self._dependency[leaf] = used
            self._dependents.setdefault(used, set()).add(leaf)
        self._serial += 1
        self._latest[leaf] = self._serial
        heapq.heappush(
            self._heap, (error, -leaf.count, substring, self._serial, leaf)
        )

    @property
    def exhausted(self) -> bool:
        """True when no prunable leaves remain."""
        return not self._latest

    def prune(self, count: int) -> int:
        """Prune up to ``count`` more leaves; returns the number pruned."""
        tree = self.tree
        heap = self._heap
        latest = self._latest
        pruned = 0
        while pruned < count and heap:
            _, _, substring, serial, node = heapq.heappop(heap)
            if latest.get(node) != serial:
                continue  # superseded or already deleted
            parent = node.parent
            del parent.children[node.char]
            tree._node_count -= 1
            pruned += 1
            del latest[node]
            del self._substrings[node]
            used = self._dependency.pop(node, None)
            if used is not None:
                dependents = self._dependents.get(used)
                if dependents is not None:
                    dependents.discard(node)
            # Re-rank the leaves whose Markov estimate used this node.
            for leaf in self._dependents.pop(node, ()):
                if leaf in latest:
                    self._push(leaf, self._substrings[leaf])
            # The deletion may expose the parent as a new prunable leaf.
            if not parent.children and parent.parent is not tree.root:
                self._push(parent, substring[:-1])
        return pruned


def fuse_psts(left: PrunedSuffixTree, right: PrunedSuffixTree) -> PrunedSuffixTree:
    """Single-pass run-merge fusion of two PSTs.

    Bit-identical to the reference :meth:`PrunedSuffixTree.fuse` — union
    of substrings, summed counts, and the same child insertion order
    (left's children first, then right-only children) — but built in one
    simultaneous walk: each merged node is created exactly once, with at
    most one dictionary probe per shared child, instead of the
    reference's two full passes re-resolving every node in the result.
    One-sided subtrees are copied without any merge probes at all.
    """
    result = PrunedSuffixTree(max(left.max_depth, right.max_depth))
    result.root.count = left.root.count + right.root.count
    created = 0
    stack: List[Tuple[Optional[_Node], Optional[_Node], _Node]] = [
        (left.root, right.root, result.root)
    ]
    while stack:
        l_node, r_node, target = stack.pop()
        r_children = r_node.children if r_node is not None else None
        if l_node is not None:
            for char, l_child in l_node.children.items():
                merged = _Node(char, target)
                merged.count = l_child.count
                r_child = r_children.get(char) if r_children else None
                if r_child is not None:
                    merged.count += r_child.count
                target.children[char] = merged
                created += 1
                if l_child.children or (r_child is not None and r_child.children):
                    stack.append((l_child, r_child, merged))
        if r_children:
            l_children = l_node.children if l_node is not None else None
            for char, r_child in r_children.items():
                if l_children and char in l_children:
                    continue
                merged = _Node(char, target)
                merged.count = r_child.count
                target.children[char] = merged
                created += 1
                if r_child.children:
                    stack.append((None, r_child, merged))
    result._node_count = created
    return result

"""Per-node compression steppers for the builder's phase-2 queue.

Phase 2 of XCLUSTERBUILD repeatedly applies the cheapest
``hist_cmprs`` / ``st_cmprs`` / ``tv_cmprs`` step.  Ranking candidates
requires *materializing* each node's next compressed summary, and after
a step is applied the node needs a fresh follow-up candidate — which the
pre-kernel builder produced by re-running the whole compression from the
node's current summary (for PSTs: a full clone plus a from-scratch
re-rank of every prunable leaf, per step).

A :class:`SummaryStepper` owns the incremental kernel state for one
node's summary chain, so the follow-up candidate costs one incremental
advance (heap pops for PSTs and histograms, an order-slice for EBTHs)
plus a snapshot.  Both engines are provided behind the same interface:

* ``make_stepper(summary, "kernel")`` — the incremental kernels;
* ``make_stepper(summary, "reference")`` — the scalar oracles
  (``Histogram.compress``, :func:`prune_leaves_reference`,
  ``EndBiasedTermHistogram.compress``), used for parity testing and as
  the benchmark baseline.

Every stepper records the summary object its state continues from in
``expected``; the builder recreates the stepper whenever the node's
summary was replaced by something else (lazy revalidation, the same
stamp-and-check pattern as the candidate pool and the synopsis
indexes).
"""

from __future__ import annotations

from typing import Optional

from repro.values.kernels.ebth import EBTHCompressionKernel
from repro.values.kernels.histogram import HistogramCompressionKernel
from repro.values.kernels.pst import PSTPruneKernel, prune_leaves_reference
from repro.values.summary import (
    HistogramSummary,
    StringSummary,
    TextSummary,
    ValueSummary,
    _copy_pst,
)


class SummaryStepper:
    """One node's compression chain: successive ``compress`` snapshots."""

    #: Timer family the builder attributes this stepper's work to.
    family = "value_cmprs"

    def __init__(self, summary: ValueSummary) -> None:
        #: The summary the next ``advance`` continues from.
        self.expected: ValueSummary = summary

    def advance(self, amount: int) -> Optional[ValueSummary]:
        """The next summary ``amount`` steps smaller, or ``None``."""
        raise NotImplementedError


class GenericStepper(SummaryStepper):
    """Fallback driving ``ValueSummary.compress`` (wavelets, extensions)."""

    def advance(self, amount: int) -> Optional[ValueSummary]:
        current = self.expected
        if not current.can_compress:
            return None
        compressed = current.compress(amount)
        if compressed is None:
            return None
        self.expected = compressed
        return compressed


class KernelHistogramStepper(SummaryStepper):
    family = "hist_cmprs"

    def __init__(self, summary: HistogramSummary) -> None:
        super().__init__(summary)
        self._kernel = HistogramCompressionKernel(summary.histogram)

    def advance(self, amount: int) -> Optional[ValueSummary]:
        if self._kernel.merge(amount) == 0:
            return None
        compressed = HistogramSummary(self._kernel.snapshot())
        self.expected = compressed
        return compressed


class KernelPSTStepper(SummaryStepper):
    family = "st_cmprs"

    def __init__(self, summary: StringSummary) -> None:
        super().__init__(summary)
        self._working = _copy_pst(summary.pst)
        self._kernel = PSTPruneKernel(self._working)

    def advance(self, amount: int) -> Optional[ValueSummary]:
        if self._kernel.prune(amount) == 0:
            return None
        compressed = StringSummary(_copy_pst(self._working))
        self.expected = compressed
        return compressed


class KernelEBTHStepper(SummaryStepper):
    family = "tv_cmprs"

    def __init__(self, summary: TextSummary) -> None:
        super().__init__(summary)
        self._kernel = EBTHCompressionKernel(summary.ebth)

    def advance(self, amount: int) -> Optional[ValueSummary]:
        if self._kernel.demote(amount) == 0:
            return None
        compressed = TextSummary(self._kernel.snapshot())
        self.expected = compressed
        return compressed


class ReferenceHistogramStepper(SummaryStepper):
    family = "hist_cmprs"

    def advance(self, amount: int) -> Optional[ValueSummary]:
        current = self.expected
        if not current.can_compress:
            return None
        compressed = HistogramSummary(current.histogram.compress(amount))
        self.expected = compressed
        return compressed


class ReferencePSTStepper(SummaryStepper):
    family = "st_cmprs"

    def advance(self, amount: int) -> Optional[ValueSummary]:
        current = self.expected
        clone = _copy_pst(current.pst)
        if prune_leaves_reference(clone, amount) == 0:
            return None
        compressed = StringSummary(clone)
        self.expected = compressed
        return compressed


class ReferenceEBTHStepper(SummaryStepper):
    family = "tv_cmprs"

    def advance(self, amount: int) -> Optional[ValueSummary]:
        current = self.expected
        if not current.can_compress:
            return None
        compressed = TextSummary(current.ebth.compress(amount))
        self.expected = compressed
        return compressed


def make_stepper(summary: ValueSummary, engine: str = "kernel") -> SummaryStepper:
    """The stepper for one summary under the requested engine."""
    if engine not in ("kernel", "reference"):
        raise ValueError(
            f"unknown value engine {engine!r}; expected 'kernel' or 'reference'"
        )
    if isinstance(summary, HistogramSummary):
        return (
            KernelHistogramStepper(summary)
            if engine == "kernel"
            else ReferenceHistogramStepper(summary)
        )
    if isinstance(summary, StringSummary):
        return (
            KernelPSTStepper(summary)
            if engine == "kernel"
            else ReferencePSTStepper(summary)
        )
    if isinstance(summary, TextSummary):
        return (
            KernelEBTHStepper(summary)
            if engine == "kernel"
            else ReferenceEBTHStepper(summary)
        )
    return GenericStepper(summary)

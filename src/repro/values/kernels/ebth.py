"""EBTH kernels: id-array fusion and incremental ``tv_cmprs`` chains.

The reference :meth:`EndBiasedTermHistogram.fuse` resolves both sides'
frequencies per union term through ``frequency_by_id`` — a dict probe
plus an O(log runs) bitmap bisection each — and the reference
``tv_cmprs`` re-sorts the surviving exact terms on every step.  The
kernels keep the arithmetic verbatim (bit-exact parity) while walking
the run-length bitmaps with amortized-O(1) ascending cursors and
computing the global demotion order exactly once per source histogram.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.values.ebth import EndBiasedTermHistogram
from repro.values.rle import RunLengthBitmap


class _RunCursor:
    """Amortized-O(1) membership tests for ascending id queries."""

    __slots__ = ("_runs", "_index")

    def __init__(self, bitmap: RunLengthBitmap) -> None:
        self._runs = bitmap.runs
        self._index = 0

    def contains(self, position: int) -> bool:
        runs = self._runs
        index = self._index
        while index < len(runs) and runs[index][1] < position:
            index += 1
        self._index = index
        return index < len(runs) and runs[index][0] <= position


def fuse_ebth(
    left: EndBiasedTermHistogram, right: EndBiasedTermHistogram
) -> EndBiasedTermHistogram:
    """Fuse two EBTHs — bit-exact with the reference ``fuse``.

    The union bitmap is walked once in ascending id order with run
    cursors into both sides, so each term costs one dict probe per side
    instead of a probe plus a bitmap bisection; weights, the top-``keep``
    split, and the bucket re-average use the reference expressions on
    the same ranked order.
    """
    if left.vocabulary is not right.vocabulary:
        raise ValueError("cannot fuse histograms over different vocabularies")
    total = left.count + right.count
    if total == 0:
        return EndBiasedTermHistogram.empty(left.vocabulary)
    union = left.bitmap.union(right.bitmap)
    left_exact = left.exact
    right_exact = right.exact
    left_average = left.bucket_average
    right_average = right.bucket_average
    left_count = left.count
    right_count = right.count
    left_cursor = _RunCursor(left.bitmap)
    right_cursor = _RunCursor(right.bitmap)
    weights: Dict[int, float] = {}
    for term_id in union:
        frequency_left = left_exact.get(term_id)
        if frequency_left is None:
            frequency_left = (
                left_average if left_cursor.contains(term_id) else 0.0
            )
        frequency_right = right_exact.get(term_id)
        if frequency_right is None:
            frequency_right = (
                right_average if right_cursor.contains(term_id) else 0.0
            )
        weights[term_id] = (
            frequency_left * left_count + frequency_right * right_count
        ) / total
    keep = min(len(weights), len(left_exact) + len(right_exact))
    ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
    exact = dict(ranked[:keep])
    rest = ranked[keep:]
    average = sum(weight for _, weight in rest) / len(rest) if rest else 0.0
    return EndBiasedTermHistogram(
        left.vocabulary, exact, union, average, len(rest), total
    )


class EBTHCompressionKernel:
    """Incremental ``tv_cmprs``: one global demotion order per source.

    The reference compress on a chain of histograms re-sorts the
    remaining exact terms every step; but each step demotes the current
    minimum-``(frequency, id)`` terms, so the victims of successive
    steps are consecutive slices of *one* ascending order computed from
    the source histogram.  The running bucket average is re-derived with
    the reference arithmetic (``average * members`` then re-divide), so
    chained snapshots are bit-identical to chained reference compresses.
    """

    __slots__ = ("_source", "_order", "_position", "_exact", "_average", "_members")

    def __init__(self, ebth: EndBiasedTermHistogram) -> None:
        self._source = ebth
        self._order: List[Tuple[int, float]] = sorted(
            ebth.exact.items(), key=lambda item: (item[1], item[0])
        )
        self._position = 0
        self._exact: Dict[int, float] = dict(ebth.exact)
        self._average = ebth.bucket_average
        self._members = ebth.bucket_member_count

    @property
    def exact_term_count(self) -> int:
        return len(self._exact)

    def demote(self, count: int) -> int:
        """Demote up to ``count`` more terms; returns the number demoted."""
        take = min(count, len(self._order) - self._position)
        if take <= 0:
            return 0
        bucket_total = self._average * self._members
        for term_id, _ in self._order[self._position : self._position + take]:
            bucket_total += self._exact.pop(term_id)
        self._position += take
        self._members += take
        self._average = bucket_total / self._members if self._members else 0.0
        return take

    def snapshot(self) -> EndBiasedTermHistogram:
        """The current state as an immutable histogram."""
        return EndBiasedTermHistogram(
            self._source.vocabulary,
            dict(self._exact),
            self._source.bitmap,
            self._average,
            self._members,
            self._source.count,
        )

"""End-biased term histograms (the paper's novel TEXT summary, Section 3).

An :class:`EndBiasedTermHistogram` compresses a term-vector centroid
``w`` with two components:

1. the **exact part** — the top-few term frequencies of ``w``, retained
   exactly (term id → frequency);
2. the **uniform bucket** — a *lossless* run-length-compressed encoding of
   the binary version of ``w`` (bit ``t`` set iff ``w[t] > 0``), plus one
   average frequency for all non-exact non-zero terms.

Frequency lookup for term ``t``: exact value if indexed; otherwise the
bucket average if ``t``'s bit is set; otherwise exactly 0.  Keeping the
0/1 bitmap lossless is what lets the summary answer *negative* point
queries with zero error — the failure mode of conventional range-bucket
histograms on term vectors that motivates the design.

The detailed (reference) form indexes *every* non-zero term exactly; the
``tv_cmprs`` compression operation then demotes the lowest-frequency
indexed terms into the uniform bucket, re-averaging its frequency.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.values.rle import RunLengthBitmap
from repro.values.termvector import TermCentroid, Vocabulary

#: Bytes per exact term entry: term id (4) + frequency (4).
EXACT_ENTRY_BYTES = 8
#: Fixed overhead: average bucket frequency (4) + member count (4).
FIXED_BYTES = 8


class EndBiasedTermHistogram:
    """A compressed term-vector centroid (see module docstring).

    Instances are immutable; compression and fusion return new histograms.
    All histograms sharing a synopsis must share one :class:`Vocabulary`.
    """

    __slots__ = (
        "vocabulary",
        "exact",
        "bitmap",
        "bucket_average",
        "bucket_member_count",
        "count",
    )

    def __init__(
        self,
        vocabulary: Vocabulary,
        exact: Mapping[int, float],
        bitmap: RunLengthBitmap,
        bucket_average: float,
        bucket_member_count: int,
        count: int,
    ) -> None:
        for term_id in exact:
            if term_id not in bitmap:
                raise ValueError(
                    "every exactly-indexed term must have its bitmap bit set"
                )
        if bucket_member_count < 0:
            raise ValueError("bucket_member_count must be non-negative")
        if bucket_member_count != len(bitmap) - len(exact):
            raise ValueError(
                "bucket_member_count must equal non-exact set bits "
                f"({len(bitmap) - len(exact)}), got {bucket_member_count}"
            )
        self.vocabulary = vocabulary
        self.exact: Dict[int, float] = dict(exact)
        self.bitmap = bitmap
        self.bucket_average = bucket_average
        self.bucket_member_count = bucket_member_count
        self.count = count

    # -- construction -------------------------------------------------------

    @classmethod
    def from_centroid(
        cls,
        centroid: TermCentroid,
        vocabulary: Vocabulary,
        exact_terms: Optional[int] = None,
    ) -> "EndBiasedTermHistogram":
        """Build from an exact centroid.

        Args:
            centroid: the term-vector centroid to compress.
            vocabulary: the shared term-id space (terms are interned).
            exact_terms: how many top frequencies to retain exactly;
                ``None`` retains all (the detailed reference form).
        """
        ids_and_weights = sorted(
            ((vocabulary.intern(term), weight) for term, weight in centroid.weights.items()),
            key=lambda item: (-item[1], item[0]),
        )
        if exact_terms is None:
            exact_terms = len(ids_and_weights)
        exact = dict(ids_and_weights[:exact_terms])
        rest = ids_and_weights[exact_terms:]
        bitmap = RunLengthBitmap.from_ids(
            term_id for term_id, _ in ids_and_weights
        )
        average = sum(weight for _, weight in rest) / len(rest) if rest else 0.0
        return cls(vocabulary, exact, bitmap, average, len(rest), centroid.count)

    @classmethod
    def empty(cls, vocabulary: Vocabulary) -> "EndBiasedTermHistogram":
        return cls(vocabulary, {}, RunLengthBitmap.empty(), 0.0, 0, 0)

    # -- lookups ----------------------------------------------------------------

    def frequency_by_id(self, term_id: int) -> float:
        """Estimated fractional frequency of a term id."""
        exact = self.exact.get(term_id)
        if exact is not None:
            return exact
        if term_id in self.bitmap:
            return self.bucket_average
        return 0.0

    def frequency(self, term: str) -> float:
        """Estimated fractional frequency of a term."""
        term_id = self.vocabulary.get(term)
        if term_id < 0:
            return 0.0
        return self.frequency_by_id(term_id)

    def selectivity(self, terms: Iterable[str]) -> float:
        """Estimated fraction of texts containing *all* of ``terms``.

        Terms are combined under independence within the cluster, the
        Boolean-model analogue of the histogram uniformity assumption.
        """
        result = 1.0
        for term in terms:
            result *= self.frequency(term)
            if result == 0.0:
                return 0.0
        return result

    @property
    def exact_term_count(self) -> int:
        return len(self.exact)

    @property
    def nonzero_term_count(self) -> int:
        return len(self.bitmap)

    def indexed_term_ids(self) -> List[int]:
        """Ids of exactly-indexed terms, lowest frequency first."""
        return [
            term_id
            for term_id, _ in sorted(
                self.exact.items(), key=lambda item: (item[1], item[0])
            )
        ]

    # -- compression (tv_cmprs) ---------------------------------------------------

    @property
    def can_compress(self) -> bool:
        return bool(self.exact)

    def compress(self, demote: int = 1) -> "EndBiasedTermHistogram":
        """``tv_cmprs``: move the ``demote`` lowest-frequency indexed terms
        into the uniform bucket and re-average its frequency."""
        if demote < 0:
            raise ValueError("demote must be >= 0")
        # Heap-select the victims: O(n log demote) vs the full sort of
        # indexed_term_ids(), with the same (frequency, id) order.
        victims = [
            term_id
            for term_id, _ in heapq.nsmallest(
                demote, self.exact.items(), key=lambda item: (item[1], item[0])
            )
        ]
        if not victims:
            return self
        exact = dict(self.exact)
        bucket_total = self.bucket_average * self.bucket_member_count
        for term_id in victims:
            bucket_total += exact.pop(term_id)
        members = self.bucket_member_count + len(victims)
        average = bucket_total / members if members else 0.0
        return EndBiasedTermHistogram(
            self.vocabulary, exact, self.bitmap, average, members, self.count
        )

    # -- fusion ---------------------------------------------------------------------

    def fuse(self, other: "EndBiasedTermHistogram") -> "EndBiasedTermHistogram":
        """Weighted combination of two histograms (node-merge fusion).

        Reconstructs each side's approximate centroid over the union of
        non-zero terms, combines with weights ``|u|/|w|`` and ``|v|/|w|``,
        and keeps as many exact terms as both inputs combined (so fusing
        uncompressed histograms stays lossless, exactly like histogram
        alignment-fusion and PST union-fusion; ``tv_cmprs`` is the only
        operation that sheds detail).
        """
        if self.vocabulary is not other.vocabulary:
            raise ValueError("cannot fuse histograms over different vocabularies")
        total = self.count + other.count
        if total == 0:
            return EndBiasedTermHistogram.empty(self.vocabulary)
        union = self.bitmap.union(other.bitmap)
        weights: Dict[int, float] = {}
        for term_id in union:
            weights[term_id] = (
                self.frequency_by_id(term_id) * self.count
                + other.frequency_by_id(term_id) * other.count
            ) / total
        keep = min(len(weights), len(self.exact) + len(other.exact))
        ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        exact = dict(ranked[:keep])
        rest = ranked[keep:]
        average = sum(weight for _, weight in rest) / len(rest) if rest else 0.0
        return EndBiasedTermHistogram(
            self.vocabulary, exact, union, average, len(rest), total
        )

    # -- integrity ---------------------------------------------------------------------

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        """Structural issues of the end-biased encoding (empty = healthy).

        The machine-checkable form of the summary's design contract:

        * **exact/bucket disjointness** — every exactly-indexed term has
          its bitmap bit set, and the uniform bucket covers exactly the
          remaining set bits (``bucket_member_count`` consistency);
        * **end-biased ordering** — the exact part holds the *top*
          frequencies, so no exact frequency may fall below the uniform
          bucket average (``from_centroid``, ``fuse``, and ``compress``
          all preserve this);
        * frequencies are fractions in ``[0, 1]``, the bucket average is
          non-negative, and the text count is non-negative;
        * the underlying run-length bitmap is well-formed.
        """
        issues: List[str] = []
        for term_id, frequency in self.exact.items():
            if term_id not in self.bitmap:
                issues.append(
                    f"exact term {term_id} has no bitmap bit (exact/bucket overlap)"
                )
            if frequency < -tolerance or frequency > 1.0 + tolerance:
                issues.append(
                    f"exact term {term_id} frequency {frequency!r} outside [0, 1]"
                )
        expected_members = len(self.bitmap) - len(self.exact)
        if self.bucket_member_count != expected_members:
            issues.append(
                f"bucket member count {self.bucket_member_count} != "
                f"{expected_members} non-exact set bits"
            )
        if self.bucket_average < -tolerance or self.bucket_average > 1.0 + tolerance:
            issues.append(
                f"bucket average {self.bucket_average!r} outside [0, 1]"
            )
        if self.bucket_member_count > 0 and self.exact:
            floor = min(self.exact.values())
            if floor < self.bucket_average - tolerance:
                issues.append(
                    f"exact frequency {floor!r} below the bucket average "
                    f"{self.bucket_average!r} (end-biased ordering)"
                )
        if self.count < 0:
            issues.append(f"text count {self.count} is negative")
        issues.extend(self.bitmap.invariant_issues())
        return issues

    # -- accounting --------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Storage footprint: exact entries + bitmap runs + header."""
        return (
            EXACT_ENTRY_BYTES * len(self.exact)
            + self.bitmap.size_bytes()
            + FIXED_BYTES
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EndBiasedTermHistogram(exact={len(self.exact)}, "
            f"bucket={self.bucket_member_count}, texts={self.count})"
        )

"""Boolean term vectors and their centroids (paper Sections 2-3).

Under the set-theoretic IR model, a TEXT value is a Boolean vector over a
term dictionary.  The summary for a cluster of TEXT elements is the
*centroid* of the member vectors: ``w[t]`` is the fractional frequency of
term ``t`` (the fraction of texts containing ``t``).

:class:`Vocabulary` assigns stable integer ids to terms so that all
end-biased term histograms in a synopsis share one id space (their
run-length bitmaps must agree on term positions).  :class:`TermCentroid`
is the exact (uncompressed) centroid with the weighted-combination fusion
rule of Section 4.1.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple


class Vocabulary:
    """A bidirectional term <-> integer-id mapping shared per synopsis."""

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []

    def intern(self, term: str) -> int:
        """Return the id of ``term``, assigning the next free id if new."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def id_of(self, term: str) -> int:
        """The id of a known term.

        Raises:
            KeyError: if the term was never interned.
        """
        return self._term_to_id[term]

    def get(self, term: str) -> int:
        """The id of ``term``, or -1 when unknown."""
        return self._term_to_id.get(term, -1)

    def term_of(self, term_id: int) -> str:
        """The term with the given id (IndexError if out of range)."""
        return self._id_to_term[term_id]

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)


class TermCentroid:
    """The exact centroid of a collection of Boolean term vectors.

    Attributes:
        weights: mapping from term to fractional frequency in (0, 1].
        count: number of member vectors (texts).
    """

    __slots__ = ("weights", "count")

    def __init__(self, weights: Mapping[str, float], count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        for term, weight in weights.items():
            if weight <= 0.0 or weight > 1.0 + 1e-9:
                raise ValueError(f"weight of {term!r} out of (0, 1]: {weight}")
        self.weights: Dict[str, float] = dict(weights)
        self.count = count

    @classmethod
    def from_term_sets(cls, term_sets: Iterable[FrozenSet[str]]) -> "TermCentroid":
        """Build the centroid of a collection of texts (term sets)."""
        occurrences: Dict[str, int] = {}
        count = 0
        for terms in term_sets:
            count += 1
            for term in terms:
                occurrences[term] = occurrences.get(term, 0) + 1
        if count == 0:
            return cls({}, 0)
        weights = {term: hits / count for term, hits in occurrences.items()}
        return cls(weights, count)

    def frequency(self, term: str) -> float:
        """The fractional frequency ``w[t]`` (0.0 for absent terms)."""
        return self.weights.get(term, 0.0)

    def fuse(self, other: "TermCentroid") -> "TermCentroid":
        """The weighted combination ``(|u| w_u + |v| w_v) / (|u| + |v|)``."""
        total = self.count + other.count
        if total == 0:
            return TermCentroid({}, 0)
        weights: Dict[str, float] = {}
        for centroid in (self, other):
            share = centroid.count / total
            for term, weight in centroid.weights.items():
                weights[term] = weights.get(term, 0.0) + weight * share
        return TermCentroid(weights, total)

    def top_terms(self, limit: int) -> List[Tuple[str, float]]:
        """The ``limit`` highest-frequency terms, deterministic order.

        Heap-selected (O(n log limit)); the ``(-weight, term)`` key is
        unique per term, so the order matches the full sort exactly.
        """
        return heapq.nsmallest(
            limit, self.weights.items(), key=lambda item: (-item[1], item[0])
        )

    @property
    def term_count(self) -> int:
        return len(self.weights)

    def size_bytes(self) -> int:
        """Uncompressed footprint: 8 bytes per non-zero term entry."""
        return 8 * len(self.weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TermCentroid(terms={len(self.weights)}, count={self.count})"

"""Haar-wavelet summaries for NUMERIC values (paper §3, alternatives).

The paper names wavelets (Matias-Vitter-Wang style) alongside histograms
as interchangeable NUMERIC summarization tools: "our ideas can easily be
extended to other techniques".  This module provides that extension — a
:class:`HaarWavelet` over the value-frequency vector, keeping the ``B``
largest (normalized) coefficients — with the same operation surface the
synopsis core needs: range estimation, coefficient-dropping compression,
and linear fusion (the Haar transform is linear, so summaries over the
same grid fuse by adding coefficients).

The frequency vector is laid over a fixed power-of-two grid of the value
domain; grids of different domains are re-expanded and re-transformed on
fusion.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

#: Bytes per retained coefficient: index (4) + value (4).
COEFFICIENT_BYTES = 8
#: Fixed header: domain lo (4) + cell width (4) + length (4).
HEADER_BYTES = 12

#: Maximum grid length; wider domains use coarser (multi-integer) cells.
MAX_GRID = 1024


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


def haar_transform(vector: Sequence[float]) -> List[float]:
    """The (unnormalized) Haar decomposition of a power-of-two vector.

    Index 0 holds the overall average; detail coefficients follow in the
    standard wavelet ordering.
    """
    length = len(vector)
    if length & (length - 1):
        raise ValueError("haar_transform needs a power-of-two length")
    data = list(vector)
    output = [0.0] * length
    width = length
    while width > 1:
        half = width // 2
        for index in range(half):
            a = data[2 * index]
            b = data[2 * index + 1]
            data[index] = (a + b) / 2.0
            output[half + index] = (a - b) / 2.0
        width = half
    output[0] = data[0]
    return output


def inverse_haar(coefficients: Sequence[float]) -> List[float]:
    """Invert :func:`haar_transform`."""
    length = len(coefficients)
    if length & (length - 1):
        raise ValueError("inverse_haar needs a power-of-two length")
    data = list(coefficients)
    width = 1
    while width < length:
        next_data = [0.0] * (2 * width)
        for index in range(width):
            average = data[index]
            detail = coefficients[width + index] if width + index < length else 0.0
            next_data[2 * index] = average + detail
            next_data[2 * index + 1] = average - detail
        data[: 2 * width] = next_data
        width *= 2
    return data[:length]


class HaarWavelet:
    """A truncated Haar-wavelet synopsis of a value-frequency vector."""

    __slots__ = ("domain_lo", "cell_width", "length", "coefficients", "total")

    def __init__(
        self,
        domain_lo: int,
        cell_width: int,
        length: int,
        coefficients: Dict[int, float],
        total: float,
    ) -> None:
        if length & (length - 1):
            raise ValueError("grid length must be a power of two")
        if cell_width < 1:
            raise ValueError("cell width must be >= 1")
        self.domain_lo = domain_lo
        self.cell_width = cell_width
        self.length = length
        self.coefficients = dict(coefficients)
        self.total = total

    # -- construction -------------------------------------------------------

    @classmethod
    def from_values(
        cls, values: Iterable[int], max_coefficients: int = 64
    ) -> "HaarWavelet":
        ordered = sorted(values)
        if not ordered:
            return cls(0, 1, 1, {}, 0.0)
        lo, hi = ordered[0], ordered[-1]
        span = hi - lo + 1
        cell_width = max(1, (span + MAX_GRID - 1) // MAX_GRID)
        length = _next_power_of_two(max(1, (span + cell_width - 1) // cell_width))
        vector = [0.0] * length
        for value in ordered:
            vector[(value - lo) // cell_width] += 1.0
        return cls.from_vector(lo, cell_width, vector, max_coefficients)

    @classmethod
    def from_vector(
        cls,
        domain_lo: int,
        cell_width: int,
        vector: Sequence[float],
        max_coefficients: int,
    ) -> "HaarWavelet":
        """Transform a frequency vector and keep the top coefficients.

        Retention uses the standard normalized-magnitude criterion
        (coefficient magnitude scaled by sqrt of its support), which
        minimizes the L2 reconstruction error.
        """
        coefficients = haar_transform(vector)
        total = sum(vector)

        def weight(index: int) -> float:
            if index == 0:
                return float("inf")  # the average is always kept
            level = index.bit_length() - 1
            support = len(vector) // (1 << level)
            return abs(coefficients[index]) * (support**0.5)

        ranked = sorted(range(len(coefficients)), key=weight, reverse=True)
        kept = {
            index: coefficients[index]
            for index in ranked[:max_coefficients]
            if coefficients[index] != 0.0 or index == 0
        }
        return cls(domain_lo, cell_width, len(vector), kept, total)

    # -- reconstruction and estimation -----------------------------------------

    def reconstruct(self) -> List[float]:
        """The approximate frequency vector."""
        dense = [0.0] * self.length
        for index, value in self.coefficients.items():
            dense[index] = value
        return inverse_haar(dense)

    @property
    def domain(self) -> Tuple[int, int]:
        return (
            self.domain_lo,
            self.domain_lo + self.length * self.cell_width - 1,
        )

    def estimate_range(self, low: int, high: int) -> float:
        """Estimated number of values in ``[low, high]``."""
        if high < low or self.total == 0:
            return 0.0
        vector = self.reconstruct()
        lo_cell = (low - self.domain_lo) // self.cell_width
        hi_cell = (high - self.domain_lo) // self.cell_width
        estimate = 0.0
        for cell in range(max(0, lo_cell), min(self.length - 1, hi_cell) + 1):
            cell_lo = self.domain_lo + cell * self.cell_width
            cell_hi = cell_lo + self.cell_width - 1
            overlap = min(cell_hi, high) - max(cell_lo, low) + 1
            fraction = overlap / self.cell_width
            estimate += max(0.0, vector[cell]) * fraction
        return estimate

    def selectivity(self, low: int, high: int) -> float:
        """Estimated fraction of values in ``[low, high]``, clamped."""
        if self.total == 0:
            return 0.0
        return min(1.0, max(0.0, self.estimate_range(low, high) / self.total))

    # -- compression and fusion ---------------------------------------------------

    @property
    def coefficient_count(self) -> int:
        return len(self.coefficients)

    def compress(self, drop: int = 1) -> "HaarWavelet":
        """Drop the ``drop`` smallest-weight detail coefficients."""

        def weight(item: Tuple[int, float]) -> float:
            index, value = item
            if index == 0:
                return float("inf")
            level = index.bit_length() - 1
            support = self.length // (1 << level)
            return abs(value) * (support**0.5)

        ranked = sorted(self.coefficients.items(), key=weight, reverse=True)
        kept = dict(ranked[: max(1, len(ranked) - drop)])
        return HaarWavelet(
            self.domain_lo, self.cell_width, self.length, kept, self.total
        )

    def fuse(self, other: "HaarWavelet") -> "HaarWavelet":
        """Combine two wavelets (sum of the underlying distributions)."""
        if self.total == 0:
            return other
        if other.total == 0:
            return self
        if (
            self.domain_lo == other.domain_lo
            and self.cell_width == other.cell_width
            and self.length == other.length
        ):
            # Same grid: the transform is linear, coefficients add.
            merged = dict(self.coefficients)
            for index, value in other.coefficients.items():
                merged[index] = merged.get(index, 0.0) + value
            return HaarWavelet(
                self.domain_lo,
                self.cell_width,
                self.length,
                merged,
                self.total + other.total,
            )
        # Different grids: re-expand over the union domain.
        lo = min(self.domain[0], other.domain[0])
        hi = max(self.domain[1], other.domain[1])
        span = hi - lo + 1
        cell_width = max(1, (span + MAX_GRID - 1) // MAX_GRID)
        length = _next_power_of_two(max(1, (span + cell_width - 1) // cell_width))
        vector = [0.0] * length
        for wavelet in (self, other):
            dense = wavelet.reconstruct()
            for cell, mass in enumerate(dense):
                if mass == 0.0:
                    continue
                cell_lo = wavelet.domain_lo + cell * wavelet.cell_width
                vector[(cell_lo - lo) // cell_width] += mass
        budget = max(len(self.coefficients), len(other.coefficients))
        return HaarWavelet.from_vector(lo, cell_width, vector, budget)

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        """Structural issues of the truncated transform (empty = healthy).

        * the grid length is a power of two and coefficient indexes fall
          inside it;
        * coefficients are finite numbers;
        * the reconstructed vector's mass matches ``total`` (the Haar
          average coefficient carries the total exactly, so truncation
          never perturbs it);
        * ``total`` is non-negative.
        """
        issues: List[str] = []
        if self.length & (self.length - 1):
            issues.append(f"grid length {self.length} is not a power of two")
        for index, value in self.coefficients.items():
            if not 0 <= index < self.length:
                issues.append(f"coefficient index {index} outside the grid")
            if value != value or value in (float("inf"), float("-inf")):
                issues.append(f"coefficient {index} is not finite ({value!r})")
        if self.total < 0:
            issues.append(f"total {self.total!r} is negative")
        elif not issues:
            reconstructed = sum(self.reconstruct())
            scale = max(1.0, abs(self.total))
            if abs(reconstructed - self.total) > tolerance * scale:
                issues.append(
                    f"reconstructed mass {reconstructed!r} != total {self.total!r}"
                )
        return issues

    def size_bytes(self) -> int:
        """Storage footprint: header plus 8 bytes per coefficient."""
        return HEADER_BYTES + COEFFICIENT_BYTES * len(self.coefficients)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HaarWavelet(cells={self.length}, "
            f"coefficients={len(self.coefficients)}, total={self.total:g})"
        )

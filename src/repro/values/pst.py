"""Pruned Suffix Trees (PSTs) for STRING substring selectivity.

Following the substring-estimation line of work the paper builds on
(Jagadish–Ng–Srivastava, PODS 1999), a PST is a trie over the substrings
of a string collection.  Each node represents one substring and stores its
*document frequency* — the number of strings in the collection containing
it — which makes counts monotone along every root-to-node path (the PST
*monotonicity constraint*): a string containing ``sc`` necessarily
contains ``s``.

Estimation for an unindexed query string uses the greedy
*maximal-overlap* Markovian decomposition: the query is parsed into
maximal indexed substrings and their conditional probabilities are
chained, ``P(q) = P(s1) * Π P(si | overlap(si-1, si))``.

Per the paper's modification of the original proposal, the tree always
records at least one node for each symbol that appears in the string
distribution (so the classic pruning threshold is redundant and negative
queries on absent symbols estimate to exactly zero), and compression
(``st_cmprs``) prunes leaves in increasing order of *pruning error* — the
difference between a leaf's exact count and the Markovian estimate the
remaining tree would produce for it.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Bytes per stored PST node: symbol (1) + count (4) + structure encoding (4).
NODE_BYTES = 9


class _Node:
    """One trie node.  ``count`` is the substring's document frequency."""

    __slots__ = ("char", "parent", "children", "count", "stamp")

    def __init__(self, char: str, parent: Optional["_Node"]) -> None:
        self.char = char
        self.parent = parent
        self.children: Dict[str, _Node] = {}
        self.count = 0
        # Deduplication stamp: id of the last string that touched this
        # node, so each string increments each substring's count once.
        self.stamp = -1

    def substring(self) -> str:
        chars = []
        node = self
        while node.parent is not None:
            chars.append(node.char)
            node = node.parent
        return "".join(reversed(chars))


class PrunedSuffixTree:
    """A pruned suffix tree over a collection of strings."""

    def __init__(self, max_depth: int = 6) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.root = _Node("", None)
        self._node_count = 0  # excludes the root

    # -- construction -----------------------------------------------------

    @classmethod
    def from_strings(
        cls,
        strings: Iterable[str],
        max_depth: int = 6,
        max_nodes: Optional[int] = None,
    ) -> "PrunedSuffixTree":
        """Build a PST by inserting every substring (up to ``max_depth``)
        of every string, then optionally pruning down to ``max_nodes``."""
        tree = cls(max_depth)
        for string in strings:
            tree.insert_string(string)
        if max_nodes is not None and tree.node_count > max_nodes:
            tree.prune_leaves(tree.node_count - max_nodes)
        return tree

    def insert_string(self, string: str) -> None:
        """Index one string: each of its distinct substrings (length ≤
        ``max_depth``) gets its document frequency incremented once."""
        stamp = self.root.stamp + 1
        self.root.stamp = stamp
        self.root.count += 1
        for start in range(len(string)):
            node = self.root
            for offset in range(start, min(start + self.max_depth, len(string))):
                char = string[offset]
                child = node.children.get(char)
                if child is None:
                    child = _Node(char, node)
                    node.children[char] = child
                    self._node_count += 1
                if child.stamp != stamp:
                    child.stamp = stamp
                    child.count += 1
                node = child

    # -- lookups ------------------------------------------------------------

    @property
    def string_count(self) -> int:
        """Number of strings summarized (the root count)."""
        return self.root.count

    @property
    def node_count(self) -> int:
        """Number of substring nodes (root excluded)."""
        return self._node_count

    def lookup(self, substring: str) -> Optional[int]:
        """The stored count of ``substring``, or ``None`` if not indexed."""
        node = self._lookup_node(substring)
        return None if node is None else node.count

    def _lookup_node(self, substring: str) -> Optional[_Node]:
        """The trie node indexing ``substring``, or ``None``."""
        node = self.root
        for char in substring:
            node = node.children.get(char)
            if node is None:
                return None
        return node

    def _longest_match(self, text: str, start: int) -> int:
        """Length of the longest indexed substring starting at ``start``."""
        node = self.root
        length = 0
        for offset in range(start, len(text)):
            node = node.children.get(text[offset])
            if node is None:
                break
            length += 1
        return length

    # -- estimation -----------------------------------------------------------

    def estimate_count(self, query: str) -> float:
        """Estimated number of strings containing ``query`` as a substring.

        Exact for indexed substrings; greedy maximal-overlap Markov
        chaining otherwise.  Returns 0 when the query uses a symbol that
        never occurs in the collection.
        """
        if self.string_count == 0:
            return 0.0
        if not query:
            return float(self.string_count)
        prefix_len = self._longest_match(query, 0)
        if prefix_len == 0:
            return 0.0
        probability = self.lookup(query[:prefix_len]) / self.string_count
        position = prefix_len
        while position < len(query):
            piece = self._best_overlap_piece(query, position)
            if piece is None:
                return 0.0
            overlap_start, extension = piece
            joint = self.lookup(query[overlap_start : position + extension])
            conditioning = (
                self.lookup(query[overlap_start:position])
                if overlap_start < position
                else self.string_count
            )
            if not conditioning:
                return 0.0
            probability *= joint / conditioning
            position += extension
        return probability * self.string_count

    def _best_overlap_piece(
        self, query: str, position: int
    ) -> Optional[Tuple[int, int]]:
        """The maximal-overlap continuation at ``position``.

        Returns ``(overlap_start, extension)`` where
        ``query[overlap_start : position + extension]`` is indexed,
        ``extension >= 1``, and the overlap ``position - overlap_start`` is
        maximal (ties broken toward longer extensions).  ``None`` when even
        the single character ``query[position]`` is unindexed.
        """
        min_start = max(0, position - self.max_depth + 1)
        for overlap_start in range(min_start, position + 1):
            matched = self._longest_match(query, overlap_start)
            extension = overlap_start + matched - position
            if extension >= 1:
                return (overlap_start, extension)
        return None

    def selectivity(self, query: str) -> float:
        """Estimated fraction of strings containing ``query``."""
        if self.string_count == 0:
            return 0.0
        estimate = self.estimate_count(query) / self.string_count
        return min(1.0, max(0.0, estimate))

    # -- pruning (st_cmprs) ------------------------------------------------------

    def _markov_estimate_without(self, node: _Node) -> float:
        """The count the tree would estimate for ``node``'s substring if
        the node were pruned: the first-order Markov combination of its
        parent and its longest proper suffix still in the tree."""
        return self._markov_estimate_details(node)[0]

    def _markov_estimate_details(
        self, node: _Node, substring: Optional[str] = None
    ) -> Tuple[float, Optional[_Node]]:
        """The post-prune Markov estimate and its structural dependency.

        Returns ``(estimate, suffix_node)`` where ``suffix_node`` is the
        conditioning-suffix node the estimate used, or ``None`` for the
        symbol-frequency fallback.  During pruning only node *existence*
        changes (counts are never touched and the depth-1 symbol layer
        survives), so the estimate can only change when that one suffix
        node is deleted — the fact the incremental ``st_cmprs`` kernel
        keys its lazy invalidation on.
        """
        if substring is None:
            substring = node.substring()
        parent_count = node.parent.count if node.parent is not None else self.string_count
        # Longest proper suffix of the substring that is still indexed
        # (excluding the node itself, which is about to go away).
        for start in range(1, len(substring)):
            suffix_node = self._lookup_node(substring[start:])
            if suffix_node is None:
                continue
            conditioning = (
                self.lookup(substring[start:-1]) if len(substring) - start > 1 else None
            )
            if conditioning is None:
                conditioning = self.string_count
            if conditioning:
                return parent_count * (suffix_node.count / conditioning), suffix_node
        # No usable suffix: fall back to the parent's count scaled by the
        # unconditional frequency of the final symbol.
        last_char = self.root.children.get(substring[-1])
        if last_char is None or self.string_count == 0:
            return 0.0, None
        return parent_count * (last_char.count / self.string_count), None

    def pruning_error(self, node: _Node) -> float:
        """|exact count − post-prune Markov estimate| for a leaf node."""
        return abs(node.count - self._markov_estimate_without(node))

    def pruning_error_details(
        self, node: _Node, substring: Optional[str] = None
    ) -> Tuple[float, Optional[_Node]]:
        """``pruning_error`` plus the suffix node the estimate depends on."""
        estimate, used = self._markov_estimate_details(node, substring)
        return abs(node.count - estimate), used

    def _iter_nodes(self) -> Iterator[_Node]:
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def _prunable_leaves(self) -> List[_Node]:
        """Current leaves that may be removed: depth ≥ 2 (each observed
        symbol keeps its depth-1 node, per the paper's modification)."""
        return [
            node
            for node in self._iter_nodes()
            if not node.children and node.parent is not self.root
        ]

    def prune_leaves(self, count: int) -> int:
        """``st_cmprs``: prune up to ``count`` leaves in increasing
        pruning-error order, re-ranking after *every* deletion.

        Each deletion removes the current global minimum by
        ``(pruning error, -count, substring)`` — sibling errors and
        newly-exposed leaves are re-ranked immediately, not at the next
        batch boundary, so ``prune_leaves(a); prune_leaves(b)`` prunes
        exactly the same leaves as ``prune_leaves(a + b)``.  Runs on the
        incremental priority-queue kernel
        (:class:`repro.values.kernels.pst.PSTPruneKernel`); the scalar
        re-rank-per-deletion oracle is
        :func:`repro.values.kernels.pst.prune_leaves_reference`.
        Returns the number of leaves actually pruned.
        """
        if count <= 0:
            return 0
        from repro.values.kernels.pst import PSTPruneKernel

        return PSTPruneKernel(self).prune(count)

    @property
    def can_prune(self) -> bool:
        return bool(self._prunable_leaves())

    # -- fusion ---------------------------------------------------------------

    def fuse(self, other: "PrunedSuffixTree") -> "PrunedSuffixTree":
        """Combine two PSTs: union of substrings with summed counts."""
        result = PrunedSuffixTree(max(self.max_depth, other.max_depth))
        result.root.count = self.root.count + other.root.count
        for source in (self, other):
            stack: List[Tuple[_Node, _Node]] = []
            for char, child in source.root.children.items():
                target = result.root.children.get(char)
                if target is None:
                    target = _Node(char, result.root)
                    result.root.children[char] = target
                    result._node_count += 1
                stack.append((child, target))
            while stack:
                src, dst = stack.pop()
                dst.count += src.count
                for char, child in src.children.items():
                    target = dst.children.get(char)
                    if target is None:
                        target = _Node(char, dst)
                        dst.children[char] = target
                        result._node_count += 1
                    stack.append((child, target))
        return result

    # -- enumeration and accounting ---------------------------------------------

    def substrings(self) -> Iterator[Tuple[str, int]]:
        """All indexed substrings with their counts (arbitrary order).

        The DFS carries the path prefix, so enumeration costs one string
        concatenation per node instead of a root walk per node.
        """
        stack: List[Tuple[_Node, str]] = [
            (child, char) for char, child in self.root.children.items()
        ]
        while stack:
            node, substring = stack.pop()
            yield substring, node.count
            stack.extend(
                (child, substring + char) for char, child in node.children.items()
            )

    def top_substrings(self, limit: int) -> List[Tuple[str, int]]:
        """The ``limit`` highest-count substrings (deterministic order).

        Heap-selected: O(n log limit) instead of the full O(n log n)
        sort, with the order of ``sorted(..., key=(-count, substring))``
        preserved exactly.
        """
        return heapq.nsmallest(
            limit, self.substrings(), key=lambda item: (-item[1], item[0])
        )

    def check_monotonicity(self) -> bool:
        """Verify the PST invariant count(child) <= count(parent)."""
        for node in self._iter_nodes():
            parent_count = (
                node.parent.count if node.parent is not self.root else self.root.count
            )
            if node.count > parent_count:
                return False
        return True

    def invariant_issues(self) -> List[str]:
        """Structural issues of the trie (empty = healthy).

        The machine-checkable form of the paper's PST constraints:

        * the *pruning monotonicity constraint*: a string containing
          ``sc`` necessarily contains ``s``, so every node's document
          frequency is bounded by its parent's (and by the string count
          at depth 1);
        * counts are positive (a zero-count node should have been pruned,
          and fusion/pruning never create one);
        * no path exceeds ``max_depth``;
        * the cached ``_node_count`` matches the actual trie size.
        """
        issues: List[str] = []
        actual_nodes = 0
        stack: List[Tuple[_Node, str, int]] = [
            (child, char, 1) for char, child in self.root.children.items()
        ]
        while stack:
            node, substring, depth = stack.pop()
            actual_nodes += 1
            parent_count = (
                node.parent.count if node.parent is not self.root else self.root.count
            )
            if node.count > parent_count:
                issues.append(
                    f"substring {substring!r} count {node.count} exceeds its "
                    f"parent's count {parent_count} (monotonicity)"
                )
            if node.count <= 0:
                issues.append(
                    f"substring {substring!r} has non-positive count {node.count}"
                )
            if depth > self.max_depth:
                issues.append(
                    f"substring {substring!r} exceeds max_depth {self.max_depth}"
                )
            stack.extend(
                (child, substring + char, depth + 1)
                for char, child in node.children.items()
            )
        if actual_nodes != self._node_count:
            issues.append(
                f"cached node count {self._node_count} != {actual_nodes} trie nodes"
            )
        if self.root.count < 0:
            issues.append(f"string count {self.root.count} is negative")
        return issues

    def size_bytes(self) -> int:
        """Storage footprint: 9 bytes per trie node."""
        return NODE_BYTES * self._node_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrunedSuffixTree(strings={self.string_count}, "
            f"nodes={self._node_count}, max_depth={self.max_depth})"
        )

"""Run-length-compressed bitmaps.

The uniform bucket of an end-biased term histogram stores the *binary*
version of a term-vector centroid (entry ``t`` is 1 iff the term occurs
anywhere in the summarized texts) losslessly, as runs of consecutive set
term ids.  :class:`RunLengthBitmap` provides exactly that: an immutable
sorted-interval representation with O(log r) membership tests, where ``r``
is the number of runs.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Sequence, Tuple

#: An inclusive interval of consecutive set bits.
Run = Tuple[int, int]


class RunLengthBitmap:
    """An immutable bitmap stored as sorted runs of set bits."""

    __slots__ = ("_runs", "_starts", "_cardinality")

    def __init__(self, runs: Sequence[Run]) -> None:
        previous_end = None
        for start, end in runs:
            if start > end:
                raise ValueError(f"invalid run ({start}, {end})")
            if previous_end is not None and start <= previous_end + 1:
                raise ValueError("runs must be sorted, disjoint, and non-adjacent")
            previous_end = end
        self._runs: Tuple[Run, ...] = tuple(runs)
        self._starts: List[int] = [start for start, _ in self._runs]
        self._cardinality = sum(end - start + 1 for start, end in self._runs)

    @classmethod
    def from_ids(cls, ids: Iterable[int]) -> "RunLengthBitmap":
        """Build from an arbitrary iterable of set-bit positions."""
        ordered = sorted(set(ids))
        runs: List[Run] = []
        for position in ordered:
            if runs and position == runs[-1][1] + 1:
                runs[-1] = (runs[-1][0], position)
            else:
                runs.append((position, position))
        return cls(runs)

    @classmethod
    def empty(cls) -> "RunLengthBitmap":
        return cls(())

    def __contains__(self, position: int) -> bool:
        index = bisect.bisect_right(self._starts, position) - 1
        if index < 0:
            return False
        start, end = self._runs[index]
        return start <= position <= end

    def __len__(self) -> int:
        """The number of set bits."""
        return self._cardinality

    def __iter__(self) -> Iterator[int]:
        for start, end in self._runs:
            yield from range(start, end + 1)

    @property
    def runs(self) -> Tuple[Run, ...]:
        return self._runs

    @property
    def run_count(self) -> int:
        return len(self._runs)

    def union(self, other: "RunLengthBitmap") -> "RunLengthBitmap":
        """The bitwise OR of two bitmaps."""
        merged = sorted(self._runs + other._runs)
        result: List[Run] = []
        for start, end in merged:
            if result and start <= result[-1][1] + 1:
                result[-1] = (result[-1][0], max(result[-1][1], end))
            else:
                result.append((start, end))
        return RunLengthBitmap(result)

    def invariant_issues(self) -> List[str]:
        """Well-formedness issues of the run encoding (empty = healthy).

        The constructor enforces these for freshly built bitmaps; the
        hook re-derives them from the stored state so the invariant
        auditor can catch corruption introduced after construction
        (deserialization bugs, direct mutation of ``_runs``).
        """
        issues: List[str] = []
        previous_end = None
        for start, end in self._runs:
            if start > end:
                issues.append(f"bitmap run ({start}, {end}) is inverted")
            if previous_end is not None and start <= previous_end + 1:
                issues.append(
                    f"bitmap run starting at {start} overlaps or touches the "
                    f"previous run ending at {previous_end}"
                )
            previous_end = max(end, previous_end) if previous_end is not None else end
        actual = sum(end - start + 1 for start, end in self._runs if start <= end)
        if actual != self._cardinality:
            issues.append(
                f"bitmap cardinality {self._cardinality} != {actual} set bits"
            )
        if self._starts != [start for start, _ in self._runs]:
            issues.append("bitmap start index diverged from its runs")
        return issues

    def size_bytes(self) -> int:
        """Storage footprint: 4 bytes per run (start + length packed)."""
        return 4 * len(self._runs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RunLengthBitmap) and self._runs == other._runs

    def __hash__(self) -> int:
        return hash(self._runs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLengthBitmap(runs={len(self._runs)}, bits={self._cardinality})"

"""Bucketed frequency histograms for NUMERIC element values.

XCluster uses classical relational histogram machinery (paper Section 3)
with three operations the synopsis core drives:

* **construction** — equi-depth bucketing of a value collection into a
  detailed reference histogram;
* **fusion** (node merges, Section 4.1) — *bucket alignment* splits both
  histograms at the union of their boundaries (apportioning counts under
  the standard continuous-uniformity assumption) and then sums the
  frequency counts across aligned buckets;
* **compression** (``hist_cmprs``, Section 4.2) — merging adjacent bucket
  pairs to shed a requested number of buckets.

Values live in an integer domain ``{0 .. M-1}``; buckets cover inclusive
integer ranges and carry fractional counts (fractions arise from bucket
splitting during alignment).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: Bytes per stored bucket: lo (4) + hi (4) + count (4).
BUCKET_BYTES = 12


@dataclass(frozen=True)
class HistogramBucket:
    """One bucket: the inclusive integer range ``[lo, hi]`` and its count."""

    lo: int
    hi: int
    count: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"invalid bucket [{self.lo}, {self.hi}]")
        if self.count < 0:
            raise ValueError("bucket count must be non-negative")

    @property
    def width(self) -> int:
        """Number of integer points covered by the bucket."""
        return self.hi - self.lo + 1

    def overlap_fraction(self, low: int, high: int) -> float:
        """Fraction of this bucket's count falling inside ``[low, high]``.

        Uses the uniform-spread assumption within the bucket.
        """
        overlap = min(self.hi, high) - max(self.lo, low) + 1
        if overlap <= 0:
            return 0.0
        return overlap / self.width


class Histogram:
    """An immutable bucketed frequency distribution over integers."""

    __slots__ = ("buckets", "total", "_cdf", "_boundaries")

    def __init__(self, buckets: Sequence[HistogramBucket]) -> None:
        previous_hi = None
        for bucket in buckets:
            if previous_hi is not None and bucket.lo <= previous_hi:
                raise ValueError("histogram buckets must be sorted and disjoint")
            previous_hi = bucket.hi
        self.buckets: Tuple[HistogramBucket, ...] = tuple(buckets)
        self.total = sum(bucket.count for bucket in self.buckets)
        #: Lazily built (upper edges, cumulative counts) for CDF queries.
        self._cdf: Optional[Tuple[List[int], List[float]]] = None
        #: Lazily built upper-edge list for atomic-predicate anchoring.
        self._boundaries: Optional[Tuple[int, ...]] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[int], max_buckets: int = 64) -> "Histogram":
        """Build an equi-depth histogram from a collection of integers.

        Bucket boundaries are chosen so each bucket holds roughly the same
        number of values; ties never split a distinct value across buckets,
        so heavily skewed distributions get singleton buckets for their
        heavy hitters.
        """
        if max_buckets < 1:
            raise ValueError("max_buckets must be >= 1")
        ordered = sorted(values)
        if not ordered:
            return cls(())
        distinct: List[Tuple[int, int]] = []
        for value in ordered:
            if distinct and distinct[-1][0] == value:
                distinct[-1] = (value, distinct[-1][1] + 1)
            else:
                distinct.append((value, 1))
        if len(distinct) <= max_buckets:
            buckets = [HistogramBucket(v, v, c) for v, c in distinct]
            return cls(buckets)
        target = len(ordered) / max_buckets
        buckets = []
        run_lo = distinct[0][0]
        run_count = 0
        remaining_groups = len(distinct)
        for index, (value, count) in enumerate(distinct):
            run_count += count
            remaining_groups -= 1
            remaining_buckets = max_buckets - len(buckets) - 1
            # Close the bucket once it reaches the target depth, but never
            # leave fewer distinct groups than buckets still to fill.
            if (run_count >= target and remaining_buckets > 0) or (
                remaining_groups <= remaining_buckets
            ):
                buckets.append(HistogramBucket(run_lo, value, run_count))
                if index + 1 < len(distinct):
                    run_lo = distinct[index + 1][0]
                run_count = 0
        if run_count > 0:
            buckets.append(HistogramBucket(run_lo, distinct[-1][0], run_count))
        return cls(buckets)

    # -- estimation ----------------------------------------------------------

    def estimate_range(self, low: int, high: int) -> float:
        """Estimated number of values in ``[low, high]``."""
        if low > high:
            return 0.0
        return sum(
            bucket.count * bucket.overlap_fraction(low, high)
            for bucket in self.buckets
        )

    def selectivity(self, low: int, high: int) -> float:
        """Estimated fraction of values in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        return self.estimate_range(low, high) / self.total

    # -- CDF-based estimation (the candidate-scoring fast path) ---------------

    def _cumulative(self) -> Tuple[List[int], List[float]]:
        cdf = self._cdf
        if cdf is None:
            upper_edges = [bucket.hi for bucket in self.buckets]
            running = 0.0
            cumulative = [0.0]
            for bucket in self.buckets:
                running += bucket.count
                cumulative.append(running)
            cdf = (upper_edges, cumulative)
            self._cdf = cdf
        return cdf

    def _point_cdf(self, point: int) -> float:
        """Estimated mass at or below ``point``."""
        buckets = self.buckets
        upper_edges, cumulative = self._cumulative()
        if point < buckets[0].lo:
            return 0.0
        if point >= upper_edges[-1]:
            return cumulative[-1]
        index = bisect_left(upper_edges, point)
        bucket = buckets[index]
        if point < bucket.lo:
            return cumulative[index]  # point falls in the gap before it
        return cumulative[index] + bucket.count * (
            (point - bucket.lo + 1) / bucket.width
        )

    def estimate_range_cdf(self, low: int, high: int) -> float:
        """``estimate_range`` in O(log buckets) via the cached CDF.

        Numerically this is the same per-bucket uniform-spread model
        (full buckets contribute exactly their count; at most the two
        boundary buckets contribute fractions), evaluated as a CDF
        difference instead of a linear bucket scan.  Candidate scoring
        resolves thousands of range selectivities per pool build, which
        makes the O(buckets) scan of :meth:`estimate_range` the hot
        path; the scalar reference path keeps using the linear form.
        """
        if low > high or not self.buckets:
            return 0.0
        return self._point_cdf(high) - self._point_cdf(low - 1)

    def selectivity_cdf(self, low: int, high: int) -> float:
        """Estimated fraction of values in ``[low, high]`` (CDF path)."""
        if self.total == 0:
            return 0.0
        return self.estimate_range_cdf(low, high) / self.total

    @property
    def domain(self) -> Tuple[int, int]:
        """The covered integer range (lo of first bucket, hi of last)."""
        if not self.buckets:
            return (0, 0)
        return (self.buckets[0].lo, self.buckets[-1].hi)

    @property
    def bucket_count(self) -> int:
        return len(self.buckets)

    def boundaries(self) -> Tuple[int, ...]:
        """All bucket upper edges (the atomic-predicate anchor points).

        Cached on the instance (the histogram is immutable): the Δ metric
        re-anchors atomic predicates on the same summary many times per
        candidate-pool build.
        """
        cached = self._boundaries
        if cached is None:
            cached = tuple(bucket.hi for bucket in self.buckets)
            self._boundaries = cached
        return cached

    # -- fusion (bucket alignment + merge) ------------------------------------

    def _aligned_counts(self, edges: Sequence[Tuple[int, int]]) -> List[float]:
        """Counts of this histogram re-apportioned onto aligned ``edges``.

        Both sequences are sorted and disjoint, so a two-pointer sweep
        visits each (bucket, edge) overlap once: edges ending before the
        current bucket can never overlap a later bucket and are skipped
        permanently, making the sweep O(buckets + edges) instead of the
        quadratic rescan-from-zero.
        """
        counts = [0.0] * len(edges)
        edge_count = len(edges)
        start = 0
        for bucket in self.buckets:
            while start < edge_count and edges[start][1] < bucket.lo:
                start += 1
            index = start
            while index < edge_count and edges[index][0] <= bucket.hi:
                fraction = bucket.overlap_fraction(*edges[index])
                if fraction > 0.0:
                    counts[index] += bucket.count * fraction
                index += 1
        return counts

    def fuse(self, other: "Histogram") -> "Histogram":
        """Merge two histograms by bucket alignment + count summation."""
        if not self.buckets:
            return other
        if not other.buckets:
            return self
        cuts = set()
        for histogram in (self, other):
            for bucket in histogram.buckets:
                cuts.add(bucket.lo - 1)
                cuts.add(bucket.hi)
        lo = min(self.domain[0], other.domain[0])
        hi = max(self.domain[1], other.domain[1])
        edges: List[Tuple[int, int]] = []
        start = lo
        for cut in sorted(cut for cut in cuts if lo <= cut <= hi):
            edges.append((start, cut))
            start = cut + 1
        if start <= hi:
            edges.append((start, hi))
        mine = self._aligned_counts(edges)
        theirs = other._aligned_counts(edges)
        buckets = [
            HistogramBucket(lo_, hi_, a + b)
            for (lo_, hi_), a, b in zip(edges, mine, theirs)
            if a + b > 0.0
        ]
        return Histogram(buckets)

    # -- compression ----------------------------------------------------------

    def merge_adjacent(self, index: int) -> "Histogram":
        """Merge buckets ``index`` and ``index + 1`` into one bucket."""
        if not 0 <= index < len(self.buckets) - 1:
            raise IndexError(f"no adjacent pair at {index}")
        left = self.buckets[index]
        right = self.buckets[index + 1]
        merged = HistogramBucket(left.lo, right.hi, left.count + right.count)
        return Histogram(self.buckets[:index] + (merged,) + self.buckets[index + 2 :])

    def best_merge_index(self) -> int:
        """The adjacent pair whose merge least perturbs range estimates.

        Scores each pair by the squared estimation-error increase on the
        prefix ranges anchored at the pair's internal boundary — the exact
        quantity the Δ metric would measure locally — and returns the
        argmin.  Requires at least two buckets.
        """
        if len(self.buckets) < 2:
            raise ValueError("nothing to merge")
        best_index = 0
        best_score = None
        for index in range(len(self.buckets) - 1):
            left = self.buckets[index]
            right = self.buckets[index + 1]
            merged_width = right.hi - left.lo + 1
            merged_count = left.count + right.count
            # After the merge, the estimate for [lo, left.hi] becomes the
            # merged bucket's uniform share; before, it was left.count.
            merged_estimate = merged_count * (left.width / merged_width)
            score = (left.count - merged_estimate) ** 2
            if best_score is None or score < best_score:
                best_score = score
                best_index = index
        return best_index

    def compress(self, buckets_to_remove: int = 1) -> "Histogram":
        """``hist_cmprs``: drop ``buckets_to_remove`` buckets via pair merges."""
        if buckets_to_remove < 0:
            raise ValueError("buckets_to_remove must be >= 0")
        histogram = self
        for _ in range(buckets_to_remove):
            if histogram.bucket_count < 2:
                break
            histogram = histogram.merge_adjacent(histogram.best_merge_index())
        return histogram

    # -- integrity -------------------------------------------------------------

    def invariant_issues(self, tolerance: float = 1e-6) -> List[str]:
        """Structural issues of the bucket encoding (empty = healthy).

        Re-derives, from the stored state, the equi-depth bucket
        invariants the constructor enforces plus the consistency of the
        lazily built CDF and boundary caches with the buckets:

        * buckets sorted, disjoint, with ``lo <= hi`` and counts >= 0;
        * ``total`` equals the bucket-count sum;
        * the cached CDF is monotone non-decreasing and sums to ``total``;
        * the cached boundary tuple matches the bucket upper edges;
        * full-domain selectivity is 1 for non-empty histograms.
        """
        issues: List[str] = []
        previous_hi = None
        for position, bucket in enumerate(self.buckets):
            if bucket.lo > bucket.hi:
                issues.append(f"bucket {position} range [{bucket.lo}, {bucket.hi}] inverted")
            if bucket.count < 0:
                issues.append(f"bucket {position} has negative count {bucket.count!r}")
            if previous_hi is not None and bucket.lo <= previous_hi:
                issues.append(
                    f"bucket {position} starting at {bucket.lo} overlaps the "
                    f"previous bucket ending at {previous_hi}"
                )
            previous_hi = bucket.hi
        actual_total = sum(bucket.count for bucket in self.buckets)
        scale = max(1.0, abs(actual_total))
        if abs(self.total - actual_total) > tolerance * scale:
            issues.append(f"total {self.total!r} != bucket sum {actual_total!r}")
        if self._cdf is not None:
            upper_edges, cumulative = self._cdf
            if upper_edges != [bucket.hi for bucket in self.buckets]:
                issues.append("cached CDF edges diverged from bucket upper edges")
            if any(b < a - tolerance * scale for a, b in zip(cumulative, cumulative[1:])):
                issues.append("cached CDF is not monotone non-decreasing")
            if cumulative and abs(cumulative[-1] - actual_total) > tolerance * scale:
                issues.append(
                    f"cached CDF total {cumulative[-1]!r} != bucket sum {actual_total!r}"
                )
        if self._boundaries is not None and self._boundaries != tuple(
            bucket.hi for bucket in self.buckets
        ):
            issues.append("cached boundary tuple diverged from bucket upper edges")
        if self.buckets and actual_total > 0:
            full = self.selectivity(*self.domain)
            if abs(full - 1.0) > tolerance:
                issues.append(f"full-domain selectivity {full!r} != 1")
        return issues

    # -- accounting ------------------------------------------------------------

    def size_bytes(self) -> int:
        """Storage footprint: 12 bytes per bucket."""
        return BUCKET_BYTES * len(self.buckets)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Histogram) and self.buckets == other.buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(buckets={len(self.buckets)}, total={self.total:g})"

"""Counterexample shrinking for the differential harness.

A fuzzer that reports a 400-element document is a fuzzer nobody debugs.
Before reporting a failure, the harness greedily minimizes it with the
classic delta-debugging moves, re-running the failure predicate after
every candidate edit and keeping only edits that preserve the failure:

* **subtree removal** — try deleting each child subtree, largest first
  (one removal can discharge hundreds of elements);
* **value removal** — try clearing element values, which removes value
  summaries and isolates structure-only failures.

Both passes operate on deep copies; the original document is never
mutated.  The result is guaranteed to be no larger than the input and
to still satisfy the failure predicate — greedy local minimality, not
global, which is the standard (and sufficient) contract.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.query.ast import QueryNode, TwigQuery
from repro.query.predicates import TruePredicate
from repro.xmltree.tree import XMLElement, XMLTree

#: Failure predicate: True means "this input still fails".
FailsFn = Callable[[XMLTree], bool]


def copy_tree(tree: XMLTree) -> XMLTree:
    """A deep structural copy (values are immutable, shared by reference)."""
    return XMLTree(_copy_element(tree.root))


def _copy_element(element: XMLElement) -> XMLElement:
    copied = XMLElement(element.label, element.value)
    stack = [(element, copied)]
    while stack:
        source, target = stack.pop()
        for child in source.children:
            replica = XMLElement(child.label, child.value)
            target.append_child(replica)
            stack.append((child, replica))
    return copied


def shrink_document(
    tree: XMLTree,
    fails: FailsFn,
    max_attempts: int = 400,
) -> XMLTree:
    """Greedily minimize a failing document.

    Args:
        tree: the failing document (left untouched).
        fails: predicate re-running the check; must be True for ``tree``.
        max_attempts: cap on predicate evaluations (each may rebuild a
            synopsis, so shrinking is budgeted, not exhaustive).

    Returns:
        A document no larger than ``tree`` for which ``fails`` still
        holds.  If no smaller failing document is found within budget,
        a copy of the input is returned unchanged.
    """
    current = copy_tree(tree)
    attempts = 0
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        # Pass 1: subtree removal, largest subtrees first.
        candidates = sorted(
            (
                (parent, index)
                for parent in current
                for index in range(len(parent.children))
            ),
            key=lambda item: -item[0].children[item[1]].subtree_size(),
        )
        for parent, index in candidates:
            if attempts >= max_attempts:
                break
            if index >= len(parent.children):
                continue  # earlier removal this sweep shifted siblings
            removed = parent.children.pop(index)
            removed.parent = None
            attempts += 1
            if fails(current):
                changed = True
            else:
                removed.parent = parent
                parent.children.insert(index, removed)
        # Pass 2: value removal on what remains.
        for element in list(current):
            if attempts >= max_attempts:
                break
            if element.value is None:
                continue
            saved = element.value
            element.set_value(None)
            attempts += 1
            if fails(current):
                changed = True
            else:
                element.set_value(saved)
    return current


def shrink_text(
    text: str,
    fails: Callable[[str], bool],
    max_attempts: int = 200,
) -> str:
    """Greedily minimize a failing raw string (ddmin-style).

    For failures whose counterexample is not a well-formed document —
    the tokenizer-parity round fuzzes *malformed* inputs — subtree
    removal is meaningless, so minimize the character string itself:
    repeatedly delete spans, halving the span size whenever a full
    sweep removes nothing, until single-character deletions stop
    helping or the predicate-evaluation budget runs out.

    Returns a string no longer than ``text`` for which ``fails`` still
    holds (the input itself in the worst case).
    """
    attempts = 0
    span = max(1, len(text) // 2)
    while attempts < max_attempts:
        removed = False
        index = 0
        while index < len(text) and attempts < max_attempts:
            candidate = text[:index] + text[index + span :]
            attempts += 1
            if len(candidate) < len(text) and fails(candidate):
                text = candidate
                removed = True
            else:
                index += span
        if not removed:
            if span == 1:
                break
            span = max(1, span // 2)
    return text


def shrink_updates(
    ops: list,
    fails: Callable[[list], bool],
    max_attempts: int = 200,
) -> list:
    """Greedily minimize a failing update sequence (ddmin-style).

    The update-round counterexample is an *op list*, not a document, so
    minimization mirrors :func:`shrink_text` over list items: delete
    spans of ops, halving the span whenever a full sweep removes
    nothing, until single-op deletions stop helping or the budget runs
    out.  ``fails`` must replay the surviving subsequence from the
    round's initial document and skip ops their targets no longer admit
    (``validate_update`` makes that deterministic on both substrates).

    Returns a list no longer than ``ops`` for which ``fails`` still
    holds (the input itself in the worst case).
    """
    attempts = 0
    span = max(1, len(ops) // 2)
    while attempts < max_attempts:
        removed = False
        index = 0
        while index < len(ops) and attempts < max_attempts:
            candidate = ops[:index] + ops[index + span:]
            attempts += 1
            if len(candidate) < len(ops) and fails(candidate):
                ops = candidate
                removed = True
            else:
                index += span
        if not removed:
            if span == 1:
                break
            span = max(1, span // 2)
    return ops


def copy_query(query: TwigQuery) -> TwigQuery:
    """A deep copy of a twig (edges and predicates shared, they are frozen)."""
    return TwigQuery(_copy_query_node(query.root))


def _copy_query_node(node: QueryNode) -> QueryNode:
    replica = QueryNode(node.name, node.edge, node.predicate)
    for child in node.children:
        replica.children.append(_copy_query_node(child))
    return replica


def shrink_query(
    query: TwigQuery,
    fails: Callable[[TwigQuery], bool],
) -> TwigQuery:
    """Minimize a failing twig query by dropping branches and predicates.

    Tries removing each query-variable subtree (largest first) and
    weakening value predicates to ``TruePredicate``, keeping edits that
    preserve the failure.  Never reduces the twig to the bare virtual
    root.  Returns the input query if nothing smaller fails.
    """
    current = copy_query(query)
    changed = True
    while changed:
        changed = False
        for candidate in _query_reductions(current):
            if fails(candidate):
                current = candidate
                changed = True
                break
    return current


def _query_reductions(query: TwigQuery) -> List[TwigQuery]:
    """All single-step reductions of a query, biggest cuts first."""
    reductions: List[tuple] = []
    for path in _child_paths(query.root, ()):
        if len(path) == 1 and len(query.root.children) == 1:
            continue  # never produce the bare virtual root
        replica = copy_query(query)
        parent = _node_at(replica.root, path[:-1])
        removed = parent.children.pop(path[-1])
        reductions.append((sum(1 for _ in removed.iter()), replica))
    for path in _predicated_paths(query.root, ()):
        replica = copy_query(query)
        _node_at(replica.root, path).predicate = TruePredicate()
        reductions.append((0.5, replica))
    reductions.sort(key=lambda item: -item[0])
    return [replica for _, replica in reductions]


def _child_paths(node: QueryNode, prefix: tuple) -> List[tuple]:
    paths = []
    for index, child in enumerate(node.children):
        path = prefix + (index,)
        paths.append(path)
        paths.extend(_child_paths(child, path))
    return paths


def _predicated_paths(node: QueryNode, prefix: tuple) -> List[tuple]:
    paths = []
    if node.has_value_predicate:
        paths.append(prefix)
    for index, child in enumerate(node.children):
        paths.extend(_predicated_paths(child, prefix + (index,)))
    return paths


def _node_at(root: QueryNode, path: tuple) -> QueryNode:
    node = root
    for index in path:
        node = node.children[index]
    return node

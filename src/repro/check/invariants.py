"""The synopsis invariant auditor.

An XCluster synopsis carries redundant structure by design: reverse
adjacency mirrors forward edges, per-edge average child counters must
reconcile with extent counts, and every value summary maintains internal
bookkeeping (histogram CDFs, PST monotone counts, EBTH exact/bucket
partitions).  Construction bugs rarely crash — they quietly skew these
books.  The :class:`InvariantAuditor` walks a synopsis and checks every
machine-verifiable consequence of the paper's definitions, returning
structured :class:`Violation` records instead of raising, so callers
(the ``python -m repro check`` verb, the differential harness, tests)
can report all findings at once.

Invariant catalog
-----------------

``graph-integrity``
    Edge symmetry, positive counts, root referential integrity — the
    checks behind :meth:`XClusterSynopsis.validate`, surfaced via
    :meth:`XClusterSynopsis.iter_integrity_issues`.

``element-conservation``
    For every node ``v``: ``sum_p |p| * count(p, v)`` plus one if ``v``
    holds the document root equals ``|v|``.  True on reference synopses
    (each element has exactly one parent) and *exactly* preserved by the
    merge operation: outgoing weighted averages and incoming sums both
    keep each parent's contribution ``|p| * count(p, v)`` constant.

``summary-decode``
    A lazily-loaded value summary (relaxed ``verify=False`` loads defer
    payload decoding to first access — see
    :mod:`repro.core.serialization` and :mod:`repro.core.snapshot`)
    decodes at all.  A corrupt payload surfaces here as a structured
    violation instead of an exception escaping the audit.

``summary-extent``
    A value summary never summarizes more values than the cluster has
    elements (``vsumm.count <= |u|``), and its value type matches the
    node's (the type-respecting condition of Definition 3.1).

``summary-internal``
    The summary's own ``invariant_issues`` hook: histogram bucket
    ordering and cached-CDF books, PST count monotonicity along trie
    paths, EBTH exact/bucket disjointness and end-biased ordering,
    wavelet mass conservation, RLE bitmap well-formedness.

``selectivity-bounds``
    Over the summary's canonical atomic predicates, ``selectivity`` is a
    fraction in ``[0, 1]`` and ``fast_selectivity`` (the bulk-scoring
    fast path) agrees with it to float rounding — the micro-oracle that
    caught nothing is the micro-oracle worth keeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.synopsis import XClusterSynopsis

#: Relative tolerance for float book-keeping comparisons.
DEFAULT_TOLERANCE = 1e-6
#: Absolute slack for selectivity fast-path agreement.
FAST_PATH_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One audited invariant breach.

    Attributes:
        invariant: catalog key (see module docstring).
        message: human-readable description naming the offending value.
        node_id: the synopsis node involved, when attributable.
        severity: ``"error"`` for definition violations, ``"warning"``
            for advisory findings (currently unused by the auditor but
            available to harness extensions).
    """

    invariant: str
    message: str
    node_id: Optional[int] = None
    severity: str = "error"

    def __str__(self) -> str:
        location = f" [node {self.node_id}]" if self.node_id is not None else ""
        return f"{self.invariant}{location}: {self.message}"


@dataclass
class InvariantAuditor:
    """Walks a synopsis and collects every invariant breach.

    Attributes:
        tolerance: relative tolerance for float book-keeping.
        predicate_limit: atomic predicates probed per summary for the
            selectivity-bounds check (0 disables the probe — it is the
            only check whose cost grows with summary detail).
    """

    tolerance: float = DEFAULT_TOLERANCE
    predicate_limit: int = 16
    check_selectivity: bool = field(default=True)

    def audit(self, synopsis: XClusterSynopsis) -> List[Violation]:
        """Every violation found, in catalog order (empty = healthy)."""
        violations: List[Violation] = []
        violations.extend(self._graph_integrity(synopsis))
        if not violations:
            # Conservation sums dereference edges; skip when the graph
            # itself is broken so one corruption reports once, clearly.
            violations.extend(self._element_conservation(synopsis))
        violations.extend(self._summaries(synopsis))
        return violations

    # -- graph-integrity ----------------------------------------------------

    def _graph_integrity(self, synopsis: XClusterSynopsis) -> List[Violation]:
        return [
            Violation("graph-integrity", message, node_id)
            for message, node_id in synopsis.iter_integrity_issues()
        ]

    # -- element-conservation -------------------------------------------------

    def _element_conservation(self, synopsis: XClusterSynopsis) -> List[Violation]:
        violations: List[Violation] = []
        for node in synopsis:
            incoming = 0.0
            for parent_id in node.parents:
                parent = synopsis.nodes[parent_id]
                incoming += parent.count * parent.children[node.node_id]
            if node.node_id == synopsis.root_id:
                incoming += 1.0
            scale = max(1.0, abs(node.count))
            if abs(incoming - node.count) > self.tolerance * scale:
                violations.append(
                    Violation(
                        "element-conservation",
                        f"incoming element mass {incoming!r} != extent "
                        f"count {node.count!r}",
                        node.node_id,
                    )
                )
        return violations

    # -- value summaries ------------------------------------------------------

    def _summaries(self, synopsis: XClusterSynopsis) -> List[Violation]:
        violations: List[Violation] = []
        for node in synopsis.valued_nodes():
            try:
                vsumm = node.vsumm  # may run a deferred decode thunk
            except ValueError as err:  # SynopsisFormatError is a ValueError
                violations.append(
                    Violation(
                        "summary-decode",
                        f"value summary failed to decode: {err}",
                        node.node_id,
                    )
                )
                continue
            assert vsumm is not None  # valued_nodes filters
            if vsumm.value_type is not node.value_type:
                violations.append(
                    Violation(
                        "summary-extent",
                        f"summary type {vsumm.value_type} != node type "
                        f"{node.value_type}",
                        node.node_id,
                    )
                )
                continue  # predicates of the wrong type would raise
            slack = self.tolerance * max(1.0, abs(node.count))
            if vsumm.count > node.count + slack:
                violations.append(
                    Violation(
                        "summary-extent",
                        f"summary covers {vsumm.count!r} values but the "
                        f"extent has {node.count!r} elements",
                        node.node_id,
                    )
                )
            for message in vsumm.invariant_issues(self.tolerance):
                violations.append(
                    Violation("summary-internal", message, node.node_id)
                )
            if self.check_selectivity and self.predicate_limit > 0:
                violations.extend(self._selectivity_bounds(node))
        return violations

    def _selectivity_bounds(self, node) -> List[Violation]:
        violations: List[Violation] = []
        vsumm = node.vsumm
        for predicate in vsumm.canonical_atomic_predicates(self.predicate_limit):
            sigma = vsumm.selectivity(predicate)
            if sigma < -self.tolerance or sigma > 1.0 + self.tolerance:
                violations.append(
                    Violation(
                        "selectivity-bounds",
                        f"selectivity {sigma!r} of {predicate!r} outside [0, 1]",
                        node.node_id,
                    )
                )
            fast = vsumm.fast_selectivity(predicate)
            if abs(fast - sigma) > FAST_PATH_TOLERANCE:
                violations.append(
                    Violation(
                        "selectivity-bounds",
                        f"fast_selectivity {fast!r} != selectivity {sigma!r} "
                        f"for {predicate!r}",
                        node.node_id,
                    )
                )
        return violations


def audit_synopsis(
    synopsis: XClusterSynopsis,
    tolerance: float = DEFAULT_TOLERANCE,
    predicate_limit: int = 16,
) -> List[Violation]:
    """One-shot audit with default settings (empty list = healthy)."""
    auditor = InvariantAuditor(tolerance=tolerance, predicate_limit=predicate_limit)
    return auditor.audit(synopsis)

"""Differential verification: invariant auditing + engine-parity fuzzing.

The correctness tooling behind ``python -m repro check``:

* :mod:`repro.check.invariants` — :class:`InvariantAuditor`, walking a
  synopsis and returning structured :class:`Violation` records for
  every breach of the paper's definitional invariants;
* :mod:`repro.check.diffharness` — :class:`DifferentialHarness`, the
  seeded fuzzer running reference-vs-kernel builds and scalar-vs-
  compiled estimation side by side on generated documents;
* :mod:`repro.check.shrink` — delta-debugging minimization of failing
  documents and queries;
* :mod:`repro.check.report` — :class:`CheckReport` aggregation.
"""

from repro.check.diffharness import (
    DifferentialHarness,
    DocumentConfig,
    DocumentGenerator,
    HarnessConfig,
    run_differential_check,
)
from repro.check.invariants import InvariantAuditor, Violation, audit_synopsis
from repro.check.report import CheckReport, Failure
from repro.check.shrink import shrink_document, shrink_query, shrink_updates

__all__ = [
    "CheckReport",
    "DifferentialHarness",
    "DocumentConfig",
    "DocumentGenerator",
    "Failure",
    "HarnessConfig",
    "InvariantAuditor",
    "Violation",
    "audit_synopsis",
    "run_differential_check",
    "shrink_document",
    "shrink_query",
    "shrink_updates",
]

"""Structured result types for the verification subsystem.

A check run produces a :class:`CheckReport`: the invariant violations
found by the auditor plus the differential-harness failures, each
carrying the seed that reproduces it and (when shrinking succeeded) a
minimal counterexample.  Reports render to text for the CLI and to
plain dictionaries for ``--json`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.check.invariants import Violation


@dataclass
class Failure:
    """One differential-harness failure, reproducible from its seed.

    Attributes:
        kind: failure class (``"build-divergence"``,
            ``"estimate-divergence"``, ``"audit"``,
            ``"serialization-divergence"``, ``"columnar-divergence"``,
            ``"evaluator-divergence"``, ``"tokenizer-divergence"``,
            ``"update-divergence"``, ``"crash"``).  For
            ``"tokenizer-divergence"`` the size fields count characters
            of the malformed input; for ``"update-divergence"`` the
            size fields count *update ops* (``document_size`` applied,
            ``shrunk_size`` after ddmin, ``shrunk_document`` their
            JSON-encoded minimal sequence).
        seed: the round seed; re-running the harness round with this
            seed reproduces the failure deterministically.
        message: what diverged, with both values where applicable.
        query: the offending twig query (XPath text) if query-level.
        document_size: element count of the failing document.
        shrunk_size: element count after shrinking, when a minimal
            counterexample was found (always <= ``document_size``).
        shrunk_document: serialized XML of the minimal counterexample.
        shrunk_query: the minimal failing query (XPath text).
    """

    kind: str
    seed: int
    message: str
    query: Optional[str] = None
    document_size: Optional[int] = None
    shrunk_size: Optional[int] = None
    shrunk_document: Optional[str] = None
    shrunk_query: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to JSON-serializable primitives (shrunk tree omitted)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "message": self.message,
            "query": self.query,
            "document_size": self.document_size,
            "shrunk_size": self.shrunk_size,
            "shrunk_query": self.shrunk_query,
        }

    def __str__(self) -> str:
        parts = [f"[seed {self.seed}] {self.kind}: {self.message}"]
        if self.query:
            parts.append(f"  query: {self.query}")
        if self.shrunk_size is not None and self.document_size is not None:
            parts.append(
                f"  shrunk: {self.document_size} -> {self.shrunk_size} elements"
            )
            if self.shrunk_query:
                parts.append(f"  shrunk query: {self.shrunk_query}")
        return "\n".join(parts)


@dataclass
class CheckReport:
    """The aggregate outcome of a verification run."""

    violations: List[Violation] = field(default_factory=list)
    failures: List[Failure] = field(default_factory=list)
    rounds: int = 0
    queries_checked: int = 0
    seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failures

    def extend(self, other: "CheckReport") -> None:
        """Fold another report into this one (for multi-stage runs)."""
        self.violations.extend(other.violations)
        self.failures.extend(other.failures)
        self.rounds += other.rounds
        self.queries_checked += other.queries_checked

    def to_dict(self) -> Dict[str, Any]:
        """Flatten the report for ``python -m repro check --json``."""
        return {
            "ok": self.ok,
            "seed": self.seed,
            "rounds": self.rounds,
            "queries_checked": self.queries_checked,
            "violations": [
                {
                    "invariant": violation.invariant,
                    "message": violation.message,
                    "node_id": violation.node_id,
                    "severity": violation.severity,
                }
                for violation in self.violations
            ],
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def format_text(self) -> str:
        """Render the human-readable report the CLI prints by default."""
        lines: List[str] = []
        if self.seed is not None:
            lines.append(f"master seed: {self.seed}")
        if self.rounds:
            lines.append(
                f"{self.rounds} fuzz round(s), "
                f"{self.queries_checked} quer{'y' if self.queries_checked == 1 else 'ies'} checked"
            )
        if self.violations:
            lines.append(f"{len(self.violations)} invariant violation(s):")
            for violation in self.violations:
                lines.append(f"  {violation}")
        if self.failures:
            lines.append(f"{len(self.failures)} differential failure(s):")
            for failure in self.failures:
                for line in str(failure).splitlines():
                    lines.append(f"  {line}")
        if self.ok:
            lines.append("all checks passed")
        return "\n".join(lines)

"""The seeded engine-parity fuzzer.

The codebase keeps two implementations of everything hot: scalar vs
vectorized candidate scoring, reference vs kernel value compression,
the scalar estimation oracle vs the compiled twig-plan engine.  The
paper's fixtures exercise them on two dataset families; this harness
exercises them on *arbitrary* documents, generated from a seed:

1. generate a random document and derive its reference synopsis;
2. **audit** the reference with the :class:`InvariantAuditor`;
3. build the budgeted synopsis twice — once per engine stack — and
   require identical shapes (node multiset + structural bytes);
4. audit the compressed synopsis;
5. generate a positive + negative twig workload and require the scalar
   oracle and the compiled estimator to agree within ``tolerance``;
6. round-trip the synopsis through serialization and require the
   restored synopsis to reproduce every estimate;
7. serialize the document and feed the identical bytes to the
   object-tree parser and the event-stream columnar ingestor: the
   reference synopses and the budgeted builds must be bit-identical
   across substrates, and the columnar build must reproduce the
   round's baseline estimates;
8. grade the round's workload — plus ``//``-heavy and wildcard mutated
   variants of every query — with both exact evaluators: the tree-walk
   oracle over ``XMLElement`` objects and the pre/post interval-join
   engine over the frozen columnar document.  Binding-tuple counts
   must be **bit-equal** (the paper's Section 2 path-multiplicity
   semantics leave no tolerance); a diverging twig is shrunk with
   :func:`repro.check.shrink.shrink_query`;
9. pit the production byte-level tokenizer against the character-scan
   oracle (:func:`repro.xmltree.events.iter_events_str`) on the
   serialized document *and* on mutated — usually malformed — variants
   of it, whole and randomly chunked: token streams, error messages,
   and error offsets must all agree.  Diverging inputs are shrunk
   character-wise (:func:`repro.check.shrink.shrink_text`).

A tenth, update-focused round (``run_updates`` / ``python -m repro
check --updates``) fuzzes incremental maintenance: seeded random
subtree inserts / deletes / value changes are applied to a columnar
document through the :class:`~repro.update.maintainer.
IncrementalMaintainer` **and** to an object-tree twin, and after every
single step the mutated columns must equal ``freeze(twin)``'s, the
maintained synopsis must equal a rebuild-from-scratch bit-exactly
(``synopsis_to_dict``), and the invariant auditor must stay green.  A
failing sequence is minimized with :func:`repro.check.shrink.
shrink_updates` (ddmin over ops, mirroring ``shrink_text``).

Every failure records the round seed — re-running the harness with
``HarnessConfig(seed=<that seed>, rounds=1)`` reproduces it exactly —
and is shrunk to a minimal counterexample before reporting (see
:mod:`repro.check.shrink`).  Determinism is strict: all randomness
flows from per-round ``random.Random`` instances; no global RNG state
is touched.
"""

from __future__ import annotations

import json
import random
import traceback
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.invariants import InvariantAuditor
from repro.check.report import CheckReport, Failure
from repro.check.shrink import (
    copy_query,
    shrink_document,
    shrink_query,
    shrink_text,
    shrink_updates,
)
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.estimation import CompiledEstimator
from repro.core.estimator import XClusterEstimator
from repro.core.reference import build_reference_synopsis
from repro.core.serialization import synopsis_from_dict, synopsis_to_dict
from repro.core.snapshot import snapshot_to_bytes, synopsis_from_snapshot
from repro.core.sizing import structural_size_bytes, value_size_bytes
from repro.core.synopsis import XClusterSynopsis
from repro.datasets.dataset import Dataset
from repro.query.ast import WILDCARD, AxisStep, EdgePath, TwigQuery
from repro.query.evaluator import TreeWalkEvaluator
from repro.query.interval import IntervalEvaluator
from repro.update.maintainer import IncrementalMaintainer
from repro.update.ops import (
    DeleteSubtree,
    InsertSubtree,
    UpdateOp,
    ValueChange,
    apply_update_tree,
    update_to_dict,
    validate_update,
)
from repro.values.summary import SummaryConfig
from repro.workload.generator import TwigWorkloadGenerator, WorkloadConfig
from repro.workload.negative import make_negative_workload
from repro.xmltree.columnar import freeze, ingest_string
from repro.xmltree.events import iter_events, iter_events_str
from repro.xmltree.parser import XMLParseError, parse_string
from repro.xmltree.serializer import serialize
from repro.xmltree.tree import XMLElement, XMLTree
from repro.xmltree.types import ValueType

_SYLLABLES = (
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
    "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
    "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
    "ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
)

_TERM_POOL = tuple(
    first + second
    for first in ("data", "meta", "node", "tree", "leaf", "path", "term", "word")
    for second in ("alpha", "beta", "gamma", "delta", "omega", "sigma")
)

#: Characters the tokenizer-round mutator splices into serialized
#: documents: markup delimiters, entity machinery, quotes — the inputs
#: most likely to desynchronize a byte scanner from a character scanner.
_MUTATION_CHARS = "<>&;/='\"!?-#x "

#: Larger splices: well-formed and malformed entity references, plus
#: non-ASCII text (2-, 3-, and 4-byte UTF-8, and a non-ASCII space that
#: ``str.isspace`` accepts but the byte scanner's ASCII tables must not).
_MUTATION_SNIPPETS = (
    "&amp;", "&lt;", "&#65;", "&#x41;",
    "&amp", "&#;", "&#xg;", "&nosuch;",
    "é", "Ωλ", "日本語", "\U0001f642", " ",
)


@dataclass
class DocumentConfig:
    """Shape knobs for generated documents.

    Defaults keep documents small enough that a full round (two builds,
    a workload, dozens of estimates) stays fast, yet deep and varied
    enough to exercise merging, all three summary families, and both
    axes.  The generated values are **round-trip safe**: serializing
    the document and re-parsing it with ``text_word_threshold=2``
    reconstructs identical labels, types, and values (STRING values are
    single non-numeric words; TEXT values carry at least two terms).
    """

    min_elements: int = 30
    max_elements: int = 120
    max_depth: int = 6
    max_children: int = 4
    labels: Sequence[str] = ("item", "entry", "name", "info", "note", "mark")
    value_probability: float = 0.75
    numeric_high: int = 500
    min_text_terms: int = 2
    max_text_terms: int = 4


def _graft_subtree(parent: XMLElement, source: XMLElement) -> None:
    """Deep-copy ``source`` (from another tree) as a child of ``parent``."""
    node = parent.add(source.label, source.value)
    for child in source.children:
        _graft_subtree(node, child)


class DocumentGenerator:
    """Seeded random XML documents (see :class:`DocumentConfig`)."""

    def __init__(self, config: Optional[DocumentConfig] = None) -> None:
        self.config = config if config is not None else DocumentConfig()

    def generate(self, rng: random.Random) -> XMLTree:
        """One random document, fully determined by ``rng``'s state."""
        config = self.config
        # Each label carries one value type for the whole document, so
        # per-path clusters look like real datasets (and the workload
        # generator finds usable predicate pools).
        label_types: Dict[str, ValueType] = {
            label: rng.choice(
                (ValueType.NUMERIC, ValueType.STRING, ValueType.TEXT)
            )
            for label in config.labels
        }
        target = rng.randint(config.min_elements, config.max_elements)
        root = XMLElement("root")
        produced = 1
        frontier: List[Tuple[XMLElement, int]] = [(root, 0)]
        while frontier and produced < target:
            parent, depth = frontier.pop(rng.randrange(len(frontier)))
            for _ in range(rng.randint(1, config.max_children)):
                if produced >= target:
                    break
                label = rng.choice(config.labels)
                child = parent.add(label)
                produced += 1
                if depth + 1 < config.max_depth and rng.random() < 0.7:
                    frontier.append((child, depth + 1))
                elif rng.random() < config.value_probability:
                    child.set_value(self._value(label_types[child.label], rng))
        return XMLTree(root)

    def _value(self, value_type: ValueType, rng: random.Random):
        config = self.config
        if value_type is ValueType.NUMERIC:
            return rng.randint(0, config.numeric_high)
        if value_type is ValueType.STRING:
            return "".join(
                rng.choice(_SYLLABLES)
                for _ in range(rng.randint(2, 4))
            )
        terms = rng.sample(
            _TERM_POOL, rng.randint(config.min_text_terms, config.max_text_terms)
        )
        return frozenset(terms)


@dataclass
class HarnessConfig:
    """Knobs of one differential run.

    Attributes:
        seed: the master seed; every round seed derives from it, and
            any failure is reproducible from its printed round seed via
            ``HarnessConfig(seed=<round seed>, rounds=1)``.
        rounds: number of independent fuzz rounds.
        tolerance: maximum relative estimate divergence between the
            scalar oracle and the compiled engine (parity is pinned at
            1e-9 elsewhere in the test suite; keep them aligned).
        structural_fraction: compressed structural budget as a fraction
            of the reference synopsis's structural bytes.
        value_fraction: same for the value budget.
        queries_per_class: workload size per query class per round.
        shrink: whether failing documents/queries are minimized.
        shrink_attempts: predicate-evaluation budget per shrink.
        audit_predicate_limit: atomic predicates probed per summary.
        tokenizer_variants: mutated-document probes per tokenizer round
            (the pristine serialization is always probed as well).
        evaluator_variants: mutated (``//``-heavy / wildcard) twig
            probes derived from each workload query in the evaluator
            round (every unmutated query is always probed as well).
        updates_per_round: seeded random update ops applied per update
            round (``run_updates``), with maintained-vs-rebuilt parity
            asserted after every single op.
        document: document-shape configuration.
    """

    seed: int = 20060402
    rounds: int = 3
    tolerance: float = 1e-9
    structural_fraction: float = 0.6
    value_fraction: float = 0.6
    queries_per_class: int = 2
    shrink: bool = True
    shrink_attempts: int = 120
    audit_predicate_limit: int = 8
    tokenizer_variants: int = 6
    evaluator_variants: int = 3
    updates_per_round: int = 40
    document: DocumentConfig = field(default_factory=DocumentConfig)


def _stream_outcome(tokenizer, source) -> Tuple:
    """``(events, error)`` from draining one tokenizer on one source.

    ``error`` is ``None`` on success, else ``(message, offset)``.  Two
    tokenizers agree exactly when their outcomes compare equal: same
    events in order, and — on malformed input — the same error at the
    same character offset after the same event prefix.
    """
    events = []
    try:
        for event in tokenizer(source):
            events.append(event)
    except XMLParseError as err:
        return tuple(events), (str(err), err.position)
    return tuple(events), None


def _outcome_summary(outcome: Tuple) -> str:
    events, error = outcome
    if error is None:
        return f"{len(events)} events, clean"
    return f"{len(events)} events, then {error[0]!r}"


def _random_chunks(data, rng: random.Random) -> List:
    """Split ``data`` (str or bytes) at random 1-7 unit boundaries."""
    chunks = []
    pos = 0
    while pos < len(data):
        step = rng.randint(1, 7)
        chunks.append(data[pos:pos + step])
        pos += step
    return chunks


def _build_shape(synopsis: XClusterSynopsis) -> Tuple:
    """The equivalence key for build parity (mirrors the benchmarks)."""
    return (
        len(synopsis),
        structural_size_bytes(synopsis),
        sorted(
            (node.label, node.value_type.value, node.count) for node in synopsis
        ),
    )


class DifferentialHarness:
    """Runs seeded differential rounds and aggregates a report."""

    def __init__(self, config: Optional[HarnessConfig] = None) -> None:
        self.config = config if config is not None else HarnessConfig()
        self.documents = DocumentGenerator(self.config.document)
        self.auditor = InvariantAuditor(
            predicate_limit=self.config.audit_predicate_limit
        )

    # -- entry points -------------------------------------------------------

    def run(self) -> CheckReport:
        """All configured rounds; every failure carries its round seed."""
        master = random.Random(self.config.seed)
        report = CheckReport(seed=self.config.seed)
        for _ in range(self.config.rounds):
            round_seed = master.randrange(2**32)
            try:
                report.extend(self.run_round(round_seed))
            except Exception:  # noqa: BLE001 - a crash IS a finding
                report.failures.append(
                    Failure(
                        kind="crash",
                        seed=round_seed,
                        message=traceback.format_exc(limit=6).strip(),
                    )
                )
                report.rounds += 1
        return report

    def run_round(self, seed: int) -> CheckReport:
        """One full differential round, reproducible from ``seed``."""
        report = CheckReport(rounds=1)
        rng = random.Random(seed)
        document = self.documents.generate(rng)
        dataset = Dataset("fuzz", document, document.value_paths())

        reference = build_reference_synopsis(document, dataset.value_paths)
        self._audit(reference, seed, "reference synopsis", document, report)

        synopsis, divergence = self._build_pair(document, dataset.value_paths)
        if divergence is not None:
            report.failures.append(
                self._shrunk_build_failure(seed, document, divergence)
            )
            return report  # downstream parity on a diverged build is noise
        self._audit(synopsis, seed, "compressed synopsis", document, report)

        queries = self._workload(dataset, rng)
        report.queries_checked = len(queries)
        oracle = XClusterEstimator(synopsis)
        compiled = CompiledEstimator(synopsis)
        baseline: List[float] = []
        for query in queries:
            expected = oracle.estimate(query)
            baseline.append(expected)
            actual = compiled.estimate(query)
            if self._diverges(expected, actual):
                report.failures.append(
                    self._shrunk_estimate_failure(
                        seed, document, synopsis, query, expected, actual
                    )
                )
        for issue in compiled.index.invariant_issues():
            report.failures.append(
                Failure(
                    kind="audit",
                    seed=seed,
                    message=f"synopsis index: {issue}",
                    document_size=len(document),
                )
            )
        report.failures.extend(
            self._serialization_failures(seed, synopsis, queries, baseline)
        )
        report.failures.extend(
            self._snapshot_failures(seed, synopsis, queries)
        )
        report.failures.extend(
            self._columnar_failures(seed, document, queries, baseline)
        )
        # Draws only from a private seed-derived stream, so the round
        # rng's draws (and thus every other stage) stay untouched.
        report.failures.extend(self._evaluator_failures(seed, document, queries))
        # Last stage, so its rng draws never perturb the seeds that
        # reproduce failures from the earlier stages.
        report.failures.extend(self._tokenizer_failures(seed, document, rng))
        return report

    def run_evaluator(self) -> CheckReport:
        """Evaluator-focused rounds: document + workload + stage 8 only.

        The full :meth:`run` already includes the evaluator stage; this
        entry point (behind ``python -m repro check --evaluator``) skips
        the synopsis builds and estimator stages so many more
        interval-vs-treewalk probes fit in the same wall-clock.
        """
        master = random.Random(self.config.seed)
        report = CheckReport(seed=self.config.seed)
        for _ in range(self.config.rounds):
            round_seed = master.randrange(2**32)
            try:
                report.extend(self.run_evaluator_round(round_seed))
            except Exception:  # noqa: BLE001 - a crash IS a finding
                report.failures.append(
                    Failure(
                        kind="crash",
                        seed=round_seed,
                        message=traceback.format_exc(limit=6).strip(),
                    )
                )
                report.rounds += 1
        return report

    def run_evaluator_round(self, seed: int) -> CheckReport:
        """One evaluator-only round, reproducible from ``seed``."""
        report = CheckReport(rounds=1)
        rng = random.Random(seed)
        document = self.documents.generate(rng)
        dataset = Dataset("fuzz", document, document.value_paths())
        queries = self._workload(dataset, rng)
        report.queries_checked = len(queries)
        report.failures.extend(self._evaluator_failures(seed, document, queries))
        return report

    def run_updates(self) -> CheckReport:
        """Update-maintenance rounds (``python -m repro check --updates``).

        Each round applies :attr:`HarnessConfig.updates_per_round`
        seeded random ops and asserts, after **every** op: mutated
        columns equal ``freeze``-of-twin columns, maintained synopsis
        equals rebuild-from-scratch bit-exactly, invariant auditor
        green.  A failing sequence is ddmin-minimized.
        """
        master = random.Random(self.config.seed)
        report = CheckReport(seed=self.config.seed)
        for _ in range(self.config.rounds):
            round_seed = master.randrange(2**32)
            try:
                report.extend(self.run_update_round(round_seed))
            except Exception:  # noqa: BLE001 - a crash IS a finding
                report.failures.append(
                    Failure(
                        kind="crash",
                        seed=round_seed,
                        message=traceback.format_exc(limit=6).strip(),
                    )
                )
                report.rounds += 1
        return report

    def run_update_round(self, seed: int) -> CheckReport:
        """One update-maintenance round, reproducible from ``seed``."""
        report = CheckReport(rounds=1)
        rng = random.Random(seed)
        document = self.documents.generate(rng)
        xml = serialize(document)
        # Updates draw from a private seed-derived stream, so document
        # generation (shared with the other rounds) stays untouched.
        update_rng = random.Random(seed ^ 0x0BDA7E5)
        maintainer = IncrementalMaintainer(
            ingest_string(xml, text_word_threshold=2),
            None,
            text_word_threshold=2,
        )
        twin = parse_string(xml, text_word_threshold=2)
        ops: List[UpdateOp] = []
        for step in range(self.config.updates_per_round):
            op = self._random_update(maintainer.doc, update_rng)
            ops.append(op)
            problem = self._update_step_problem(maintainer, twin, op)
            if problem is not None:
                report.failures.append(
                    self._shrunk_update_failure(
                        seed, xml, ops, f"step {step}: {problem}"
                    )
                )
                return report  # later steps on a diverged state are noise
        report.queries_checked = len(ops)
        return report

    # -- update round ---------------------------------------------------------

    def _random_update(self, doc, rng: random.Random) -> UpdateOp:
        """One random op against the doc's *current* state.

        Ops are recorded before validation, so replay (and ddmin) is a
        pure function of the recorded list — ops the mutated state no
        longer admits are skipped identically on both substrates.
        """
        size = len(doc)
        roll = rng.random()
        if roll < 0.35:
            parent = rng.randrange(size)
            position = rng.randint(0, sum(1 for _ in doc.children(parent)))
            return InsertSubtree(parent, position, self._fragment(rng))
        if roll < 0.60 and size > 1:
            return DeleteSubtree(rng.randrange(1, size))
        return ValueChange(rng.randrange(size), self._random_value_text(rng))

    def _fragment(self, rng: random.Random) -> str:
        """Serialized XML for a small insertable fragment (1-5 elements).

        Values go only on childless nodes, mirroring the generator's
        round-trip-safety rule: both substrates parse the fragment from
        its serialized form, so mixed content would desynchronize them.
        """
        config = self.config.document
        root = XMLElement(rng.choice(config.labels))
        nodes = [root]
        for _ in range(rng.randrange(5)):
            parent = rng.choice(nodes)
            nodes.append(parent.add(rng.choice(config.labels)))
        for node in nodes:
            if not node.children and rng.random() < config.value_probability:
                vtype = rng.choice(
                    (ValueType.NUMERIC, ValueType.STRING, ValueType.TEXT)
                )
                node.set_value(self.documents._value(vtype, rng))
        return serialize(XMLTree(root))

    def _random_value_text(self, rng: random.Random) -> str:
        """Raw text for a ``ValueChange``, covering every typing path."""
        roll = rng.randrange(6)
        if roll == 0:
            return str(rng.randint(0, self.config.document.numeric_high))
        if roll == 1:
            return str(-rng.randint(1, 50))
        if roll == 2:  # int64 overflow -> side-table path
            return str(2**63 + rng.randint(0, 9))
        if roll == 3:  # single non-numeric word -> STRING
            return "".join(
                rng.choice(_SYLLABLES) for _ in range(rng.randint(2, 4))
            )
        if roll == 4:  # >= text_word_threshold words -> TEXT
            return " ".join(rng.sample(_TERM_POOL, rng.randint(2, 4)))
        return "  "  # whitespace-only -> value removal (NULL)

    def _update_step_problem(
        self, maintainer: IncrementalMaintainer, twin: XMLTree, op: UpdateOp
    ) -> Optional[str]:
        """Apply one op to both substrates; first parity violation or None.

        Inapplicable ops (stale index after a delete, etc.) are skipped
        — a deterministic no-op on both sides, which keeps ddmin replay
        honest.  After an applied op the maintained columns must equal
        ``freeze(twin)``'s semantically, the maintained synopsis must
        equal a rebuild-from-scratch bit-exactly, and the invariant
        auditor must stay green.
        """
        if validate_update(maintainer.doc, op) is not None:
            return None
        maintainer.apply(op)
        apply_update_tree(twin, op, 2)
        oracle_doc = freeze(twin)
        mismatch = self._columns_mismatch(maintainer.doc, oracle_doc)
        if mismatch is not None:
            return f"column divergence after {op.op}: {mismatch}"
        rebuilt = build_reference_synopsis(oracle_doc, None, SummaryConfig())
        if synopsis_to_dict(maintainer.synopsis) != synopsis_to_dict(rebuilt):
            return (
                f"maintained synopsis diverges from rebuild after {op.op} "
                f"({len(maintainer.synopsis)} vs {len(rebuilt)} nodes)"
            )
        violations = self.auditor.audit(maintainer.synopsis)
        if violations:
            return (
                f"maintained synopsis fails audit after {op.op}: "
                f"{violations[0]}"
            )
        return None

    @staticmethod
    def _columns_mismatch(doc, oracle) -> Optional[str]:
        """First column disagreement between two columnar documents.

        Structural columns hold element indices, so they compare raw;
        labels, paths, and values compare *semantically* (interned ids
        may renumber once mutation history diverges from ingest order —
        a deleted label keeps its slot in the mutated doc's table).
        """
        if len(doc) != len(oracle):
            return f"element count {len(doc)} vs {len(oracle)}"
        for name in ("parent", "first_child", "next_sibling", "post", "level"):
            mine = getattr(doc, name)
            theirs = getattr(oracle, name)
            for index in range(len(doc)):
                if mine[index] != theirs[index]:
                    return f"{name}[{index}] = {mine[index]} vs {theirs[index]}"
        for index in range(len(doc)):
            if doc.label(index) != oracle.label(index):
                return (
                    f"label[{index}] = {doc.label(index)!r} "
                    f"vs {oracle.label(index)!r}"
                )
            if doc.label_path(index) != oracle.label_path(index):
                return (
                    f"path[{index}] = {doc.label_path(index)!r} "
                    f"vs {oracle.label_path(index)!r}"
                )
            if doc.value(index) != oracle.value(index):
                return (
                    f"value[{index}] = {doc.value(index)!r} "
                    f"vs {oracle.value(index)!r}"
                )
        return None

    def _updates_diverge(self, xml: str, ops: Sequence[UpdateOp]) -> bool:
        """ddmin predicate: does replaying ``ops`` from ``xml`` still fail?"""
        try:
            maintainer = IncrementalMaintainer(
                ingest_string(xml, text_word_threshold=2),
                None,
                text_word_threshold=2,
            )
            twin = parse_string(xml, text_word_threshold=2)
            for op in ops:
                if self._update_step_problem(maintainer, twin, op) is not None:
                    return True
        except Exception:  # noqa: BLE001 - a crash still reproduces a bug
            return True
        return False

    def _shrunk_update_failure(
        self, seed: int, xml: str, ops: List[UpdateOp], message: str
    ) -> Failure:
        """An ``update-divergence`` failure; size fields count *ops*."""
        failure = Failure(
            kind="update-divergence",
            seed=seed,
            message=message,
            document_size=len(ops),
        )
        if not self.config.shrink:
            return failure
        shrunk = shrink_updates(
            list(ops),
            lambda sequence: self._updates_diverge(xml, sequence),
            max_attempts=self.config.shrink_attempts,
        )
        failure.shrunk_size = len(shrunk)
        failure.shrunk_document = json.dumps(
            [update_to_dict(op) for op in shrunk]
        )
        return failure

    # -- stages ---------------------------------------------------------------

    def _audit(
        self,
        synopsis: XClusterSynopsis,
        seed: int,
        stage: str,
        document: XMLTree,
        report: CheckReport,
    ) -> None:
        for violation in self.auditor.audit(synopsis):
            report.failures.append(
                Failure(
                    kind="audit",
                    seed=seed,
                    message=f"{stage}: {violation}",
                    document_size=len(document),
                )
            )

    def _build_pair(
        self, document: XMLTree, value_paths
    ) -> Tuple[Optional[XClusterSynopsis], Optional[str]]:
        """Both engine stacks' builds; (synopsis, None) on parity."""
        reference = build_reference_synopsis(document, value_paths)
        structural = max(
            256,
            int(structural_size_bytes(reference) * self.config.structural_fraction),
        )
        value = max(
            256, int(value_size_bytes(reference) * self.config.value_fraction)
        )
        shapes = {}
        synopsis = None
        for scoring, value_engine in (
            ("scalar", "reference"),
            ("vectorized", "kernel"),
        ):
            config = BuildConfig(
                structural_budget=structural,
                value_budget=value,
                scoring=scoring,
                value_engine=value_engine,
            )
            built = XClusterBuilder(config).build(document, value_paths)
            shapes[scoring] = _build_shape(built)
            synopsis = built  # keep the optimized build for estimation
        if shapes["scalar"] != shapes["vectorized"]:
            return None, (
                "scalar/reference and vectorized/kernel builds diverge: "
                f"{shapes['scalar'][:2]} vs {shapes['vectorized'][:2]}"
            )
        return synopsis, None

    def _workload(self, dataset: Dataset, rng: random.Random) -> List[TwigQuery]:
        workload_seed = rng.randrange(2**32)
        generator = TwigWorkloadGenerator(
            dataset,
            seed=workload_seed,
            config=WorkloadConfig(
                queries_per_class=self.config.queries_per_class,
                max_attempts=20,
                pool_size=16,
            ),
        )
        positive = generator.generate()
        negative = make_negative_workload(dataset, positive, seed=workload_seed)
        return [wq.query for wq in positive.queries] + [
            wq.query for wq in negative.queries
        ]

    def _diverges(self, expected: float, actual: float) -> bool:
        scale = max(1.0, abs(expected))
        return abs(expected - actual) > self.config.tolerance * scale

    # -- failure construction (with shrinking) ----------------------------------

    def _shrunk_build_failure(
        self, seed: int, document: XMLTree, message: str
    ) -> Failure:
        failure = Failure(
            kind="build-divergence",
            seed=seed,
            message=message,
            document_size=len(document),
        )
        if not self.config.shrink:
            return failure

        def still_diverges(tree: XMLTree) -> bool:
            if len(tree) < 2:
                return False
            try:
                _, divergence = self._build_pair(tree, tree.value_paths())
            except Exception:  # noqa: BLE001 - a crash still reproduces a bug
                return True
            return divergence is not None

        shrunk = shrink_document(
            document, still_diverges, max_attempts=self.config.shrink_attempts
        )
        failure.shrunk_size = len(shrunk)
        failure.shrunk_document = serialize(shrunk)
        return failure

    def _shrunk_estimate_failure(
        self,
        seed: int,
        document: XMLTree,
        synopsis: XClusterSynopsis,
        query: TwigQuery,
        expected: float,
        actual: float,
    ) -> Failure:
        failure = Failure(
            kind="estimate-divergence",
            seed=seed,
            message=(
                f"scalar oracle {expected!r} vs compiled engine {actual!r}"
            ),
            query=query.to_xpath(),
            document_size=len(document),
        )
        if not self.config.shrink:
            return failure

        oracle = XClusterEstimator(synopsis)

        def still_diverges(candidate: TwigQuery) -> bool:
            try:
                return self._diverges(
                    oracle.estimate(candidate),
                    CompiledEstimator(synopsis).estimate(candidate),
                )
            except Exception:  # noqa: BLE001
                return True

        shrunk = shrink_query(query, still_diverges)
        failure.shrunk_query = shrunk.to_xpath()
        return failure

    def _columnar_failures(
        self,
        seed: int,
        document: XMLTree,
        queries: List[TwigQuery],
        baseline: List[float],
    ) -> List[Failure]:
        """The streaming-ingest round.

        Serialize the round's document, then feed the identical bytes
        to both front ends: the object-tree parser and the event-stream
        columnar ingestor.  The reference synopses and the budgeted
        builds must be bit-identical across substrates, and the
        columnar-substrate build must reproduce the round's baseline
        estimates within tolerance.  (The generated documents are
        round-trip safe at ``text_word_threshold=2`` — see
        :class:`DocumentConfig`.)
        """
        failures: List[Failure] = []
        xml = serialize(document)
        parsed = parse_string(xml, text_word_threshold=2)
        columnar = ingest_string(xml, text_word_threshold=2)
        value_paths = parsed.value_paths()

        object_reference = build_reference_synopsis(parsed, value_paths)
        columnar_reference = build_reference_synopsis(columnar, value_paths)
        if synopsis_to_dict(object_reference) != synopsis_to_dict(
            columnar_reference
        ):
            failures.append(
                Failure(
                    kind="columnar-divergence",
                    seed=seed,
                    message=(
                        "event-stream ingest and object-tree parse yield "
                        "different reference synopses"
                    ),
                    document_size=len(document),
                )
            )
            return failures  # a diverged substrate makes the build moot

        structural = max(
            256,
            int(
                structural_size_bytes(object_reference)
                * self.config.structural_fraction
            ),
        )
        value = max(
            256,
            int(value_size_bytes(object_reference) * self.config.value_fraction),
        )
        config = BuildConfig(
            structural_budget=structural,
            value_budget=value,
            scoring="vectorized",
            value_engine="kernel",
        )
        object_built = XClusterBuilder(config).build(parsed, value_paths)
        columnar_built = XClusterBuilder(config).build(columnar, value_paths)
        if synopsis_to_dict(object_built) != synopsis_to_dict(columnar_built):
            failures.append(
                Failure(
                    kind="columnar-divergence",
                    seed=seed,
                    message=(
                        "budgeted builds diverge between the columnar and "
                        "object-tree substrates"
                    ),
                    document_size=len(document),
                )
            )
            return failures

        estimator = XClusterEstimator(columnar_built)
        for query, expected in zip(queries, baseline):
            actual = estimator.estimate(query)
            if self._diverges(expected, actual):
                failures.append(
                    Failure(
                        kind="columnar-divergence",
                        seed=seed,
                        message=(
                            f"columnar-substrate build estimates {actual!r}, "
                            f"object baseline {expected!r}"
                        ),
                        query=query.to_xpath(),
                        document_size=len(document),
                    )
                )
        return failures

    def _evaluator_failures(
        self, seed: int, document: XMLTree, queries: List[TwigQuery]
    ) -> List[Failure]:
        """The exact-evaluation parity round.

        Freeze the round's document into columns and require the
        interval-join engine to reproduce the tree-walk oracle's
        binding-tuple count **bit-exactly** on every workload query and
        on mutated variants that stress the paper's path-multiplicity
        rule: child steps flipped to ``//`` (one element reachable via
        several step-paths) and name tests widened to ``*``.  Mutation
        randomness comes from a private seed-derived stream, so earlier
        stages' failure seeds stay reproducible.
        """
        failures: List[Failure] = []
        oracle = TreeWalkEvaluator(document)
        engine = IntervalEvaluator(freeze(document))
        mutation_rng = random.Random(seed ^ 0x5E1EC7)
        probes = list(queries)
        for query in queries:
            probes.extend(
                self._mutate_twig(query, mutation_rng)
                for _ in range(self.config.evaluator_variants)
            )
        for query in probes:
            expected = oracle.selectivity(query)
            actual = engine.selectivity(query)
            if expected != actual:
                failures.append(
                    self._shrunk_evaluator_failure(
                        seed, document, oracle, engine, query, expected, actual
                    )
                )
        return failures

    def _mutate_twig(self, query: TwigQuery, rng: random.Random) -> TwigQuery:
        """A ``//``-heavier / wildcarded variant of one twig query."""
        mutated = copy_query(query)
        for node in mutated.nodes():
            if node.edge is None:
                continue
            steps = []
            for step in node.edge.steps:
                axis = step.axis
                label = step.label
                if axis == "child" and rng.random() < 0.4:
                    axis = "descendant"
                if rng.random() < 0.2:
                    label = WILDCARD
                steps.append(AxisStep(axis, label))
            node.edge = EdgePath(tuple(steps))
        return mutated

    def _shrunk_evaluator_failure(
        self,
        seed: int,
        document: XMLTree,
        oracle: TreeWalkEvaluator,
        engine: IntervalEvaluator,
        query: TwigQuery,
        expected: int,
        actual: int,
    ) -> Failure:
        failure = Failure(
            kind="evaluator-divergence",
            seed=seed,
            message=(
                f"tree-walk oracle counts {expected!r}, "
                f"interval engine counts {actual!r}"
            ),
            query=query.to_xpath(),
            document_size=len(document),
        )
        if not self.config.shrink:
            return failure

        def still_diverges(candidate: TwigQuery) -> bool:
            try:
                return oracle.selectivity(candidate) != engine.selectivity(
                    candidate
                )
            except Exception:  # noqa: BLE001 - a crash still reproduces a bug
                return True

        shrunk = shrink_query(query, still_diverges)
        failure.shrunk_query = shrunk.to_xpath()
        return failure

    def _tokenizer_failures(
        self, seed: int, document: XMLTree, rng: random.Random
    ) -> List[Failure]:
        """The tokenizer-parity round.

        Serialize the round's document, derive mutated — usually
        malformed — variants of it, and require the production byte
        scanner (:func:`iter_events`) to reproduce the character-scan
        oracle (:func:`iter_events_str`) exactly on every variant:
        identical event streams on well-formed input, identical error
        message and character offset on malformed input, whole and
        randomly chunked (byte chunks may split inside multi-byte
        UTF-8 sequences).  A diverging input is shrunk character-wise
        with :func:`shrink_text`; for this kind, ``document_size`` and
        ``shrunk_size`` count characters, not elements.
        """
        failures: List[Failure] = []
        pristine = serialize(document)
        variants = [pristine] + [
            self._mutate_text(pristine, rng)
            for _ in range(self.config.tokenizer_variants)
        ]
        for variant in variants:
            message = self._tokenizer_diverges(variant)
            if message is None:
                continue
            failure = Failure(
                kind="tokenizer-divergence",
                seed=seed,
                message=message,
                document_size=len(variant),
            )
            if self.config.shrink:
                shrunk = shrink_text(
                    variant,
                    lambda text: self._tokenizer_diverges(text) is not None,
                    max_attempts=self.config.shrink_attempts,
                )
                failure.shrunk_size = len(shrunk)
                failure.shrunk_document = shrunk
            failures.append(failure)
        return failures

    def _mutate_text(self, text: str, rng: random.Random) -> str:
        """One mutated variant of a serialized document (1-3 edits)."""
        for _ in range(rng.randint(1, 3)):
            op = rng.randrange(5)
            if op == 0 and len(text) > 1:  # delete a span
                start = rng.randrange(len(text))
                text = text[:start] + text[start + rng.randint(1, 8):]
            elif op == 1:  # splice in a markup character
                at = rng.randint(0, len(text))
                text = text[:at] + rng.choice(_MUTATION_CHARS) + text[at:]
            elif op == 2 and text:  # overwrite one character
                at = rng.randrange(len(text))
                text = text[:at] + rng.choice(_MUTATION_CHARS) + text[at + 1:]
            elif op == 3:  # splice in an entity/unicode snippet
                at = rng.randint(0, len(text))
                text = text[:at] + rng.choice(_MUTATION_SNIPPETS) + text[at:]
            else:  # truncate the tail
                text = text[: rng.randint(0, len(text))]
        return text

    def _tokenizer_diverges(self, text: str) -> Optional[str]:
        """First tokenizer-parity violation on ``text``, or ``None``.

        Chunk boundaries come from a fixed-seed rng, so the verdict is
        a pure function of ``text`` — which is what makes
        :func:`shrink_text`'s predicate re-runs meaningful.
        """
        expected = _stream_outcome(iter_events_str, text)
        chunk_rng = random.Random(0xC0FFEE)
        data = text.encode("utf-8", "surrogatepass")
        probes = (
            ("byte scan of the whole str", iter_events, text),
            ("byte scan of the whole bytes", iter_events, data),
            (
                "byte scan over random byte chunks",
                iter_events,
                iter(_random_chunks(data, chunk_rng)),
            ),
            (
                "char scan over random str chunks",
                iter_events_str,
                iter(_random_chunks(text, chunk_rng)),
            ),
        )
        for name, tokenizer, source in probes:
            actual = _stream_outcome(tokenizer, source)
            if actual != expected:
                return (
                    f"{name} disagrees with the char-scan oracle: "
                    f"{_outcome_summary(actual)} vs "
                    f"{_outcome_summary(expected)}"
                )
        return None

    def _serialization_failures(
        self,
        seed: int,
        synopsis: XClusterSynopsis,
        queries: List[TwigQuery],
        baseline: List[float],
    ) -> List[Failure]:
        restored = synopsis_from_dict(synopsis_to_dict(synopsis))
        failures: List[Failure] = []
        violations = self.auditor.audit(restored)
        for violation in violations:
            failures.append(
                Failure(
                    kind="serialization-divergence",
                    seed=seed,
                    message=f"restored synopsis fails audit: {violation}",
                )
            )
        oracle = XClusterEstimator(restored)
        for query, expected in zip(queries, baseline):
            actual = oracle.estimate(query)
            if self._diverges(expected, actual):
                failures.append(
                    Failure(
                        kind="serialization-divergence",
                        seed=seed,
                        message=(
                            f"estimate {expected!r} became {actual!r} after "
                            "a serialization round-trip"
                        ),
                        query=query.to_xpath(),
                    )
                )
        return failures

    def _snapshot_failures(
        self,
        seed: int,
        synopsis: XClusterSynopsis,
        queries: List[TwigQuery],
    ) -> List[Failure]:
        """The binary-snapshot round.

        Encode the round's synopsis both ways — interchange JSON and the
        mmap snapshot format — reload each, and demand *bit-identical*
        estimates (``!=`` on floats, no tolerance) across the fuzzed
        workload.  The snapshot loader defers summary decoding, so the
        audit plus estimation here also exercises every lazy-decode
        thunk; a diverging query is shrunk to a minimal counterexample.
        """
        failures: List[Failure] = []
        encoded = synopsis_to_dict(synopsis)
        json_loaded = synopsis_from_dict(encoded)
        snapshot_loaded = synopsis_from_snapshot(snapshot_to_bytes(synopsis))

        if synopsis_to_dict(snapshot_loaded) != encoded:
            failures.append(
                Failure(
                    kind="snapshot-divergence",
                    seed=seed,
                    message=(
                        "snapshot round-trip does not reproduce "
                        "synopsis_to_dict"
                    ),
                )
            )
        for violation in self.auditor.audit(snapshot_loaded):
            failures.append(
                Failure(
                    kind="snapshot-divergence",
                    seed=seed,
                    message=f"snapshot-loaded synopsis fails audit: {violation}",
                )
            )

        json_estimator = CompiledEstimator(json_loaded)
        snapshot_estimator = CompiledEstimator(snapshot_loaded)
        for query in queries:
            expected = json_estimator.estimate(query)
            actual = snapshot_estimator.estimate(query)
            if actual != expected:
                failure = Failure(
                    kind="snapshot-divergence",
                    seed=seed,
                    message=(
                        f"JSON load estimates {expected!r} but snapshot "
                        f"load estimates {actual!r} (bit-exact required)"
                    ),
                    query=query.to_xpath(),
                )
                if self.config.shrink:

                    def still_diverges(candidate: TwigQuery) -> bool:
                        try:
                            return json_estimator.estimate(
                                candidate
                            ) != snapshot_estimator.estimate(candidate)
                        except Exception:  # noqa: BLE001
                            return True

                    shrunk = shrink_query(query, still_diverges)
                    failure.shrunk_query = shrunk.to_xpath()
                failures.append(failure)
        return failures

    # -- collection rounds (python -m repro check --collection) -------------

    def run_collection(self) -> CheckReport:
        """Collection-store rounds: shard routing vs a monolithic oracle.

        Each round builds a real on-disk collection (exact mode, no
        compression) from seeded random documents with repeated
        structures, then requires, per structural workload query:

        * **routed parity** — ``store.estimate(doc_id, q)`` bit-equals
          the estimate of a synopsis built directly from that document
          (the snapshot/container/routing stack adds zero drift);
        * **oracle parity** — the collection-wide exact sum equals both
          the summed per-document interval-join counts and the estimate
          of one monolithic synopsis built over the merged document
          (via :func:`~repro.collection.rollup.merged_document_events`).

        Queries whose merged-document count differs from the per-document
        sum (root-binding twigs: merging documents under one shared root
        changes their semantics) are skipped — additivity is the
        precondition of the oracle, not a claim about such queries.
        """
        master = random.Random(self.config.seed)
        report = CheckReport(seed=self.config.seed)
        for _ in range(self.config.rounds):
            round_seed = master.randrange(2**32)
            try:
                report.extend(self.run_collection_round(round_seed))
            except Exception:  # noqa: BLE001 - a crash IS a finding
                report.failures.append(
                    Failure(
                        kind="crash",
                        seed=round_seed,
                        message=traceback.format_exc(limit=6).strip(),
                    )
                )
                report.rounds += 1
        return report

    def run_collection_round(self, seed: int) -> CheckReport:
        """One collection round, reproducible from ``seed``."""
        import tempfile

        from repro.collection import (
            CollectionConfig,
            CollectionStore,
            build_collection,
            merged_document_events,
        )
        from repro.xmltree.columnar import from_events

        report = CheckReport(rounds=1)
        rng = random.Random(seed)
        sources = [
            serialize(self.documents.generate(rng)) for _ in range(4)
        ]
        documents = [
            (f"doc-{index:03d}", sources[rng.randrange(len(sources))])
            for index in range(10)
        ]

        # The monolithic oracle: one merged document, built through the
        # same event-splice a monolithic ingest of the corpus would see.
        merged_doc = from_events(
            merged_document_events(xml for _, xml in documents),
            text_word_threshold=2,
        )
        merged_reference = build_reference_synopsis(
            merged_doc, merged_doc.value_paths()
        )
        merged_estimator = CompiledEstimator(merged_reference)
        merged_exact = IntervalEvaluator(merged_doc)

        # Workload over the merged shape, structural queries only (value
        # summaries are sampled, so only structure is exactly additive).
        parsed = {
            xml: parse_string(xml, text_word_threshold=2)
            for xml in sources
        }
        merged_root = XMLElement(parsed[documents[0][1]].root.label)
        for _, xml in documents:
            for child in parsed[xml].root.children:
                _graft_subtree(merged_root, child)
        merged_tree = XMLTree(merged_root)
        dataset = Dataset(
            "collection-fuzz", merged_tree, merged_tree.value_paths()
        )
        queries = [
            query for query in self._workload(dataset, rng)
            if query.is_structural
        ]
        report.queries_checked = len(queries)

        # Per-distinct direct estimators and exact evaluators — the
        # "no collection machinery" baseline.
        direct: Dict[str, CompiledEstimator] = {}
        exact: Dict[str, IntervalEvaluator] = {}
        for _, xml in documents:
            if xml in direct:
                continue
            doc = ingest_string(xml, text_word_threshold=2)
            direct[xml] = CompiledEstimator(
                build_reference_synopsis(doc, doc.value_paths())
            )
            exact[xml] = IntervalEvaluator(doc)

        with tempfile.TemporaryDirectory() as root:
            build_collection(
                root,
                documents,
                CollectionConfig(shard_count=3, compress=False),
            )
            store = CollectionStore(root, max_open_shards=2, verify=True)
            for query in queries:
                for doc_id, xml in documents:
                    routed = store.estimate(doc_id, query)
                    expected = direct[xml].estimate(query)
                    if routed != expected:
                        report.failures.append(
                            Failure(
                                kind="collection-divergence",
                                seed=seed,
                                message=(
                                    f"routed estimate for {doc_id} is "
                                    f"{routed!r} but the direct synopsis "
                                    f"gives {expected!r} (bit-exact "
                                    f"required)"
                                ),
                                query=query.to_xpath(),
                            )
                        )
                exact_sum = sum(
                    exact[xml].selectivity(query) for _, xml in documents
                )
                if merged_exact.selectivity(query) != exact_sum:
                    continue  # root-binding twig: additivity doesn't apply
                collection_estimate = store.estimate_collection(query)
                oracle_estimate = merged_estimator.estimate(query)
                scale = max(1.0, abs(float(exact_sum)))
                for name, actual in (
                    ("exact per-document sum", float(exact_sum)),
                    ("monolithic merged-document synopsis", oracle_estimate),
                ):
                    if (
                        abs(collection_estimate - actual)
                        > self.config.tolerance * scale
                    ):
                        report.failures.append(
                            Failure(
                                kind="collection-divergence",
                                seed=seed,
                                message=(
                                    f"collection-wide estimate "
                                    f"{collection_estimate!r} diverges from "
                                    f"the {name} {actual!r}"
                                ),
                                query=query.to_xpath(),
                            )
                        )
        return report


def run_differential_check(
    seed: int = 20060402,
    rounds: int = 3,
    config: Optional[HarnessConfig] = None,
) -> CheckReport:
    """Convenience wrapper: run the harness with default settings."""
    if config is None:
        config = HarnessConfig(seed=seed, rounds=rounds)
    else:
        config = replace(config, seed=seed, rounds=rounds)
    return DifferentialHarness(config).run()

"""Estimation serving cost — scalar oracle vs. the compiled engine.

The paper's experiments (and every consumer in this repo: the Figure 8
sweeps, autobudget trials, negative-workload checks) estimate the same
workload against a synopsis over and over.  This bench measures that
serving pattern on XMark: a classified workload repeated
``WORKLOAD_REPEATS`` times against the reference synopsis and against a
budgeted build, on three paths — the scalar ``XClusterEstimator``
(reference oracle), the compiled ``WorkloadEstimator`` (single
process), and ``workers=4`` batched serving.  Parity is checked to
1e-9 per query, cache hit rates are recorded, and the results land in
``BENCH_estimation.json`` (same report shape as
``BENCH_construction.json``).
"""

from time import perf_counter

import common
from repro.core.estimation import WorkloadEstimator, estimate_many
from repro.core.estimator import XClusterEstimator
from repro.core.sizing import structural_size_bytes

#: The single-process speedup the compiled engine must deliver on the
#: repeated workload at full bench scale; smoke-scale runs only check
#: parity and the report plumbing (fixed costs dominate there).
SPEEDUP_FLOOR = 2.0
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: Passes over the workload — the cross-query cache serving pattern.
WORKLOAD_REPEATS = 20

#: Per-query parity bound between scalar and compiled estimates.
PARITY = 1e-9


def _relative_difference(expected, actual):
    scale = max(abs(expected), abs(actual), 1.0)
    return abs(expected - actual) / scale


def _stats_record(seconds, stats):
    return {
        "seconds": round(seconds, 4),
        "queries_estimated": stats.queries_estimated,
        "plans_compiled": stats.plans_compiled,
        "plan_cache_hits": stats.plan_cache_hits,
        "plan_cache_hit_rate": round(stats.plan_cache_hit_rate, 4),
        "plan_compile_seconds": round(stats.plan_compile_seconds, 4),
        "execute_seconds": round(stats.execute_seconds, 4),
        "reach_cache_hits": stats.reach_cache_hits,
        "reach_cache_misses": stats.reach_cache_misses,
        "reach_cache_hit_rate": round(stats.reach_cache_hit_rate, 4),
        "transition_rows_built": stats.transition_rows_built,
        "descendant_closures_built": stats.descendant_closures_built,
        "selectivity_cache_hits": stats.selectivity_cache_hits,
        "selectivity_cache_misses": stats.selectivity_cache_misses,
        "selectivity_cache_hit_rate": round(stats.selectivity_cache_hit_rate, 4),
        "max_frontier_nodes": stats.max_frontier_nodes,
        "average_frontier_nodes": round(stats.average_frontier_nodes, 2),
        "workers_used": stats.workers_used,
    }


def _run_scalar(synopsis, queries):
    estimator = XClusterEstimator(synopsis)
    started = perf_counter()
    estimates = None
    for _ in range(WORKLOAD_REPEATS):
        estimates = [estimator.estimate(query) for query in queries]
    return perf_counter() - started, estimates


def _run_compiled(synopsis, queries):
    serving = WorkloadEstimator(queries)
    started = perf_counter()
    estimates = None
    for _ in range(WORKLOAD_REPEATS):
        estimates = serving.estimate_all(synopsis)
    return perf_counter() - started, estimates, serving.stats


def _run_parallel(synopsis, queries, workers):
    started = perf_counter()
    estimates = None
    for _ in range(WORKLOAD_REPEATS):
        estimates = estimate_many(synopsis, queries, workers=workers)
    return perf_counter() - started, estimates


def test_estimation_engine_speedup(experiment_context):
    """Scalar vs compiled (vs workers=4) XMark serving → BENCH_estimation.json.

    The compiled engine must match the scalar oracle to 1e-9 on every
    query, and at full bench scale must serve the repeated workload at
    least 2x faster single-process.
    """
    context = experiment_context
    dataset_name = "xmark"
    reference = context.reference(dataset_name)
    workload = context.workload(dataset_name)
    queries = [wq.query for wq in workload.queries]
    budgeted = context.build_at_fraction(dataset_name, 0.35)

    scalar_seconds, scalar_estimates = _run_scalar(reference, queries)
    compiled_seconds, compiled_estimates, compiled_stats = _run_compiled(
        reference, queries
    )
    parallel_seconds, parallel_estimates = _run_parallel(reference, queries, 4)

    parity_max = max(
        (
            _relative_difference(expected, actual)
            for expected, actual in zip(scalar_estimates, compiled_estimates)
        ),
        default=0.0,
    )
    equivalent = parity_max <= PARITY
    parallel_matches_serial = parallel_estimates == compiled_estimates

    # The budgeted synopsis exercises merged (possibly cyclic) clusters.
    budgeted_scalar_seconds, budgeted_scalar = _run_scalar(budgeted, queries)
    budgeted_seconds, budgeted_estimates, budgeted_stats = _run_compiled(
        budgeted, queries
    )
    budgeted_parity = max(
        (
            _relative_difference(expected, actual)
            for expected, actual in zip(budgeted_scalar, budgeted_estimates)
        ),
        default=0.0,
    )
    equivalent = equivalent and budgeted_parity <= PARITY

    speedup = scalar_seconds / compiled_seconds if compiled_seconds > 0 else 0.0
    budgeted_speedup = (
        budgeted_scalar_seconds / budgeted_seconds if budgeted_seconds > 0 else 0.0
    )

    report = {
        "dataset": dataset_name,
        "scale": context.config.scale,
        "reference_nodes": len(reference),
        "budgeted_nodes": len(budgeted),
        "budgeted_structural_bytes": structural_size_bytes(budgeted),
        "queries": len(queries),
        "workload_repeats": WORKLOAD_REPEATS,
        "scalar": {"seconds": round(scalar_seconds, 4)},
        "compiled": _stats_record(compiled_seconds, compiled_stats),
        "parallel_workers_4": {"seconds": round(parallel_seconds, 4)},
        "budgeted_scalar": {"seconds": round(budgeted_scalar_seconds, 4)},
        "budgeted_compiled": _stats_record(budgeted_seconds, budgeted_stats),
        "speedup": round(speedup, 3),
        "budgeted_speedup": round(budgeted_speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": context.config.scale >= SPEEDUP_ASSERT_MIN_SCALE,
        "parity_max_rel_diff": parity_max,
        "budgeted_parity_max_rel_diff": budgeted_parity,
        "equivalent": equivalent,
        "parallel_matches_serial": parallel_matches_serial,
    }
    out_path = common.write_report("estimation", report, "BENCH_estimation.json")
    print(
        f"\nBENCH_estimation: scalar {scalar_seconds:.3f}s, "
        f"compiled {compiled_seconds:.3f}s, workers=4 {parallel_seconds:.3f}s "
        f"-> speedup {speedup:.2f}x "
        f"(reach hit rate {compiled_stats.reach_cache_hit_rate:.2f}, {out_path})"
    )

    assert equivalent, (
        f"compiled estimates diverged from the scalar oracle "
        f"(max rel diff {max(parity_max, budgeted_parity):.2e})"
    )
    assert parallel_matches_serial, "parallel serving diverged from serial"
    assert compiled_stats.reach_cache_hit_rate > 0.5, (
        "repeated workload should be served mostly from the reach cache"
    )
    if context.config.scale >= SPEEDUP_ASSERT_MIN_SCALE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"compiled speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )

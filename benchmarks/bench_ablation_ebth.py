"""Ablation A2 — end-biased term histograms vs. conventional histograms.

The paper argues (Section 3) that conventional range-bucket histograms
are ineffective for term vectors: grouping consecutive term ids into
buckets loses track of zero entries, so negative point queries get
non-zero estimates, and positive point estimates are smeared.  This
ablation compares EBTH against a conventional equi-width bucket
histogram over term ids, at matched storage, on point-term frequency
estimation over a real centroid from the XMark dataset.
"""

import pytest

from repro.experiments import format_table
from repro.values import EndBiasedTermHistogram, TermCentroid, Vocabulary
from repro.xmltree.types import ValueType


class ConventionalTermHistogram:
    """A classical equi-width histogram over term ids (the strawman).

    Buckets group consecutive term ids and store the average frequency of
    *all* ids in the range — zero and non-zero alike blur together.
    """

    def __init__(self, vocabulary, weights_by_id, bucket_count):
        self.vocabulary = vocabulary
        universe = max(weights_by_id, default=0) + 1
        width = max(1, universe // bucket_count)
        self.buckets = []
        start = 0
        while start < universe:
            end = min(universe - 1, start + width - 1)
            ids = range(start, end + 1)
            mass = sum(weights_by_id.get(i, 0.0) for i in ids)
            self.buckets.append((start, end, mass / len(ids)))
            start = end + 1

    def frequency(self, term):
        term_id = self.vocabulary.get(term)
        if term_id < 0:
            return 0.0
        for start, end, average in self.buckets:
            if start <= term_id <= end:
                return average
        return 0.0

    def size_bytes(self):
        return 12 * len(self.buckets)


def build_centroid(context):
    dataset = context.dataset("xmark")
    term_sets = [
        element.value
        for element in dataset.tree
        if element.label == "description"
        and element.value_type is ValueType.TEXT
    ]
    return TermCentroid.from_term_sets(term_sets)


def test_ebth_vs_conventional_histogram(experiment_context, benchmark, capsys):
    centroid = build_centroid(experiment_context)
    vocabulary = Vocabulary()
    # Interleave never-occurring dictionary terms with the real ones, as
    # in a realistic shared term dictionary: absent terms sit *between*
    # present ones in id space, which is exactly where conventional
    # range buckets smear frequency mass onto them.
    negative_terms = [f"neverseen{i}" for i in range(200)]
    for index, term in enumerate(sorted(centroid.weights)):
        vocabulary.intern(term)
        if index % 5 == 0 and index // 5 < len(negative_terms):
            vocabulary.intern(negative_terms[index // 5])
    for term in negative_terms:
        vocabulary.intern(term)
    detailed = EndBiasedTermHistogram.from_centroid(centroid, vocabulary)

    def run():
        # Compress the EBTH to roughly half its detailed size, then build
        # a conventional histogram with the same byte budget.
        target = detailed.size_bytes() // 2
        ebth = detailed
        while ebth.size_bytes() > target and ebth.can_compress:
            ebth = ebth.compress(16)
        positive_terms = list(centroid.weights)[:400]
        weights_by_id = {
            vocabulary.id_of(term): weight
            for term, weight in centroid.weights.items()
        }
        # Cover the whole universe, zero-weight ids included.
        weights_by_id.setdefault(len(vocabulary) - 1, 0.0)
        buckets = max(1, ebth.size_bytes() // 12)
        conventional = ConventionalTermHistogram(vocabulary, weights_by_id, buckets)

        def mean_absolute_error(summary, terms):
            return sum(
                abs(summary.frequency(term) - centroid.frequency(term))
                for term in terms
            ) / len(terms)

        return {
            "ebth_bytes": ebth.size_bytes(),
            "conventional_bytes": conventional.size_bytes(),
            "ebth_positive": mean_absolute_error(ebth, positive_terms),
            "conventional_positive": mean_absolute_error(conventional, positive_terms),
            "ebth_negative": mean_absolute_error(ebth, negative_terms),
            "conventional_negative": mean_absolute_error(conventional, negative_terms),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["Summary", "Bytes", "MAE positive terms", "MAE negative terms"],
        [
            ["EBTH", results["ebth_bytes"],
             f"{results['ebth_positive']:.4f}", f"{results['ebth_negative']:.6f}"],
            ["Conventional", results["conventional_bytes"],
             f"{results['conventional_positive']:.4f}",
             f"{results['conventional_negative']:.6f}"],
        ],
    )
    with capsys.disabled():
        print("\n== Ablation A2: EBTH vs conventional histogram (XMark terms) ==")
        print(rendered)

    # The lossless 0/1 bucket answers negative point queries exactly.
    assert results["ebth_negative"] == pytest.approx(0.0, abs=1e-12)
    assert results["conventional_negative"] >= 0.0
    # And positive point estimates are at least as good.
    assert results["ebth_positive"] <= results["conventional_positive"] + 1e-9
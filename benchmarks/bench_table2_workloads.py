"""Table 2 — workload characteristics (paper Section 6.1).

Prints the average result size of the structural queries and of the
queries with value predicates, per dataset — the paper's Table 2.
"""

from repro.experiments import format_table, table2_rows


def test_table2_workload_characteristics(experiment_context, benchmark, capsys):
    rows = benchmark.pedantic(
        table2_rows, args=(experiment_context,), rounds=1, iterations=1
    )
    rendered = format_table(
        ["Dataset", "Avg. Result Size (Struct)", "Avg. Result Size (Pred)"],
        [
            [row.dataset, f"{row.avg_result_struct:.0f}", f"{row.avg_result_pred:.0f}"]
            for row in rows
        ],
    )
    with capsys.disabled():
        print("\n== Table 2: Workload Characteristics ==")
        print(rendered)

    assert len(rows) == 2
    for row in rows:
        assert row.avg_result_struct > 0
        assert row.avg_result_pred > 0
        # Predicates filter: predicate queries return fewer tuples on
        # average than pure structural queries (as in the paper).
        assert row.avg_result_pred < row.avg_result_struct

"""Exact twig evaluation — tree-walk oracle vs. the interval engine.

Both engines answer the same workload over the same stored document and
must return bit-identical selectivity counts (paper Section 2 path
multiplicity).  The tree-walk oracle (:mod:`repro.query.evaluator`)
chases ``XMLElement`` children pointer by pointer; the interval engine
(:mod:`repro.query.interval`) runs pre/post interval-containment merges
over the columnar store's sorted per-label position arrays.

The framing is evaluation of an *already stored* document: the
streaming pipeline lands documents in :class:`ColumnarDocument` form at
ingestion time, so each engine starts from its native substrate
(object tree for the oracle, columns for the interval engine — the
one-time ``freeze`` cost is reported per point but counted in neither
pass).  The interval pass is timed **cold**: every run drops the
document's memoized subtree-end and label-position indexes and rebuilds
them inside the clock, so the reported speedup includes the full cost
of indexing, not just the merge loops.

Wall-clock is the best of :data:`TIMING_RUNS` interleaved runs per
engine.  At every sweep point the engines' counts are compared query by
query (``drift`` = number of differing queries, which must be zero).
Asserting runs add a frontier point at :data:`FRONTIER_FACTOR` x the
bench scale — an order of magnitude past the previous maximum document
scale any evaluation ran at — and the interval engine must beat the
oracle by :data:`SPEEDUP_FLOOR` x at *every* point.  Results land in
``BENCH_evaluation.json``.
"""

import gc
from time import perf_counter

import common
from repro.datasets import generate_xmark
from repro.query.evaluator import TreeWalkEvaluator
from repro.query.interval import IntervalEvaluator
from repro.workload.generator import generate_workload
from repro.xmltree.columnar import freeze

#: Wall-clock floor: the interval engine (index build included) must be
#: at least this many times faster than the oracle at every sweep point.
SPEEDUP_FLOOR = 5.0

#: Floors are only asserted at or above this bench scale (smoke-scale
#: runs only check parity and the report plumbing).
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: Fractions of the bench scale that are measured.
SWEEP_FRACTIONS = (0.25, 0.5, 1.0)

#: Asserting runs add one point at this multiple of the bench scale —
#: 10x the largest document any exact evaluation previously ran at.
FRONTIER_FACTOR = 10

#: Minimum timed runs per engine and sweep point; the minimum time is
#: reported.
TIMING_RUNS = 5

#: Small sweep points repeat beyond :data:`TIMING_RUNS` until this much
#: wall-clock has been timed (capped at :data:`TIMING_RUNS_MAX` pairs).
TIMING_BUDGET_SECONDS = 2.5
TIMING_RUNS_MAX = 25

#: Extra measurements of a sweep point whose speedup lands below the
#: asserted floor; transient load retries away, a real regression fails
#: every retry.
POINT_RETRIES = 2


def _treewalk_pass(tree, queries):
    """Evaluate the workload with the pointer-chasing oracle."""
    evaluator = TreeWalkEvaluator(tree)
    return [evaluator.selectivity(query) for query in queries]


def _interval_pass(doc, queries):
    """Evaluate the workload with a cold interval engine.

    Dropping the document's memoized indexes keeps the index build
    inside the timed region: the reported time is the full cost of
    going from stored columns to answered workload.
    """
    doc._subtree_ends = None
    doc._label_positions = None
    evaluator = IntervalEvaluator(doc)
    return [evaluator.selectivity(query) for query in queries]


def _timed_pair(tree, doc, queries):
    """Best-of-N wall clock for both engines, runs interleaved.

    Interleaving keeps clock drift and transient machine load from
    biasing one engine; taking the minimum discards scheduling noise.
    One untimed warmup pass per engine precedes the clock, and the
    collector is quiesced and paused around the timed section.
    Returns ``(treewalk_seconds, interval_seconds, counts_pair)``.
    """
    treewalk_times = []
    interval_times = []
    counts = None
    _treewalk_pass(tree, queries)
    _interval_pass(doc, queries)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        timed_total = 0.0
        for run in range(TIMING_RUNS_MAX):
            if run >= TIMING_RUNS and timed_total >= TIMING_BUDGET_SECONDS:
                break
            started = perf_counter()
            treewalk_counts = _treewalk_pass(tree, queries)
            treewalk_times.append(perf_counter() - started)
            started = perf_counter()
            interval_counts = _interval_pass(doc, queries)
            interval_times.append(perf_counter() - started)
            timed_total += treewalk_times[-1] + interval_times[-1]
            counts = (treewalk_counts, interval_counts)
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(treewalk_times), min(interval_times), counts


def _sweep_point(scale, xmark_seed, queries_per_class, floor=None,
                 frontier=False):
    """Measure both engines on one XMark scale's workload.

    With ``floor`` set, a point whose speedup misses it is re-measured
    up to :data:`POINT_RETRIES` times and the fastest interval-relative
    measurement wins.
    """
    dataset = generate_xmark(scale, xmark_seed)
    workload = generate_workload(
        dataset, queries_per_class=queries_per_class, seed=xmark_seed
    )
    queries = [wq.query for wq in workload.queries]
    started = perf_counter()
    doc = freeze(dataset.tree)
    freeze_seconds = perf_counter() - started

    treewalk_seconds, interval_seconds, counts = _timed_pair(
        dataset.tree, doc, queries
    )
    retries = POINT_RETRIES if floor is not None else 0
    for _ in range(retries):
        if (
            interval_seconds > 0
            and treewalk_seconds / interval_seconds >= floor
        ):
            break
        retry_tw, retry_iv, retry_counts = _timed_pair(
            dataset.tree, doc, queries
        )
        if retry_tw / retry_iv > treewalk_seconds / interval_seconds:
            treewalk_seconds, interval_seconds, counts = (
                retry_tw, retry_iv, retry_counts
            )
    treewalk_counts, interval_counts = counts
    drift = sum(
        1 for expected, actual in zip(treewalk_counts, interval_counts)
        if expected != actual
    )
    return {
        "scale": scale,
        "elements": len(doc),
        "queries": len(queries),
        "frontier": frontier,
        "freeze_seconds": round(freeze_seconds, 4),
        "treewalk_seconds": round(treewalk_seconds, 4),
        "interval_seconds": round(interval_seconds, 4),
        "speedup": round(
            treewalk_seconds / interval_seconds
            if interval_seconds > 0 else 0.0,
            3,
        ),
        "drift": drift,
        "equivalent": drift == 0,
    }


def test_exact_evaluation_speedup(experiment_context):
    """Oracle vs interval twig evaluation → BENCH_evaluation.json.

    Both engines must return bit-identical counts on every workload
    query at every sweep scale (zero drift).  At asserting bench scales
    the sweep adds a frontier point at :data:`FRONTIER_FACTOR` x the
    bench scale and the interval engine must clear the
    :data:`SPEEDUP_FLOOR` x wall-clock floor at every point, index
    build included.
    """
    context = experiment_context
    bench_scale = context.config.scale
    queries_per_class = context.config.queries_per_class
    asserting = bench_scale >= SPEEDUP_ASSERT_MIN_SCALE
    scales = [
        (round(bench_scale * fraction, 6), False)
        for fraction in SWEEP_FRACTIONS
    ]
    if asserting:
        scales.append((round(bench_scale * FRONTIER_FACTOR, 6), True))
    points = [
        _sweep_point(
            scale,
            context.config.xmark_seed,
            queries_per_class,
            floor=SPEEDUP_FLOOR if asserting else None,
            frontier=frontier,
        )
        for scale, frontier in scales
    ]

    # The headline is the bench-scale point; the frontier point shows
    # the ratio widening with document size rather than collapsing.
    headline = points[len(SWEEP_FRACTIONS) - 1]
    equivalent = all(point["equivalent"] for point in points)
    speedup = headline["speedup"]

    report = {
        "dataset": "xmark",
        "scale": bench_scale,
        "sweep": points,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": asserting,
        "equivalent": equivalent,
    }
    out_path = common.write_report("evaluation", report, "BENCH_evaluation.json")
    frontier_note = ""
    if asserting:
        frontier = points[-1]
        frontier_note = (
            f", frontier x{FRONTIER_FACTOR} scale {frontier['scale']}: "
            f"{frontier['speedup']:.2f}x over {frontier['elements']} elements"
        )
    print(
        f"\nBENCH_evaluation: treewalk {headline['treewalk_seconds']:.3f}s, "
        f"interval {headline['interval_seconds']:.3f}s over "
        f"{headline['queries']} queries -> speedup {speedup:.2f}x"
        f"{frontier_note} ({out_path})"
    )

    assert equivalent, "interval engine drifted from the tree-walk oracle"
    if asserting:
        for point in points:
            assert point["speedup"] >= SPEEDUP_FLOOR, (
                f"interval engine fell below the {SPEEDUP_FLOOR}x speedup "
                f"floor at scale {point['scale']}: {point['speedup']:.2f}x"
            )

"""Construction cost — XCLUSTERBUILD timing and pool behaviour.

The paper motivates the localized Δ metric and the bounded candidate
pool (``H_m`` / ``H_l``) with construction efficiency (Section 4.3).
These benches measure the real costs: reference-synopsis construction,
and a full budgeted build at two pool configurations.
"""

import pytest

from repro.core import build_reference_synopsis
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.sizing import structural_size_bytes


def test_reference_construction_time(experiment_context, benchmark):
    dataset = experiment_context.dataset("imdb")
    synopsis = benchmark.pedantic(
        build_reference_synopsis,
        args=(dataset.tree, dataset.value_paths),
        rounds=3,
        iterations=1,
    )
    assert len(synopsis) > 10


@pytest.mark.parametrize("pool_max,pool_min", [(2000, 1000), (8000, 4000)])
def test_budgeted_build_time(experiment_context, benchmark, pool_max, pool_min):
    context = experiment_context
    reference = context.reference("imdb")
    budget = structural_size_bytes(reference) // 10

    def run():
        synopsis = context.fresh_reference("imdb")
        config = BuildConfig(
            structural_budget=budget,
            value_budget=10**9,
            pool_max=pool_max,
            pool_min=pool_min,
        )
        builder = XClusterBuilder(config)
        builder.compress(synopsis)
        return builder.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.structural_budget_met
    assert stats.merges_applied > 0

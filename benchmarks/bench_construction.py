"""Construction cost — XCLUSTERBUILD timing and pool behaviour.

The paper motivates the localized Δ metric and the bounded candidate
pool (``H_m`` / ``H_l``) with construction efficiency (Section 4.3).
These benches measure the real costs: reference-synopsis construction,
a full budgeted build at two pool configurations, and the candidate
-scoring engine comparison (scalar reference path vs the vectorized
profile-backed engine, plus an opt-in parallel pool-construction
datapoint), whose results land in ``BENCH_construction.json``.
"""

from time import perf_counter

import pytest

import common
from repro.core import build_reference_synopsis
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.sizing import structural_size_bytes

#: The end-to-end speedup the vectorized engine must deliver at full
#: bench scale; tiny smoke-scale runs only check the report plumbing
#: (fixed costs dominate and timings are noise there).
SPEEDUP_FLOOR = 2.0
SPEEDUP_ASSERT_MIN_SCALE = 0.3


def test_reference_construction_time(experiment_context, benchmark):
    dataset = experiment_context.dataset("imdb")
    synopsis = benchmark.pedantic(
        build_reference_synopsis,
        args=(dataset.tree, dataset.value_paths),
        rounds=3,
        iterations=1,
    )
    assert len(synopsis) > 10


@pytest.mark.parametrize("pool_max,pool_min", [(2000, 1000), (8000, 4000)])
def test_budgeted_build_time(experiment_context, benchmark, pool_max, pool_min):
    context = experiment_context
    reference = context.reference("imdb")
    budget = structural_size_bytes(reference) // 10

    def run():
        synopsis = context.fresh_reference("imdb")
        config = BuildConfig(
            structural_budget=budget,
            value_budget=10**9,
            pool_max=pool_max,
            pool_min=pool_min,
        )
        builder = XClusterBuilder(config)
        builder.compress(synopsis)
        return builder.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.structural_budget_met
    assert stats.merges_applied > 0


def _timed_build(context, dataset_name, budget, scoring, workers=1):
    """One full budgeted build; returns (seconds, stats, synopsis)."""
    synopsis = context.fresh_reference(dataset_name)
    config = BuildConfig(
        structural_budget=budget,
        value_budget=10**9,
        pool_max=context.config.pool_max,
        pool_min=context.config.pool_min,
        scoring=scoring,
        workers=workers,
    )
    builder = XClusterBuilder(config)
    started = perf_counter()
    builder.compress(synopsis)
    elapsed = perf_counter() - started
    return elapsed, builder.stats, synopsis


def _stats_record(seconds, stats):
    return {
        "seconds": round(seconds, 4),
        "merges_applied": stats.merges_applied,
        "pool_rebuilds": stats.pool_rebuilds,
        "pool_build_seconds": round(stats.pool_build_seconds, 4),
        "merge_phase_seconds": round(stats.merge_phase_seconds, 4),
        "value_phase_seconds": round(stats.value_phase_seconds, 4),
        "scoring_calls": stats.scoring_calls,
        "selectivity_cache_hits": stats.selectivity_cache_hits,
        "selectivity_cache_misses": stats.selectivity_cache_misses,
        "selectivity_cache_hit_rate": round(stats.selectivity_cache_hit_rate, 4),
        "profile_hits": stats.profile_hits,
        "profile_misses": stats.profile_misses,
        "profile_hit_rate": round(stats.profile_hit_rate, 4),
        "pool_trims": stats.pool_trims,
        "candidates_trimmed": stats.candidates_trimmed,
        "workers_used": stats.workers_used,
        "final_structural_bytes": stats.final_structural_bytes,
        "final_nodes": stats.final_nodes,
    }


def test_scoring_engine_speedup(experiment_context):
    """Scalar vs vectorized (vs parallel) XMark builds → BENCH_construction.json.

    The vectorized engine must reproduce the scalar merge decisions
    exactly, and at full bench scale must deliver at least a 2x
    end-to-end speedup over the pre-optimization scalar path.
    """
    context = experiment_context
    dataset_name = "xmark"
    reference = context.reference(dataset_name)
    budget = structural_size_bytes(reference) // 10

    scalar_seconds, scalar_stats, scalar_synopsis = _timed_build(
        context, dataset_name, budget, "scalar"
    )
    vector_seconds, vector_stats, vector_synopsis = _timed_build(
        context, dataset_name, budget, "vectorized"
    )
    parallel_seconds, parallel_stats, parallel_synopsis = _timed_build(
        context, dataset_name, budget, "vectorized", workers=4
    )

    speedup = scalar_seconds / vector_seconds if vector_seconds > 0 else 0.0

    def shape(synopsis):
        return (
            len(synopsis),
            structural_size_bytes(synopsis),
            sorted((n.label, n.value_type.value, n.count) for n in synopsis),
        )

    equivalent = (
        scalar_stats.merges_applied == vector_stats.merges_applied
        and shape(scalar_synopsis) == shape(vector_synopsis)
    )
    parallel_matches_serial = (
        parallel_stats.merges_applied == vector_stats.merges_applied
        and shape(parallel_synopsis) == shape(vector_synopsis)
    )

    report = {
        "dataset": dataset_name,
        "scale": context.config.scale,
        "reference_nodes": len(reference),
        "structural_budget": budget,
        "scalar": _stats_record(scalar_seconds, scalar_stats),
        "vectorized": _stats_record(vector_seconds, vector_stats),
        "parallel_workers_4": _stats_record(parallel_seconds, parallel_stats),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": context.config.scale >= SPEEDUP_ASSERT_MIN_SCALE,
        "equivalent": equivalent,
        "parallel_matches_serial": parallel_matches_serial,
    }
    out_path = common.write_report(
        "construction", report, "BENCH_construction.json"
    )
    print(
        f"\nBENCH_construction: scalar {scalar_seconds:.2f}s, "
        f"vectorized {vector_seconds:.2f}s, workers=4 {parallel_seconds:.2f}s "
        f"-> speedup {speedup:.2f}x ({out_path})"
    )

    assert equivalent, "vectorized build diverged from the scalar reference"
    assert parallel_matches_serial, "parallel build diverged from serial"
    if context.config.scale >= SPEEDUP_ASSERT_MIN_SCALE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )

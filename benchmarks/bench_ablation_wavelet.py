"""Ablation A4 — histograms vs. Haar wavelets for NUMERIC summaries.

The paper treats the NUMERIC mechanism as pluggable (§3 names wavelets
as an alternative).  This bench builds the full IMDB synopsis twice —
once with histogram summaries, once with wavelet summaries — at the same
budgets and compares numeric-class workload error.
"""

from repro.core import build_reference_synopsis, structural_size_bytes, value_size_bytes
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.experiments import format_table
from repro.values.summary import SummaryConfig
from repro.workload import evaluate_synopsis, sanity_bound
from repro.workload.generator import QueryClass


def test_histogram_vs_wavelet(experiment_context, benchmark, capsys):
    context = experiment_context
    dataset = context.dataset("imdb")
    workload = context.workload("imdb")
    bound = sanity_bound([wq.exact for wq in workload.queries])

    def build_and_score(mechanism: str):
        summary_config = SummaryConfig(numeric_summary=mechanism)
        reference = build_reference_synopsis(
            dataset.tree, dataset.value_paths, summary_config
        )
        config = BuildConfig(
            structural_budget=structural_size_bytes(reference) // 3,
            value_budget=int(value_size_bytes(reference) * 0.45),
            pool_max=context.config.pool_max,
            pool_min=context.config.pool_min,
            summary=summary_config,
        )
        XClusterBuilder(config).compress(reference)
        report = evaluate_synopsis(reference, workload, bound)
        return report

    def run():
        return {
            mechanism: build_and_score(mechanism)
            for mechanism in ("histogram", "wavelet")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["NUMERIC mechanism", "Numeric error (%)", "Overall error (%)"],
        [
            [
                mechanism,
                f"{100 * report.class_error(QueryClass.NUMERIC):.1f}",
                f"{100 * report.overall:.1f}",
            ]
            for mechanism, report in reports.items()
        ],
    )
    with capsys.disabled():
        print("\n== Ablation A4: NUMERIC mechanism (IMDB, same budgets) ==")
        print(rendered)

    for report in reports.values():
        assert report.class_error(QueryClass.NUMERIC) < 0.25

"""Figure 8(b) — XMark: relative estimation error vs. synopsis size.

Regenerates the five series of the paper's Figure 8(b).  Checked shape
claims (paper Section 6.2):

* the final overall error is well below the error of the smallest
  structural summary (the paper reports 63% -> <10% on XMark);
* TEXT error starts highest among the classes (XMark's low-selectivity
  keyword predicates) and decreases with budget;
* structural error stays below 5% at modest budgets.
"""

from repro.experiments import format_series
from repro.experiments.figures import FIGURE8_SERIES


def test_figure8_xmark(figure8, benchmark, capsys):
    result = benchmark.pedantic(figure8, args=("xmark",), rounds=1, iterations=1)
    table = result.as_series_table()
    rendered = format_series(
        "== Figure 8(b): XMark — Avg. Rel. Error (%) vs Synopsis Size (KB) ==",
        "Size(KB)",
        result.total_kb,
        [table[name] for name, _ in FIGURE8_SERIES],
        [name for name, _ in FIGURE8_SERIES],
    )
    with capsys.disabled():
        print()
        print(rendered)

    overall = table["Overall"]
    assert overall[-1] < 0.15
    assert overall[-1] < max(overall[:3]) / 2  # strong decreasing trend
    text = table["Text"]
    assert text[0] == max(
        table[name][0]
        for name in ("Text", "String", "Numeric", "Struct")
        if table[name][0] == table[name][0]
    )
    assert text[-1] < text[0]
    struct = table["Struct"]
    assert all(error < 0.05 for error in struct)

"""Figure 9 — absolute estimation error for low-count queries.

The paper's Figure 9 explains the high *relative* TEXT errors of Figure
8(b): queries whose true size falls below the sanity bound have tiny
absolute errors (the paper reports ~1.09 tuples for XMark TEXT), so the
relative numbers are artifacts of small denominators.  This bench prints
the same per-class absolute-error table at the largest budget point.
"""

from repro.experiments import figure9_rows, format_table


def test_figure9_low_count_absolute_error(figure8, benchmark, capsys):
    def run():
        return figure9_rows(figure8("imdb"), figure8("xmark"))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["", "IMDB", "XMark"],
        [
            [row.query_class.value.capitalize(), f"{row.imdb:.3f}", f"{row.xmark:.3f}"]
            for row in rows
        ],
    )
    with capsys.disabled():
        print("\n== Figure 9: Absolute error for low-count queries ==")
        print(rendered)

    assert len(rows) == 3
    for row in rows:
        # The paper's values range from 0 to 5.12 tuples; absolute errors
        # on low-count queries must stay within a few tuples.
        assert 0.0 <= row.imdb < 10.0
        assert 0.0 <= row.xmark < 10.0

"""Shared fixtures for the experiment benchmarks.

Every bench regenerates one table or figure of the paper's Section 6 and
prints the same rows/series.  The experiment scale is configurable::

    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only -s

The default (0.35) keeps the full bench run at a few minutes of pure
Python.  Figure sweeps are computed once per session and shared between
the benches that consume them (Figure 8 feeds Figure 9).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig, ExperimentContext, figure8_series

DEFAULT_SCALE = 0.35
DEFAULT_QUERIES_PER_CLASS = 15
SWEEP_FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.35, 0.55, 1.0)


@pytest.fixture(scope="session")
def experiment_context() -> ExperimentContext:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    queries = int(
        os.environ.get("REPRO_BENCH_QUERIES", DEFAULT_QUERIES_PER_CLASS)
    )
    config = ExperimentConfig(
        scale=scale,
        queries_per_class=queries,
        structural_fractions=SWEEP_FRACTIONS,
        pool_max=8000,
        pool_min=4000,
    )
    return ExperimentContext(config)


@pytest.fixture(scope="session")
def figure8_cache():
    """Session cache of Figure 8 sweep results, keyed by dataset."""
    return {}


@pytest.fixture(scope="session")
def figure8(experiment_context, figure8_cache):
    """Accessor computing (once) the Figure 8 sweep for a dataset."""

    def get(dataset_name: str):
        if dataset_name not in figure8_cache:
            figure8_cache[dataset_name] = figure8_series(
                experiment_context, dataset_name
            )
        return figure8_cache[dataset_name]

    return get

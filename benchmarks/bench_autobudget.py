"""Extension — automatic B_str/B_val allocation (paper's deferred idea).

Section 4.3 defers the automatic split of a unified budget to future
work, sketching a search over Bstr/Bval ratios driven by sample-workload
error.  This bench runs that search and compares the chosen split with
fixed naive splits (10/90, 50/50) at the same total budget.
"""

from repro.core import allocate_budget, total_size_bytes
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.experiments import format_table
from repro.workload import evaluate_synopsis, sanity_bound

TOTAL_FRACTION = 0.35


def test_automatic_budget_allocation(experiment_context, benchmark, capsys):
    context = experiment_context
    workload = context.workload("imdb")
    bound = sanity_bound([wq.exact for wq in workload.queries])
    reference = context.reference("imdb")
    total = int(total_size_bytes(reference) * TOTAL_FRACTION)
    sample = [(wq.query, wq.exact) for wq in workload.queries[::3]]
    config = BuildConfig(
        pool_max=context.config.pool_max, pool_min=context.config.pool_min
    )

    def run():
        auto = allocate_budget(
            reference, total, sample, config, ratio_grid=(0.05, 0.15, 0.3, 0.5)
        )
        rows = [("auto (ratio %.3f)" % auto.ratio,
                 evaluate_synopsis(auto.synopsis, workload, bound).overall)]
        for ratio in (0.1, 0.5):
            synopsis = context.fresh_reference("imdb")
            fixed = BuildConfig(
                structural_budget=int(total * ratio),
                value_budget=total - int(total * ratio),
                pool_max=config.pool_max,
                pool_min=config.pool_min,
            )
            XClusterBuilder(fixed).compress(synopsis)
            rows.append(
                (f"fixed {ratio:.0%} structural",
                 evaluate_synopsis(synopsis, workload, bound).overall)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["Budget split", "Overall error (%)"],
        [[name, f"{100 * value:.1f}"] for name, value in rows],
    )
    with capsys.disabled():
        print(f"\n== Extension: automatic budget split (IMDB, {total} bytes) ==")
        print(rendered)

    auto_error = rows[0][1]
    # The searched split must not lose to the naive fixed splits (it saw
    # a third of the workload as its sample).
    assert auto_error <= min(error for _, error in rows[1:]) + 0.02

"""Phase-2 value compression — reference oracles vs. the kernel engine.

Phase 2 of XCLUSTERBUILD repeatedly picks the valued node whose next
compression step (``hist_cmprs`` / ``st_cmprs`` / ``tv_cmprs``) loses the
least accuracy per byte saved.  The reference summary classes recompute
each step from scratch; the kernel engine
(:mod:`repro.values.kernels`) drives the same greedy sequences through
incremental priority queues and persistent per-node steppers.

This bench isolates phase 2 on XMark: the structural budget is set to
the full reference size (so phase 1 applies no merges and both runs
start from identical summaries) while the value budget forces a deep
compression pass.  The same build runs once per engine; the kernel run
must reproduce the reference run *exactly* — same step count, same
per-node summary sizes, estimates within 1e-9 — and at full bench scale
must deliver at least a 2x speedup on the combined ``st_cmprs`` +
``hist_cmprs`` compression time.  Results land in
``BENCH_value_kernels.json`` (same report shape as
``BENCH_estimation.json``).
"""

import common
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.estimator import XClusterEstimator
from repro.core.sizing import (
    structural_size_bytes,
    value_size_bytes,
    value_size_breakdown,
)

#: Speedup the kernel engine must deliver on the combined st_cmprs +
#: hist_cmprs compression time at full bench scale; smoke-scale runs
#: only check parity and the report plumbing.
SPEEDUP_FLOOR = 2.0
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: Value budget as a fraction of the reference value size — low enough
#: that every summary family compresses through many greedy steps.
VALUE_FRACTION = 0.25

#: Per-query parity bound between the two engines' estimates.
PARITY = 1e-9


def _relative_difference(expected, actual):
    scale = max(abs(expected), abs(actual), 1.0)
    return abs(expected - actual) / scale


def _run_build(context, dataset_name, engine, structural_budget, value_budget):
    synopsis = context.fresh_reference(dataset_name)
    builder = XClusterBuilder(
        BuildConfig(
            structural_budget=structural_budget,
            value_budget=value_budget,
            pool_max=context.config.pool_max,
            pool_min=context.config.pool_min,
            value_engine=engine,
        )
    )
    builder.compress(synopsis)
    return synopsis, builder.stats


def _summary_sizes(synopsis):
    """Per-node (family, size) fingerprint of every value summary."""
    return {
        node.node_id: (node.value_type.name, node.vsumm.size_bytes())
        for node in synopsis.valued_nodes()
    }


def _stats_record(stats):
    compression_seconds = (
        stats.hist_cmprs_seconds
        + stats.st_cmprs_seconds
        + stats.tv_cmprs_seconds
        + stats.other_cmprs_seconds
    )
    return {
        "value_phase_seconds": round(stats.value_phase_seconds, 4),
        "compression_seconds": round(compression_seconds, 4),
        "hist_cmprs_seconds": round(stats.hist_cmprs_seconds, 4),
        "st_cmprs_seconds": round(stats.st_cmprs_seconds, 4),
        "tv_cmprs_seconds": round(stats.tv_cmprs_seconds, 4),
        "other_cmprs_seconds": round(stats.other_cmprs_seconds, 4),
        "value_delta_seconds": round(stats.value_delta_seconds, 4),
        "value_steps_applied": stats.value_steps_applied,
        "value_stale_pops": stats.value_stale_pops,
        "final_value_bytes": stats.final_value_bytes,
        "value_budget_met": stats.value_budget_met,
        "engine": stats.value_engine_used,
    }


def test_value_kernel_engine_speedup(experiment_context):
    """Reference vs kernel phase-2 XMark build → BENCH_value_kernels.json.

    The kernel engine must replay the reference engine's greedy
    compression sequence exactly (zero parity drift) and at full bench
    scale must run the st_cmprs + hist_cmprs work at least 2x faster.
    """
    context = experiment_context
    dataset_name = "xmark"
    reference = context.reference(dataset_name)
    structural_budget = structural_size_bytes(reference)
    value_budget = int(value_size_bytes(reference) * VALUE_FRACTION)
    queries = [wq.query for wq in context.workload(dataset_name).queries]

    reference_synopsis, reference_stats = _run_build(
        context, dataset_name, "reference", structural_budget, value_budget
    )
    kernel_synopsis, kernel_stats = _run_build(
        context, dataset_name, "kernel", structural_budget, value_budget
    )

    # Parity: the kernel engine must make the identical greedy decisions,
    # leaving every node's summary at the same family and size ...
    reference_sizes = _summary_sizes(reference_synopsis)
    kernel_sizes = _summary_sizes(kernel_synopsis)
    drift_nodes = sorted(
        node_id
        for node_id in set(reference_sizes) | set(kernel_sizes)
        if reference_sizes.get(node_id) != kernel_sizes.get(node_id)
    )
    parity_drift = len(drift_nodes)
    steps_match = (
        reference_stats.value_steps_applied == kernel_stats.value_steps_applied
    )

    # ... and the compressed synopses must estimate alike.
    reference_estimator = XClusterEstimator(reference_synopsis)
    kernel_estimator = XClusterEstimator(kernel_synopsis)
    parity_max = max(
        (
            _relative_difference(
                reference_estimator.estimate(query),
                kernel_estimator.estimate(query),
            )
            for query in queries
        ),
        default=0.0,
    )
    equivalent = parity_drift == 0 and steps_match and parity_max <= PARITY

    reference_hist_st = (
        reference_stats.hist_cmprs_seconds + reference_stats.st_cmprs_seconds
    )
    kernel_hist_st = (
        kernel_stats.hist_cmprs_seconds + kernel_stats.st_cmprs_seconds
    )
    speedup = reference_hist_st / kernel_hist_st if kernel_hist_st > 0 else 0.0
    phase_speedup = (
        reference_stats.value_phase_seconds / kernel_stats.value_phase_seconds
        if kernel_stats.value_phase_seconds > 0
        else 0.0
    )

    report = {
        "dataset": dataset_name,
        "scale": context.config.scale,
        "reference_nodes": len(reference),
        "valued_nodes": len(reference_sizes),
        "structural_budget": structural_budget,
        "value_budget": value_budget,
        "reference_value_bytes": value_size_bytes(reference),
        "value_size_breakdown": value_size_breakdown(kernel_synopsis),
        "queries": len(queries),
        "reference": _stats_record(reference_stats),
        "kernel": _stats_record(kernel_stats),
        "speedup": round(speedup, 3),
        "value_phase_speedup": round(phase_speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": context.config.scale >= SPEEDUP_ASSERT_MIN_SCALE,
        "parity_drift": parity_drift,
        "drift_nodes": drift_nodes[:20],
        "steps_match": steps_match,
        "parity_max_rel_diff": parity_max,
        "equivalent": equivalent,
    }
    out_path = common.write_report(
        "value_kernels", report, "BENCH_value_kernels.json"
    )
    print(
        f"\nBENCH_value_kernels: reference st+hist {reference_hist_st:.3f}s, "
        f"kernel {kernel_hist_st:.3f}s -> speedup {speedup:.2f}x "
        f"(phase {phase_speedup:.2f}x, drift {parity_drift}, {out_path})"
    )

    assert steps_match, (
        f"kernel engine applied {kernel_stats.value_steps_applied} steps, "
        f"reference applied {reference_stats.value_steps_applied}"
    )
    assert parity_drift == 0, (
        f"{parity_drift} nodes diverged between engines "
        f"(first: {drift_nodes[:5]})"
    )
    assert equivalent, (
        f"kernel estimates diverged from the reference engine "
        f"(max rel diff {parity_max:.2e})"
    )
    if context.config.scale >= SPEEDUP_ASSERT_MIN_SCALE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"kernel speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )

"""Collection store — dedup build throughput + workload-driven budgets.

Three measurements, one report (``BENCH_collection.json``):

**Build.**  A Zipf-distributed corpus (many documents drawn from few
distinct templates — the shape real document collections have) is built
two ways at each sweep point: the naive baseline runs the full
single-document pipeline (ingest → reference synopsis → budgeted
compression → snapshot encode) once *per document*, serially; the
collection build deduplicates by content hash and runs each distinct
structure once through the same pipeline, fanned out over
:mod:`repro.core.parallel`.  At every asserting sweep point with at
least :data:`ASSERT_MIN_DOCUMENTS` documents the dedup build must be
:data:`SPEEDUP_FLOOR` x faster — with zero parity drift: a shard-routed
estimate must be bit-identical to an estimate from a synopsis built
directly from the same document at the same budgets, and the
collection-wide sum must match per-document exact interval counts in
uncompressed mode.

**Serve.**  The built store is driven with a Zipfian document-popularity
workload (skew :data:`ZIPF_SKEW`) through the shard router and the LRU
of open containers; the report records routed-estimate p50/p99 latency.

**Budgets.**  The same Zipfian log is fed to
:func:`repro.collection.rebalance_collection`, which clusters it and
waterfills synopsis bytes toward the hot shards under the
bytes-conserving multiplier scheme.  The report records the workload's
frequency-weighted relative estimation error before (uniform budgets)
and after (workload budgets) at equal total bytes — the reallocation
must not lose accuracy, and on asserting runs must strictly reduce it.
"""

import copy
import gc
import os
import random
import tempfile
from time import perf_counter

import common
from repro.collection import (
    CollectionConfig,
    CollectionStore,
    build_collection,
    rebalance_collection,
)
from repro.collection.build import _split_budget
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.estimation import CompiledEstimator
from repro.core.reference import build_reference_synopsis
from repro.core.snapshot import snapshot_to_bytes, synopsis_from_snapshot
from repro.query.interval import IntervalEvaluator
from repro.query.xpath import parse_twig
from repro.xmltree.columnar import ingest_string

#: The dedup build must beat the naive per-document serial build by at
#: least this factor at every asserting sweep point.
SPEEDUP_FLOOR = 3.0

#: Floors are only asserted at or above this bench scale.
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: ... and only at sweep points with at least this many documents (the
#: dedup advantage is a function of corpus size, not bench scale).
ASSERT_MIN_DOCUMENTS = 1000

#: Corpus size at bench scale 1.0; sweep points take fractions of it.
DOCUMENTS_AT_FULL_SCALE = 3000

SWEEP_FRACTIONS = (0.25, 0.5, 1.0)

#: Distinct document structures the Zipf corpus draws from.
TEMPLATES = 20

#: Zipf skew for both template popularity and the serve workload.
ZIPF_SKEW = 1.1

SHARD_COUNT = 8

#: Total synopsis bytes for the compressed store — tight enough that
#: per-payload compression is lossy, so budget placement matters.
TOTAL_BUDGET = 96 * 1024

STRUCTURAL_SHARE = 0.3

#: Routed-estimate requests in the latency/error workload.
SERVE_REQUESTS = 600


def _template_xml(variant: int, items: int) -> str:
    """One distinct document structure: varied labels, varied fanout."""
    parts = []
    for i in range(items):
        label = f"f{(variant + i) % 11}"
        parts.append(
            f"<item><{label}><name>v{variant % 4}-{i % 6}</name>"
            f"<val>{(i * 13 + variant) % 29}</val></{label}>"
            f"<tag{i % 3}>t{(variant * 5 + i) % 17}</tag{i % 3}></item>"
        )
    return (
        f"<root><meta><id>tpl{variant}</id></meta>{''.join(parts)}</root>"
    )


def _zipf_weights(n: int, skew: float):
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


def _corpus(documents: int, seed: int):
    """``(doc_id, xml)`` pairs: Zipf draws over distinct templates."""
    rng = random.Random(seed)
    templates = [
        _template_xml(variant, 18 + 3 * (variant % 5))
        for variant in range(TEMPLATES)
    ]
    picks = rng.choices(
        range(TEMPLATES), weights=_zipf_weights(TEMPLATES, ZIPF_SKEW),
        k=documents,
    )
    return [(f"doc-{i:05d}", templates[picks[i]]) for i in range(documents)]


#: The workload mixes structural twigs (exactly additive, used for the
#: sum-parity check) with numeric range predicates — value-summary
#: estimates are the budget-sensitive ones, so these are what the
#: uniform-vs-workload budget comparison measures.
QUERY_TEXTS = (
    "//item/f0/name",
    "//item//val",
    "/root/meta/id",
    "//item//val[. >= 15]",
    "//item//val[. <= 7]",
    "//item/f3/val[. >= 10]",
    "//val[. in [5, 20]]",
)


def _queries():
    return [parse_twig(text) for text in QUERY_TEXTS]


def _naive_serial_build(docs, total_budget, compress):
    """The baseline: the full pipeline once per document, no sharing."""
    ingested = {}
    total_elements = 0
    for _doc_id, xml in docs:
        if xml not in ingested:
            ingested[xml] = len(ingest_string(xml, text_word_threshold=2))
        total_elements += ingested[xml]
    rate = total_budget / max(1, total_elements)
    blobs = []
    for _doc_id, xml in docs:
        doc = ingest_string(xml, text_word_threshold=2)
        reference = build_reference_synopsis(doc, doc.value_paths())
        synopsis = reference
        if compress:
            budget = max(512, int(round(rate * len(doc))))
            b_str, b_val = _split_budget(budget, STRUCTURAL_SHARE)
            XClusterBuilder(
                BuildConfig(structural_budget=b_str, value_budget=b_val)
            ).compress(synopsis)
        blobs.append(snapshot_to_bytes(synopsis))
    return blobs


def _timed(fn):
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = perf_counter()
        result = fn()
        return perf_counter() - started, result
    finally:
        if gc_was_enabled:
            gc.enable()


def _direct_estimates(xml, b_str, b_val, compress, queries):
    """The single-document pipeline at the store's exact budgets.

    Mirrors a standalone deployment of the same document end to end —
    compress a copy of the reference, encode to a snapshot, serve from
    the decode — so parity against the routed path is bit-exact, not
    merely close: in-place compression of a never-snapshotted synopsis
    differs by float ulps.
    """
    doc = ingest_string(xml, text_word_threshold=2)
    synopsis = build_reference_synopsis(doc, doc.value_paths())
    if compress:
        synopsis = copy.deepcopy(synopsis)
        XClusterBuilder(
            BuildConfig(structural_budget=b_str, value_budget=b_val)
        ).compress(synopsis)
    estimator = CompiledEstimator(synopsis_from_snapshot(snapshot_to_bytes(synopsis)))
    return [estimator.estimate(query) for query in queries]


def _parity_drift(store, docs, compress, queries):
    """Routed vs direct single-synopsis estimates, bit-for-bit."""
    drift = 0
    checked = set()
    for doc_id, xml in docs:
        if xml in checked:
            continue
        checked.add(xml)
        shard_id, index = store.payload_of(doc_id)
        info = store.reader(shard_id).payloads[index]
        direct = _direct_estimates(
            xml, info.structural_budget, info.value_budget, compress, queries
        )
        routed = [store.estimate(doc_id, query) for query in queries]
        drift += sum(1 for r, d in zip(routed, direct) if r != d)
    return drift, len(checked)


def _exact_sum_drift(store, docs, queries):
    """Collection-wide sums vs exact interval counts (exact mode only)."""
    drift = 0
    exact_cache = {}
    for query in queries:
        if not query.is_structural:
            continue
        exact = 0.0
        for _doc_id, xml in docs:
            key = (id(query), xml)
            if key not in exact_cache:
                exact_cache[key] = IntervalEvaluator(
                    ingest_string(xml, text_word_threshold=2)
                ).selectivity(query)
            exact += exact_cache[key]
        if abs(store.estimate_collection(query) - exact) > 1e-6 * max(
            1.0, exact
        ):
            drift += 1
    return drift


def _sweep_point(documents, seed, asserting):
    """Time naive-vs-dedup at one corpus size; parity is bit-exact."""
    docs = _corpus(documents, seed)
    queries = _queries()

    naive_seconds, _ = _timed(
        lambda: _naive_serial_build(docs, TOTAL_BUDGET, compress=True)
    )

    with tempfile.TemporaryDirectory() as tmpdir:
        root = os.path.join(tmpdir, "coll")
        config = CollectionConfig(
            shard_count=SHARD_COUNT,
            total_budget=TOTAL_BUDGET,
            structural_share=STRUCTURAL_SHARE,
            compress=True,
            workers=max(1, (os.cpu_count() or 1) - 1),
        )
        dedup_seconds, (manifest, report) = _timed(
            lambda: build_collection(root, docs, config)
        )
        store = CollectionStore(root)
        drift, structures = _parity_drift(store, docs, True, queries)

        # Exact-mode additivity on a slice of the corpus (uncompressed
        # payloads sum exactly; the compressed store's sums are
        # estimates and are exercised by the budget phase instead).
        exact_root = os.path.join(tmpdir, "exact")
        exact_docs = docs[: min(len(docs), 120)]
        build_collection(
            exact_root,
            exact_docs,
            CollectionConfig(shard_count=SHARD_COUNT, compress=False),
        )
        drift += _exact_sum_drift(
            CollectionStore(exact_root), exact_docs, queries
        )

    speedup = naive_seconds / dedup_seconds if dedup_seconds > 0 else 0.0
    return {
        "documents": documents,
        "distinct_structures": report.distinct_structures,
        "dedup_rate": round(report.dedup_rate, 4),
        "naive_seconds": round(naive_seconds, 4),
        "dedup_seconds": round(dedup_seconds, 4),
        "speedup": round(speedup, 3),
        "workers": report.workers_effective,
        "drift": drift,
        "structures_checked": structures,
        "equivalent": drift == 0,
        "asserted": asserting and documents >= ASSERT_MIN_DOCUMENTS,
    }


def _zipf_log(docs, queries, requests, seed):
    """A Zipfian routed workload: hot documents, skewed query mix."""
    rng = random.Random(seed)
    doc_ids = [doc_id for doc_id, _xml in docs]
    doc_picks = rng.choices(
        doc_ids, weights=_zipf_weights(len(doc_ids), ZIPF_SKEW), k=requests
    )
    query_picks = rng.choices(
        queries, weights=_zipf_weights(len(queries), ZIPF_SKEW), k=requests
    )
    return list(zip(doc_picks, query_picks))


def _routed_latencies(store, log):
    latencies = []
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for doc_id, query in log:
            started = perf_counter()
            store.estimate(doc_id, query)
            latencies.append(perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    latencies.sort()
    return latencies


def _percentile(sorted_values, fraction):
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _weighted_error(store, docs, log):
    """Frequency-weighted relative error of routed estimates."""
    xml_of = dict(docs)
    exact_cache = {}
    total = 0.0
    for doc_id, query in log:
        key = (doc_id, id(query))
        if key not in exact_cache:
            exact_cache[key] = IntervalEvaluator(
                ingest_string(xml_of[doc_id], text_word_threshold=2)
            ).selectivity(query)
        exact = exact_cache[key]
        estimate = store.estimate(doc_id, query)
        total += abs(estimate - exact) / max(1.0, exact)
    return total / len(log)


def test_collection_stack(experiment_context):
    """Dedup build + Zipf serving + rebalance → BENCH_collection.json."""
    context = experiment_context
    bench_scale = context.config.scale
    asserting = bench_scale >= SPEEDUP_ASSERT_MIN_SCALE
    seed = context.config.xmark_seed
    total_documents = max(40, int(round(DOCUMENTS_AT_FULL_SCALE * bench_scale)))

    points = [
        _sweep_point(
            max(20, int(round(total_documents * fraction))), seed, asserting
        )
        for fraction in SWEEP_FRACTIONS
    ]
    headline = points[-1]

    # Serve + budget phases run on a fresh full-size compressed store.
    docs = _corpus(total_documents, seed)
    queries = _queries()
    with tempfile.TemporaryDirectory() as tmpdir:
        root = os.path.join(tmpdir, "coll")
        build_collection(
            root,
            docs,
            CollectionConfig(
                shard_count=SHARD_COUNT,
                total_budget=TOTAL_BUDGET,
                structural_share=STRUCTURAL_SHARE,
                compress=True,
                workers=max(1, (os.cpu_count() or 1) - 1),
            ),
        )
        log = _zipf_log(docs, queries, SERVE_REQUESTS, seed)

        uniform_store = CollectionStore(root)
        latencies = _routed_latencies(uniform_store, log)
        uniform_error = _weighted_error(uniform_store, docs, log)
        uniform_budget = sum(uniform_store.manifest.budgets)

        rebalanced_manifest, _rebalance_report = rebalance_collection(
            root, log
        )
        workload_store = CollectionStore(root)
        workload_error = _weighted_error(workload_store, docs, log)
        workload_budget = sum(rebalanced_manifest.budgets)
        budget_distribution = list(rebalanced_manifest.budgets)
        lru = {
            "hits": uniform_store.lru_hits,
            "misses": uniform_store.lru_misses,
            "evictions": uniform_store.lru_evictions,
        }

    p50_ms = round(_percentile(latencies, 0.50) * 1000, 4)
    p99_ms = round(_percentile(latencies, 0.99) * 1000, 4)
    equivalent = all(point["equivalent"] for point in points)
    error_reduction = uniform_error - workload_error

    report = {
        "dataset": "zipf-templates",
        "scale": bench_scale,
        "sweep": points,
        "speedup": headline["speedup"],
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": any(point["asserted"] for point in points),
        "equivalent": equivalent,
        "shard_count": SHARD_COUNT,
        "zipf_skew": ZIPF_SKEW,
        "budget_distribution": budget_distribution,
        "p50_ms": p50_ms,
        "p99_ms": p99_ms,
        "budgets": {
            "total_bytes": TOTAL_BUDGET,
            "uniform_payload_bytes": uniform_budget,
            "workload_payload_bytes": workload_budget,
            "uniform_error": round(uniform_error, 6),
            "workload_error": round(workload_error, 6),
            "error_reduction": round(error_reduction, 6),
        },
        "serving": {
            "requests": len(log),
            "documents": total_documents,
            "lru": lru,
        },
    }
    out_path = common.write_report(
        "collection", report, "BENCH_collection.json"
    )
    print(
        f"\nBENCH_collection: dedup build {headline['speedup']:.1f}x over "
        f"naive serial at {headline['documents']} docs "
        f"({headline['naive_seconds']:.2f}s -> "
        f"{headline['dedup_seconds']:.2f}s, dedup rate "
        f"{headline['dedup_rate']:.2f}), routed p50 {p50_ms:.3f}ms / "
        f"p99 {p99_ms:.3f}ms over {len(log)} Zipf requests, workload "
        f"budgets cut weighted error {uniform_error:.4f} -> "
        f"{workload_error:.4f} at equal bytes ({out_path})"
    )

    assert equivalent, "shard-routed estimates drifted from direct builds"
    # Same-cost comparison: the rebalance conserves total payload bytes
    # up to per-payload rounding and minimum-budget floors.
    assert abs(workload_budget - uniform_budget) <= 0.05 * uniform_budget, (
        f"rebalance changed total bytes: {uniform_budget} -> "
        f"{workload_budget}"
    )
    assert workload_error <= uniform_error + 1e-9, (
        f"workload budgets lost accuracy: {uniform_error:.6f} -> "
        f"{workload_error:.6f}"
    )
    for point in points:
        if point["asserted"]:
            assert point["speedup"] >= SPEEDUP_FLOOR, (
                f"dedup build fell below the {SPEEDUP_FLOOR}x floor at "
                f"{point['documents']} documents: {point['speedup']:.2f}x"
            )
    if asserting:
        assert error_reduction > 0, (
            "workload-driven budgets produced no error reduction over "
            "uniform at equal total bytes"
        )

"""Negative workloads — near-zero estimates at every budget.

The paper reports (Section 6.1, without a figure) that XClusters
"consistently yield close to zero estimates for all space budgets" on
zero-selectivity workloads.  This bench verifies it across the sweep.
"""

from repro.experiments import format_table, negative_workload_estimates

FRACTIONS = (0.0, 0.1, 0.35, 1.0)


def test_negative_workload_estimates(experiment_context, benchmark, capsys):
    def run():
        return {
            name: negative_workload_estimates(experiment_context, name, FRACTIONS)
            for name in ("imdb", "xmark")
        }

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["Struct. fraction", *[f"{fraction:.2f}" for fraction in FRACTIONS]],
        [
            [name, *[f"{value:.3f}" for value in values]]
            for name, values in averages.items()
        ],
    )
    with capsys.disabled():
        print("\n== Negative workloads: average estimate (tuples) per budget ==")
        print(rendered)

    for values in averages.values():
        for value in values:
            assert value < 2.0  # "close to zero" at every budget

"""Streaming ingestion — object-tree parse vs. the columnar pipeline.

The object substrate materializes one ``XMLElement`` per document node
before phase 1 of XCLUSTERBUILD can touch it.  The streaming pipeline
(:mod:`repro.xmltree.events` + :mod:`repro.xmltree.columnar`) tokenizes
the file as raw bytes in bounded chunks and lands directly in
struct-of-arrays columns — interned labels, paths, and text terms —
that the initial-partition and statistics code sweep as whole columns.

This bench measures ingestion + phase 1 (the structural reference
partition plus per-tag statistics; value summaries are phase-2 work and
identical on both substrates) on serialized XMark documents across a
scale sweep that always reaches absolute scale >= 1.0 when floors are
asserted (the columnar store's memory profile permits it).  Wall-clock
is the best of :data:`TIMING_RUNS` interleaved runs per substrate; peak
memory is measured in separate tracemalloc runs (tracemalloc distorts
timings).  At every scale the two substrates must produce a
bit-identical structural synopsis and identical statistics; the
columnar pipeline must beat the object path by
:data:`SPEEDUP_FLOOR` x wall-clock at *every* sweep point and by
:data:`MEMORY_FLOOR` x peak memory at full sweep scale.  Results land
in ``BENCH_ingest.json``.
"""

import gc
import tracemalloc
from time import perf_counter

import common
from repro.core import build_reference_synopsis
from repro.core.serialization import synopsis_to_dict
from repro.datasets import generate_xmark
from repro.xmltree import ingest_file, parse_document, serialize
from repro.xmltree.stats import collect_statistics

#: Wall-clock floor: the columnar pipeline must be at least this many
#: times faster than the object path at every sweep point.
SPEEDUP_FLOOR = 1.5

#: Peak-memory floor: the columnar pipeline must allocate at least this
#: many times less peak memory than the object path at full sweep scale.
MEMORY_FLOOR = 2.0

#: Floors are only asserted at or above this bench scale (smoke-scale
#: runs only check parity and the report plumbing).
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: Fractions of the sweep's largest scale that are measured.
SWEEP_FRACTIONS = (0.25, 0.5, 1.0)

#: Minimum timed runs per substrate and sweep point; the minimum time
#: is reported.
TIMING_RUNS = 5

#: Small sweep points repeat beyond :data:`TIMING_RUNS` until this much
#: wall-clock has been timed (capped at :data:`TIMING_RUNS_MAX` pairs),
#: so 20 ms measurements get enough repetitions to shake off scheduler
#: noise without inflating the large points.
TIMING_BUDGET_SECONDS = 2.5
TIMING_RUNS_MAX = 25

#: Extra measurements of a sweep point whose speedup lands below the
#: asserted floor.  Transient machine load can depress one measurement;
#: a genuinely slow pipeline fails every retry, so the floor still
#: gates.  The best measurement is reported.
POINT_RETRIES = 2


def _object_pass(path, value_paths):
    """Parse into an object tree, then run phase 1 over the objects."""
    tree = parse_document(path)
    synopsis = build_reference_synopsis(tree, value_paths, with_summaries=False)
    return synopsis, collect_statistics(tree)


def _columnar_pass(path, value_paths):
    """Stream-ingest into columns, then run phase 1 over the columns."""
    doc = ingest_file(path)
    synopsis = build_reference_synopsis(doc, value_paths, with_summaries=False)
    return synopsis, collect_statistics(doc)


def _timed_pair(path, value_paths):
    """Best-of-N wall clock for both substrates, runs interleaved.

    Interleaving keeps clock drift and transient machine load from
    biasing one substrate; taking the minimum discards scheduling
    noise.  One untimed warmup pass per substrate fills the page cache
    and warms allocator pools before the clock starts.  The collector
    is quiesced and paused around the timed section — under a long
    pytest session the heap is large enough that generational
    collections otherwise dominate the measurement.
    Returns ``(object_seconds, columnar_seconds, results)``.
    """
    object_times = []
    columnar_times = []
    results = None
    _object_pass(path, value_paths)
    _columnar_pass(path, value_paths)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        timed_total = 0.0
        for run in range(TIMING_RUNS_MAX):
            if run >= TIMING_RUNS and timed_total >= TIMING_BUDGET_SECONDS:
                break
            started = perf_counter()
            object_result = _object_pass(path, value_paths)
            object_times.append(perf_counter() - started)
            started = perf_counter()
            columnar_result = _columnar_pass(path, value_paths)
            columnar_times.append(perf_counter() - started)
            timed_total += object_times[-1] + columnar_times[-1]
            results = (object_result, columnar_result)
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(object_times), min(columnar_times), results


def _peak_bytes(fn, path, value_paths):
    tracemalloc.start()
    try:
        fn(path, value_paths)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _sweep_point(xml_path, value_paths, scale, floor=None):
    """Measure both substrates at one XMark scale.

    With ``floor`` set, a point whose speedup misses it is re-measured
    up to :data:`POINT_RETRIES` times and the fastest columnar-relative
    measurement wins — scheduling noise retries away, a real regression
    does not.
    """
    object_seconds, columnar_seconds, results = _timed_pair(
        xml_path, value_paths
    )
    retries = POINT_RETRIES if floor is not None else 0
    for _ in range(retries):
        if columnar_seconds > 0 and object_seconds / columnar_seconds >= floor:
            break
        retry_object, retry_columnar, retry_results = _timed_pair(
            xml_path, value_paths
        )
        if retry_object / retry_columnar > object_seconds / columnar_seconds:
            object_seconds, columnar_seconds, results = (
                retry_object, retry_columnar, retry_results
            )
    (object_synopsis, object_stats), (columnar_synopsis, columnar_stats) = (
        results
    )
    equivalent = (
        synopsis_to_dict(object_synopsis) == synopsis_to_dict(columnar_synopsis)
        and object_stats == columnar_stats
    )
    object_peak = _peak_bytes(_object_pass, xml_path, value_paths)
    columnar_peak = _peak_bytes(_columnar_pass, xml_path, value_paths)
    return {
        "scale": scale,
        "elements": object_stats.element_count,
        "object_seconds": round(object_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "object_peak_bytes": object_peak,
        "columnar_peak_bytes": columnar_peak,
        "speedup": round(
            object_seconds / columnar_seconds if columnar_seconds > 0 else 0.0, 3
        ),
        "memory_reduction": round(
            object_peak / columnar_peak if columnar_peak > 0 else 0.0, 3
        ),
        "reference_nodes": len(object_synopsis),
        "equivalent": equivalent,
    }


def test_ingest_pipeline_speedup(experiment_context, tmp_path):
    """Object vs columnar XMark ingestion + phase 1 → BENCH_ingest.json.

    The columnar pipeline must produce a bit-identical structural
    synopsis and identical per-tag statistics at every sweep scale.  At
    asserting bench scales the sweep tops out at absolute XMark scale
    >= 1.0 and the columnar path must beat the object path
    :data:`SPEEDUP_FLOOR` x on time at every point and
    :data:`MEMORY_FLOOR` x on peak memory at the full sweep scale.
    """
    context = experiment_context
    bench_scale = context.config.scale
    asserting = bench_scale >= SPEEDUP_ASSERT_MIN_SCALE
    # Memory no longer gates large documents, so asserting runs always
    # sweep up to at least the paper's full XMark scale.
    sweep_max = max(1.0, bench_scale) if asserting else bench_scale
    points = []
    for fraction in SWEEP_FRACTIONS:
        scale = round(sweep_max * fraction, 6)
        dataset = generate_xmark(scale, context.config.xmark_seed)
        xml_path = str(tmp_path / f"xmark_{fraction}.xml")
        with open(xml_path, "w", encoding="utf-8") as handle:
            handle.write(serialize(dataset.tree))
        points.append(
            _sweep_point(
                xml_path,
                dataset.value_paths,
                scale,
                floor=SPEEDUP_FLOOR if asserting else None,
            )
        )

    headline = points[-1]
    equivalent = all(point["equivalent"] for point in points)
    speedup = headline["speedup"]
    memory_reduction = headline["memory_reduction"]

    report = {
        "dataset": "xmark",
        "scale": bench_scale,
        "sweep": points,
        "speedup": speedup,
        "memory_reduction": memory_reduction,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": asserting,
        "memory_floor": MEMORY_FLOOR,
        "memory_asserted": asserting,
        "equivalent": equivalent,
    }
    out_path = common.write_report("ingest", report, "BENCH_ingest.json")
    print(
        f"\nBENCH_ingest: object {headline['object_seconds']:.3f}s / "
        f"{headline['object_peak_bytes'] / 1e6:.1f}MB, columnar "
        f"{headline['columnar_seconds']:.3f}s / "
        f"{headline['columnar_peak_bytes'] / 1e6:.1f}MB -> "
        f"speedup {speedup:.2f}x, memory {memory_reduction:.2f}x ({out_path})"
    )

    assert equivalent, "columnar phase 1 diverged from the object-tree path"
    if asserting:
        for point in points:
            assert point["speedup"] >= SPEEDUP_FLOOR, (
                f"columnar pipeline fell below the {SPEEDUP_FLOOR}x speedup "
                f"floor at scale {point['scale']}: {point['speedup']:.2f}x"
            )
        assert memory_reduction >= MEMORY_FLOOR, (
            f"columnar pipeline fell below the {MEMORY_FLOOR}x peak-memory "
            f"floor at full sweep scale: {memory_reduction:.2f}x"
        )

"""Streaming ingestion — object-tree parse vs. the columnar pipeline.

The object substrate materializes one ``XMLElement`` per document node
before phase 1 of XCLUSTERBUILD can touch it.  The streaming pipeline
(:mod:`repro.xmltree.events` + :mod:`repro.xmltree.columnar`) tokenizes
the file in bounded chunks and lands directly in struct-of-arrays
columns — interned labels, paths, and text terms — that the
initial-partition and statistics code read without objects.

This bench measures ingestion + phase 1 (the structural reference
partition plus per-tag statistics; value summaries are phase-2 work and
identical on both substrates) on serialized XMark documents across a
scale sweep.  Time and peak memory are measured in separate runs
(tracemalloc distorts timings).  At every scale the two substrates must
produce a bit-identical structural synopsis and identical statistics;
at full bench scale the columnar pipeline must deliver at least a 2x
speedup *or* a 2x peak-memory reduction.  Results land in
``BENCH_ingest.json``.
"""

import tracemalloc
from time import perf_counter

import common
from repro.core import build_reference_synopsis
from repro.core.serialization import synopsis_to_dict
from repro.datasets import generate_xmark
from repro.xmltree import ingest_file, parse_document, serialize
from repro.xmltree.stats import collect_statistics

#: The factor by which the columnar pipeline must beat the object path
#: at full bench scale, on time *or* peak memory (smoke-scale runs only
#: check parity and the report plumbing).
SPEEDUP_FLOOR = 2.0
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: XMark scales measured, as fractions of the configured bench scale.
SWEEP_FRACTIONS = (0.25, 0.5, 1.0)


def _object_pass(path, value_paths):
    """Parse into an object tree, then run phase 1 over the objects."""
    tree = parse_document(path)
    synopsis = build_reference_synopsis(tree, value_paths, with_summaries=False)
    return synopsis, collect_statistics(tree)


def _columnar_pass(path, value_paths):
    """Stream-ingest into columns, then run phase 1 over the columns."""
    doc = ingest_file(path)
    synopsis = build_reference_synopsis(doc, value_paths, with_summaries=False)
    return synopsis, collect_statistics(doc)


def _timed(fn, path, value_paths):
    started = perf_counter()
    result = fn(path, value_paths)
    return perf_counter() - started, result


def _peak_bytes(fn, path, value_paths):
    tracemalloc.start()
    try:
        fn(path, value_paths)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _sweep_point(xml_path, value_paths, scale):
    """Measure both substrates at one XMark scale."""
    object_seconds, (object_synopsis, object_stats) = _timed(
        _object_pass, xml_path, value_paths
    )
    columnar_seconds, (columnar_synopsis, columnar_stats) = _timed(
        _columnar_pass, xml_path, value_paths
    )
    equivalent = (
        synopsis_to_dict(object_synopsis) == synopsis_to_dict(columnar_synopsis)
        and object_stats == columnar_stats
    )
    object_peak = _peak_bytes(_object_pass, xml_path, value_paths)
    columnar_peak = _peak_bytes(_columnar_pass, xml_path, value_paths)
    return {
        "scale": scale,
        "elements": object_stats.element_count,
        "object_seconds": round(object_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "object_peak_bytes": object_peak,
        "columnar_peak_bytes": columnar_peak,
        "speedup": round(
            object_seconds / columnar_seconds if columnar_seconds > 0 else 0.0, 3
        ),
        "memory_reduction": round(
            object_peak / columnar_peak if columnar_peak > 0 else 0.0, 3
        ),
        "reference_nodes": len(object_synopsis),
        "equivalent": equivalent,
    }


def test_ingest_pipeline_speedup(experiment_context, tmp_path):
    """Object vs columnar XMark ingestion + phase 1 → BENCH_ingest.json.

    The columnar pipeline must produce a bit-identical structural
    synopsis and identical per-tag statistics at every sweep scale, and
    at full bench scale must beat the object path 2x on time or peak
    memory.
    """
    context = experiment_context
    bench_scale = context.config.scale
    points = []
    for fraction in SWEEP_FRACTIONS:
        scale = round(bench_scale * fraction, 6)
        dataset = generate_xmark(scale, context.config.xmark_seed)
        xml_path = str(tmp_path / f"xmark_{fraction}.xml")
        with open(xml_path, "w", encoding="utf-8") as handle:
            handle.write(serialize(dataset.tree))
        points.append(_sweep_point(xml_path, dataset.value_paths, scale))

    headline = points[-1]
    equivalent = all(point["equivalent"] for point in points)
    speedup = headline["speedup"]
    memory_reduction = headline["memory_reduction"]

    report = {
        "dataset": "xmark",
        "scale": bench_scale,
        "sweep": points,
        "speedup": speedup,
        "memory_reduction": memory_reduction,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": bench_scale >= SPEEDUP_ASSERT_MIN_SCALE,
        "equivalent": equivalent,
    }
    out_path = common.write_report("ingest", report, "BENCH_ingest.json")
    print(
        f"\nBENCH_ingest: object {headline['object_seconds']:.3f}s / "
        f"{headline['object_peak_bytes'] / 1e6:.1f}MB, columnar "
        f"{headline['columnar_seconds']:.3f}s / "
        f"{headline['columnar_peak_bytes'] / 1e6:.1f}MB -> "
        f"speedup {speedup:.2f}x, memory {memory_reduction:.2f}x ({out_path})"
    )

    assert equivalent, "columnar phase 1 diverged from the object-tree path"
    if bench_scale >= SPEEDUP_ASSERT_MIN_SCALE:
        assert speedup >= SPEEDUP_FLOOR or memory_reduction >= SPEEDUP_FLOOR, (
            f"columnar pipeline delivered neither a {SPEEDUP_FLOOR}x speedup "
            f"({speedup:.2f}x) nor a {SPEEDUP_FLOOR}x memory reduction "
            f"({memory_reduction:.2f}x)"
        )

"""Table 1 — data-set characteristics (paper Section 6.1).

Prints, for each dataset: serialized file size, element count, reference
synopsis size, and reference node counts (value-summarized / total) —
the same columns as the paper's Table 1.
"""

from repro.experiments import format_table, table1_rows


def test_table1_dataset_characteristics(experiment_context, benchmark, capsys):
    rows = benchmark.pedantic(
        table1_rows, args=(experiment_context,), rounds=1, iterations=1
    )
    rendered = format_table(
        ["Dataset", "File Size (MB)", "# Elements", "Ref. Size (KB)",
         "# Nodes: Value/Total"],
        [
            [
                row.dataset,
                f"{row.file_size_mb:.2f}",
                row.element_count,
                f"{row.reference_size_kb:.1f}",
                f"{row.value_nodes} / {row.total_nodes}",
            ]
            for row in rows
        ],
    )
    with capsys.disabled():
        print("\n== Table 1: Data Set Characteristics ==")
        print(rendered)

    assert len(rows) == 2
    for row in rows:
        assert 0 < row.value_nodes <= row.total_nodes
        assert row.reference_size_kb > 0

"""Shared result writer for the ``BENCH_*.json`` emitters.

Every performance bench in this directory ends by dumping a JSON report
next to the repo root.  This module gives those reports one versioned
schema and one writer, so downstream tooling (the CI smoke jobs, the
schema test in ``tests/test_bench_schema.py``) can validate any report
without knowing which bench produced it.

Schema v1 — every report carries:

* ``schema_version`` — the integer :data:`SCHEMA_VERSION`;
* ``bench`` — the emitting bench's short name (``"construction"``,
  ``"ingest"``, ...);
* ``dataset`` — the dataset the bench ran on;
* ``scale`` — the dataset scale factor (``REPRO_BENCH_SCALE``);
* ``speedup`` — the headline optimized-vs-reference speedup ratio;
* ``equivalent`` — whether the optimized path reproduced the reference
  path's results exactly (the parity bit every bench must assert).

Benches that enforce performance floors record them through the
*optional* fields in :data:`OPTIONAL_FIELDS` — type-checked when
present, so a report can never again claim ``speedup_asserted: true``
while its floor actually described a different metric: the time floor
lives in ``speedup_floor``/``speedup_asserted`` and the peak-memory
floor in ``memory_floor``/``memory_asserted``/``memory_reduction``.

Everything else in a report is bench-specific detail and deliberately
unconstrained.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

#: Bump when a required field is added, removed, or retyped.
SCHEMA_VERSION = 1

#: Required fields and their accepted types (booleans are not numbers).
REQUIRED_FIELDS = {
    "schema_version": (int,),
    "bench": (str,),
    "dataset": (str,),
    "scale": (int, float),
    "speedup": (int, float),
    "equivalent": (bool,),
}

#: Optional floor-assertion fields, type-checked when present.  The
#: ``speedup_*`` pair describes the wall-clock floor and the
#: ``memory_*`` triple the peak-memory floor — two separate assertions
#: with two separate names.  The serving bench additionally records its
#: throughput/latency headline numbers (``qps``, ``p50_ms``/``p99_ms``)
#: and the cross-user plan-cache ``cache_hit_rate``.
OPTIONAL_FIELDS = {
    "speedup_floor": (int, float),
    "speedup_asserted": (bool,),
    "memory_floor": (int, float),
    "memory_asserted": (bool,),
    "memory_reduction": (int, float),
    "qps": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "cache_hit_rate": (int, float),
    "shard_count": (int,),
    "zipf_skew": (int, float),
    "budget_distribution": (list,),
}

#: Optional list-valued fields: every element must match these types
#: (checked only when the field is present and is a list).  The
#: collection bench records its per-shard byte budgets here, so the
#: skew a rebalance produced is auditable straight from the report.
LIST_ELEMENT_FIELDS = {
    "budget_distribution": (int, float),
}


def validate_report(report: object) -> List[str]:
    """Schema-v1 problems with ``report`` (empty list = valid)."""
    issues: List[str] = []
    if not isinstance(report, dict):
        return [f"report is {type(report).__name__}, expected an object"]
    for field, types in REQUIRED_FIELDS.items():
        if field not in report:
            issues.append(f"missing required field {field!r}")
            continue
        value = report[field]
        if isinstance(value, bool) and bool not in types:
            issues.append(f"field {field!r} is a bool, expected {types}")
        elif not isinstance(value, types):
            issues.append(
                f"field {field!r} is {type(value).__name__}, expected "
                + " or ".join(t.__name__ for t in types)
            )
    for field, types in OPTIONAL_FIELDS.items():
        if field not in report:
            continue
        value = report[field]
        if isinstance(value, bool) and bool not in types:
            issues.append(f"field {field!r} is a bool, expected {types}")
        elif not isinstance(value, types):
            issues.append(
                f"field {field!r} is {type(value).__name__}, expected "
                + " or ".join(t.__name__ for t in types)
            )
    for field, element_types in LIST_ELEMENT_FIELDS.items():
        value = report.get(field)
        if not isinstance(value, list):
            continue
        for index, element in enumerate(value):
            if isinstance(element, bool) or not isinstance(
                element, element_types
            ):
                issues.append(
                    f"field {field!r} element {index} is "
                    f"{type(element).__name__}, expected "
                    + " or ".join(t.__name__ for t in element_types)
                )
                break
    if (
        isinstance(report.get("schema_version"), int)
        and report["schema_version"] != SCHEMA_VERSION
    ):
        issues.append(
            f"schema_version {report['schema_version']} != {SCHEMA_VERSION}"
        )
    return issues


def write_report(bench: str, report: Dict, default_filename: str) -> str:
    """Stamp, validate, and write one bench report; returns the path.

    Adds ``schema_version`` and ``bench``, validates the result against
    the schema (raising ``ValueError`` on a malformed report so a broken
    emitter fails its own bench run), and writes pretty-printed JSON to
    ``REPRO_BENCH_OUT`` or ``default_filename``.
    """
    report = dict(report)
    report["schema_version"] = SCHEMA_VERSION
    report["bench"] = bench
    issues = validate_report(report)
    if issues:
        raise ValueError(
            f"bench {bench!r} produced an invalid report: " + "; ".join(issues)
        )
    out_path = os.environ.get("REPRO_BENCH_OUT", default_filename)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out_path

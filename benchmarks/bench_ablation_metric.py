"""Ablation A1 — the localized Δ metric vs. naive merge policies.

XCLUSTERBUILD picks merges by marginal loss under the localized
structure-value Δ metric (paper Section 4.1).  This ablation compresses
the same reference synopsis to the same structural budget with (a) the
Δ-guided builder, (b) uniformly random merges, and (c) a size-greedy
policy (always merge the two smallest compatible clusters), and compares
workload error.  The Δ metric must win.
"""

import copy

from repro.core.baselines import (
    compress_with_policy,
    make_smallest_count_policy,
    random_policy,
)
from repro.core.builder import BuildConfig, XClusterBuilder
from repro.core.sizing import structural_size_bytes
from repro.experiments import format_table
from repro.workload import evaluate_synopsis, sanity_bound

BUDGET_FRACTION = 0.1


def test_metric_vs_naive_policies(experiment_context, benchmark, capsys):
    context = experiment_context
    workload = context.workload("imdb")
    bound = sanity_bound([wq.exact for wq in workload.queries])
    reference = context.reference("imdb")
    budget = int(structural_size_bytes(reference) * BUDGET_FRACTION)

    def run():
        results = {}
        guided = context.fresh_reference("imdb")
        config = BuildConfig(
            structural_budget=budget,
            value_budget=10**9,
            pool_max=context.config.pool_max,
            pool_min=context.config.pool_min,
        )
        XClusterBuilder(config).compress(guided)
        results["delta-guided"] = evaluate_synopsis(guided, workload, bound).overall

        randomized = context.fresh_reference("imdb")
        compress_with_policy(randomized, budget, random_policy, seed=17)
        results["random"] = evaluate_synopsis(randomized, workload, bound).overall

        greedy = context.fresh_reference("imdb")
        compress_with_policy(greedy, budget, make_smallest_count_policy(greedy))
        results["size-greedy"] = evaluate_synopsis(greedy, workload, bound).overall
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["Merge policy", "Overall error (%)"],
        [[name, f"{100 * value:.1f}"] for name, value in results.items()],
    )
    with capsys.disabled():
        print("\n== Ablation A1: merge-selection policy (IMDB, 10% budget) ==")
        print(rendered)

    assert results["delta-guided"] <= results["random"]
    assert results["delta-guided"] <= results["size-greedy"]

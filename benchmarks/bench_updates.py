"""Incremental synopsis maintenance vs. per-update rebuild.

The static pipeline answers a document update by rebuilding the
reference synopsis from scratch; :mod:`repro.update` instead mutates
the columnar document in place and maintains the live synopsis through
the :class:`~repro.update.maintainer.IncrementalMaintainer` — localized
refinement, cached value summaries, and a version bump that keeps the
serving caches honest.  This bench streams :data:`UPDATES_PER_POINT`
seeded random ops (the differential harness's generator, heavy on
structural inserts/deletes — the maintainer's worst case) into XMark
documents across a scale sweep and, after **every** op, rebuilds the
synopsis from the same mutated document:

* parity: the maintained synopsis must equal the rebuild bit-exactly
  (``synopsis_to_dict``) at every step — zero drift over the stream;
* performance: summing per-op wall-clock, maintenance (columnar
  mutation + synopsis upkeep, both timed) must beat the rebuild
  baseline (rebuild only — the mutation it would also need is *not*
  charged to it) by :data:`SPEEDUP_FLOOR` x at every asserted sweep
  point.

Results land in ``BENCH_updates.json``.
"""

import gc
import random
from time import perf_counter

import common
from repro.check.diffharness import DifferentialHarness, HarnessConfig
from repro.core.reference import build_reference_synopsis
from repro.core.serialization import synopsis_to_dict
from repro.datasets import generate_xmark
from repro.update import IncrementalMaintainer, validate_update
from repro.values.summary import SummaryConfig
from repro.xmltree import serialize
from repro.xmltree.columnar import ingest_string

#: Maintenance must beat per-update rebuild by at least this factor at
#: every asserted sweep point.
SPEEDUP_FLOOR = 5.0

#: Floors are only asserted at or above this bench scale (smoke-scale
#: runs only check parity and the report plumbing).
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: Fractions of the bench scale that are measured.
SWEEP_FRACTIONS = (0.25, 0.5, 1.0)

#: Random update ops streamed into each sweep point's document.
UPDATES_PER_POINT = 40

#: Seed for the op stream (the harness's generator is deterministic).
OP_SEED = 0x0BDA7E5

#: Extra measurements of a sweep point whose speedup lands below the
#: asserted floor.  Transient machine load can depress one measurement;
#: a genuinely slow maintainer fails every retry, so the floor still
#: gates.  The best measurement is reported.
POINT_RETRIES = 2


def _sweep_point(scale, seed, op_source):
    """Stream one op sequence into one XMark document, timing both paths.

    Returns the point dict for the report.  Every applied op is parity
    checked: a single step of drift fails the bench outright rather
    than surfacing as a performance number.
    """
    dataset = generate_xmark(scale, seed)
    doc = ingest_string(serialize(dataset.tree))
    maintainer = IncrementalMaintainer(doc)
    rng = random.Random(OP_SEED)

    applied = 0
    maintain_seconds = 0.0
    rebuild_seconds = 0.0
    drift = 0
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(UPDATES_PER_POINT):
            op = op_source(doc, rng)
            if validate_update(doc, op) is not None:
                continue
            started = perf_counter()
            maintainer.apply(op)
            maintain_seconds += perf_counter() - started
            started = perf_counter()
            rebuilt = build_reference_synopsis(doc, None, SummaryConfig())
            rebuild_seconds += perf_counter() - started
            applied += 1
            if synopsis_to_dict(maintainer.synopsis) != synopsis_to_dict(
                rebuilt
            ):
                drift += 1
    finally:
        if gc_was_enabled:
            gc.enable()

    speedup = (
        rebuild_seconds / maintain_seconds if maintain_seconds > 0 else 0.0
    )
    stats = maintainer.stats
    return {
        "scale": scale,
        "elements": len(doc),
        "updates_applied": applied,
        "maintain_seconds": round(maintain_seconds, 4),
        "rebuild_seconds": round(rebuild_seconds, 4),
        "updates_per_sec": round(
            applied / maintain_seconds if maintain_seconds > 0 else 0.0, 2
        ),
        "speedup": round(speedup, 3),
        "drift_steps": drift,
        "equivalent": drift == 0,
        "full_recomputes": stats.full_recomputes,
        "fast_path_updates": stats.fast_path_updates,
        "summaries_reused": stats.summaries_reused,
    }


def test_incremental_maintenance_speedup(experiment_context):
    """Maintainer vs per-update rebuild on XMark → BENCH_updates.json.

    Zero parity drift is required at every scale; at asserting bench
    scales the maintainer must beat the rebuild baseline
    :data:`SPEEDUP_FLOOR` x on summed per-op wall-clock at every sweep
    point.
    """
    context = experiment_context
    bench_scale = context.config.scale
    asserting = bench_scale >= SPEEDUP_ASSERT_MIN_SCALE
    op_source = DifferentialHarness(HarnessConfig())._random_update

    points = []
    for fraction in SWEEP_FRACTIONS:
        scale = round(bench_scale * fraction, 6)
        point = _sweep_point(scale, context.config.xmark_seed, op_source)
        # The op stream is deterministic, so a retry re-measures the
        # identical work; only scheduling noise can change the outcome.
        for _ in range(POINT_RETRIES if asserting else 0):
            if point["speedup"] >= SPEEDUP_FLOOR:
                break
            retry = _sweep_point(scale, context.config.xmark_seed, op_source)
            if retry["speedup"] > point["speedup"]:
                point = retry
        points.append(point)

    headline = points[-1]
    equivalent = all(point["equivalent"] for point in points)
    report = {
        "dataset": "xmark",
        "scale": bench_scale,
        "updates_per_point": UPDATES_PER_POINT,
        "sweep": points,
        "speedup": headline["speedup"],
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": asserting,
        "equivalent": equivalent,
    }
    out_path = common.write_report("updates", report, "BENCH_updates.json")
    print(
        f"\nBENCH_updates: {headline['updates_applied']} ops on "
        f"{headline['elements']} elements -> maintain "
        f"{headline['maintain_seconds']:.3f}s "
        f"({headline['updates_per_sec']:.1f} ops/s), rebuild "
        f"{headline['rebuild_seconds']:.3f}s, speedup "
        f"{headline['speedup']:.2f}x ({out_path})"
    )

    assert equivalent, "maintained synopsis drifted from rebuild-from-scratch"
    if asserting:
        for point in points:
            assert point["speedup"] >= SPEEDUP_FLOOR, (
                f"incremental maintenance fell below the {SPEEDUP_FLOOR}x "
                f"speedup floor at scale {point['scale']}: "
                f"{point['speedup']:.2f}x"
            )

"""Figure 8(a) — IMDB: relative estimation error vs. synopsis size.

Regenerates the five series of the paper's Figure 8(a) (Text, String,
Numeric, Struct, Overall) over the structural-budget sweep at fixed
value budget, and checks the paper's qualitative claims:

* the overall error at the largest budget is below ~15%;
* the overall error does not degrade as budget grows (decreasing trend);
* structural queries stay accurate (< 5%) at modest budgets.
"""

from repro.experiments import format_series
from repro.experiments.figures import FIGURE8_SERIES


def test_figure8_imdb(figure8, benchmark, capsys):
    result = benchmark.pedantic(figure8, args=("imdb",), rounds=1, iterations=1)
    table = result.as_series_table()
    rendered = format_series(
        "== Figure 8(a): IMDB — Avg. Rel. Error (%) vs Synopsis Size (KB) ==",
        "Size(KB)",
        result.total_kb,
        [table[name] for name, _ in FIGURE8_SERIES],
        [name for name, _ in FIGURE8_SERIES],
    )
    with capsys.disabled():
        print()
        print(rendered)

    overall = table["Overall"]
    assert overall[-1] < 0.15
    # Largest budget at least as good as the smallest structural summary.
    assert overall[-1] <= overall[0] + 0.05
    struct = table["Struct"]
    assert all(error < 0.05 for error in struct[2:])
    numeric = table["Numeric"]
    assert numeric[-1] < 0.05

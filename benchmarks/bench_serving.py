"""Synopsis serving — snapshot cold start + daemon throughput.

Two measurements, one report (``BENCH_serving.json``):

**Cold start.**  At each sweep scale a budgeted synopsis is saved as
interchange JSON and as the binary mmap snapshot
(:mod:`repro.core.snapshot`), and both loads are timed best-of-N.  The
snapshot loader decodes the flat node/edge tables and defers every
value-summary payload, so it must beat the full JSON decode by
:data:`SPEEDUP_FLOOR` x at every asserting sweep point — with
bit-exact estimate parity between the two loaded synopses across the
point's workload.

**Serving.**  The bench then stands up the real daemon
(:class:`repro.serve.SynopsisServer` over localhost) and drives it with
a redbench-style repetition-banded user mix: users are sampled from ten
query-repetition-rate bands ([0.0, 0.1) up to [0.9, 1.0)), and each
request either repeats a query from that user's own history (with the
user's band probability) or draws fresh from the shared workload pool.
That repetition structure is exactly what the *cross-user* plan cache
exploits — the report records sustained QPS, p50/p99 latency from the
daemon's own ``/stats``, the plan-cache hit rate, and coalescing batch
occupancy.  A final parity pass re-asks every distinct pool query over
HTTP and demands bit-identical floats against an in-process
``CompiledEstimator`` on the same loaded synopsis.
"""

import asyncio
import gc
import os
import random
import tempfile
from time import perf_counter

import common
from repro.core.builder import build_xcluster
from repro.core.estimation import CompiledEstimator
from repro.core.serialization import load_synopsis, save_synopsis
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.datasets import generate_xmark
from repro.query.jsonast import twig_to_dict
from repro.serve import ServeClient, ServeEngine, SynopsisServer
from repro.workload.generator import generate_workload

#: Cold-start floor: loading the snapshot must be at least this many
#: times faster than loading the equivalent JSON at every sweep point.
SPEEDUP_FLOOR = 5.0

#: Floors are only asserted at or above this bench scale (smoke-scale
#: runs only check parity and the report plumbing).
SPEEDUP_ASSERT_MIN_SCALE = 0.3

#: Fractions of the bench scale that are measured.
SWEEP_FRACTIONS = (0.25, 0.5, 1.0)

#: Timed loads per format and sweep point; the minimum is reported.
TIMING_RUNS = 7

#: Extra measurements of a sweep point whose speedup lands below the
#: asserted floor; transient load retries away, a real regression fails
#: every retry.
POINT_RETRIES = 2

#: Budgets for the served synopsis: generous enough that the saved file
#: carries hundreds of clusters and every value-summary family.
STRUCTURAL_BUDGET = 16384
VALUE_BUDGET = 65536

#: The user mix: ten repetition-rate bands ([0.0,0.1) ... [0.9,1.0)),
#: redbench-style, with this many users per band and requests per user.
REPETITION_BANDS = [
    ((high - 10) / 100.0, high / 100.0) for high in range(10, 101, 10)
]
USERS_PER_BAND = 2
REQUESTS_PER_USER = 40


def _timed_loads(json_path, snapshot_path):
    """Best-of-N wall clock for both loaders, runs interleaved."""
    json_times, snapshot_times = [], []
    load_synopsis(json_path)  # warmup: page cache + code paths
    load_snapshot(snapshot_path)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(TIMING_RUNS):
            started = perf_counter()
            load_synopsis(json_path)
            json_times.append(perf_counter() - started)
            started = perf_counter()
            load_snapshot(snapshot_path)
            snapshot_times.append(perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(json_times), min(snapshot_times)


def _estimate_all(synopsis, queries):
    estimator = CompiledEstimator(synopsis)
    return [estimator.estimate(query) for query in queries]


def _sweep_point(scale, xmark_seed, queries_per_class, floor=None):
    """Save/load both formats at one scale; parity is bit-exact."""
    dataset = generate_xmark(scale, xmark_seed)
    synopsis = build_xcluster(
        dataset.tree,
        STRUCTURAL_BUDGET,
        VALUE_BUDGET,
        value_paths=dataset.value_paths,
    )
    workload = generate_workload(
        dataset, queries_per_class=queries_per_class, seed=xmark_seed
    )
    queries = [wq.query for wq in workload.queries]

    with tempfile.TemporaryDirectory() as tmpdir:
        json_path = os.path.join(tmpdir, "synopsis.json")
        snapshot_path = os.path.join(tmpdir, "synopsis.snap")
        save_synopsis(synopsis, json_path)
        save_snapshot(synopsis, snapshot_path)
        json_bytes = os.path.getsize(json_path)
        snapshot_bytes = os.path.getsize(snapshot_path)

        json_seconds, snapshot_seconds = _timed_loads(json_path, snapshot_path)
        retries = POINT_RETRIES if floor is not None else 0
        for _ in range(retries):
            if snapshot_seconds > 0 and json_seconds / snapshot_seconds >= floor:
                break
            retry_json, retry_snapshot = _timed_loads(json_path, snapshot_path)
            if retry_json / retry_snapshot > json_seconds / snapshot_seconds:
                json_seconds, snapshot_seconds = retry_json, retry_snapshot

        json_loaded = load_synopsis(json_path)
        snapshot_loaded = load_snapshot(snapshot_path)

    expected = _estimate_all(json_loaded, queries)
    actual = _estimate_all(snapshot_loaded, queries)
    drift = sum(1 for e, a in zip(expected, actual) if e != a)
    return {
        "scale": scale,
        "clusters": len(synopsis),
        "queries": len(queries),
        "json_bytes": json_bytes,
        "snapshot_bytes": snapshot_bytes,
        "json_load_seconds": round(json_seconds, 6),
        "snapshot_load_seconds": round(snapshot_seconds, 6),
        "speedup": round(
            json_seconds / snapshot_seconds if snapshot_seconds > 0 else 0.0, 3
        ),
        "drift": drift,
        "equivalent": drift == 0,
    }, synopsis, queries


def _user_streams(queries, seed):
    """Per-user request streams under the repetition-banded mix.

    Each user belongs to one band and repeats a query from their own
    history with a rate drawn uniformly from the band; otherwise they
    draw fresh from the shared pool.  Streams are fully materialized up
    front so the timed region is pure serving.
    """
    rng = random.Random(seed)
    streams = []
    for band_low, band_high in REPETITION_BANDS:
        for _ in range(USERS_PER_BAND):
            rate = rng.uniform(band_low, band_high)
            history = []
            stream = []
            for _ in range(REQUESTS_PER_USER):
                if history and rng.random() < rate:
                    query = rng.choice(history)
                else:
                    query = rng.choice(queries)
                    history.append(query)
                stream.append(query)
            streams.append((rate, stream))
    return streams


async def _drive_daemon(synopsis, queries, seed):
    """Run the banded user mix against the real daemon over localhost."""
    engine = ServeEngine(synopsis)
    streams = _user_streams(queries, seed)
    total_requests = sum(len(stream) for _rate, stream in streams)

    async with SynopsisServer(engine) as server:

        async def run_user(user_index, stream):
            client = ServeClient(server.host, server.port)
            await client.connect()
            try:
                for request_index, query in enumerate(stream):
                    # Alternate wire formats so both front doors serve
                    # production traffic, not just the tests.
                    if (user_index + request_index) % 2:
                        body = {"ast": twig_to_dict(query)}
                    else:
                        body = {"query": query.to_xpath()}
                    status, payload = await client.estimate(body)
                    assert status == 200, payload
            finally:
                await client.close()

        started = perf_counter()
        await asyncio.gather(
            *(
                run_user(index, stream)
                for index, (_rate, stream) in enumerate(streams)
            )
        )
        wall_seconds = perf_counter() - started

        stats_client = ServeClient(server.host, server.port)
        stats = await stats_client.stats()

        # Parity: every distinct pool query over HTTP must equal the
        # in-process compiled estimate bit for bit.
        estimator = CompiledEstimator(synopsis)
        parity_drift = 0
        for query in queries:
            status, payload = await stats_client.estimate(
                {"query": query.to_xpath()}
            )
            assert status == 200, payload
            if payload["estimate"] != estimator.estimate(query):
                parity_drift += 1
        await stats_client.close()

    return {
        "users": len(streams),
        "bands": len(REPETITION_BANDS),
        "requests": total_requests,
        "wall_seconds": round(wall_seconds, 4),
        "qps": round(total_requests / wall_seconds, 1),
        "p50_ms": round(stats["latency"]["p50_ms"], 4),
        "p99_ms": round(stats["latency"]["p99_ms"], 4),
        "cache_hit_rate": round(
            stats["estimator"]["plan_cache_hit_rate"], 4
        ),
        "coalesce_rate": round(stats["coalescing"]["coalesce_rate"], 4),
        "mean_batch_occupancy": round(
            stats["coalescing"]["mean_batch_occupancy"], 3
        ),
        "batches_dispatched": stats["coalescing"]["batches_dispatched"],
        "parity_drift": parity_drift,
        "equivalent": parity_drift == 0,
    }


def test_serving_stack(experiment_context):
    """Snapshot cold start + daemon QPS → BENCH_serving.json.

    At asserting bench scales the snapshot load must clear the
    :data:`SPEEDUP_FLOOR` x floor at *every* sweep point; estimate
    parity (JSON-loaded vs snapshot-loaded, and HTTP vs in-process)
    must be bit-exact everywhere and at every scale.
    """
    context = experiment_context
    bench_scale = context.config.scale
    queries_per_class = context.config.queries_per_class
    asserting = bench_scale >= SPEEDUP_ASSERT_MIN_SCALE

    points = []
    synopsis = queries = None
    for fraction in SWEEP_FRACTIONS:
        point, synopsis, queries = _sweep_point(
            round(bench_scale * fraction, 6),
            context.config.xmark_seed,
            queries_per_class,
            floor=SPEEDUP_FLOOR if asserting else None,
        )
        points.append(point)

    # The serving phase runs on the bench-scale synopsis (last point).
    serving = asyncio.run(
        _drive_daemon(synopsis, queries, context.config.xmark_seed)
    )

    headline = points[-1]
    equivalent = (
        all(point["equivalent"] for point in points) and serving["equivalent"]
    )
    report = {
        "dataset": "xmark",
        "scale": bench_scale,
        "sweep": points,
        "speedup": headline["speedup"],
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": asserting,
        "equivalent": equivalent,
        "qps": serving["qps"],
        "p50_ms": serving["p50_ms"],
        "p99_ms": serving["p99_ms"],
        "cache_hit_rate": serving["cache_hit_rate"],
        "serving": serving,
    }
    out_path = common.write_report("serving", report, "BENCH_serving.json")
    print(
        f"\nBENCH_serving: snapshot load {headline['speedup']:.1f}x faster "
        f"than JSON ({headline['json_load_seconds'] * 1000:.2f}ms -> "
        f"{headline['snapshot_load_seconds'] * 1000:.2f}ms), daemon "
        f"{serving['qps']:.0f} qps, p50 {serving['p50_ms']:.2f}ms / "
        f"p99 {serving['p99_ms']:.2f}ms, plan-cache hit rate "
        f"{serving['cache_hit_rate']:.2f} over {serving['requests']} "
        f"requests from {serving['users']} users ({out_path})"
    )

    assert equivalent, "serving stack drifted from in-process estimates"
    assert serving["cache_hit_rate"] > 0.0, (
        "repetition-banded mix produced no cross-user plan-cache reuse"
    )
    if asserting:
        for point in points:
            assert point["speedup"] >= SPEEDUP_FLOOR, (
                f"snapshot load fell below the {SPEEDUP_FLOOR}x floor at "
                f"scale {point['scale']}: {point['speedup']:.2f}x"
            )

"""Ablation A3 — error-driven PST pruning vs. naive count-based pruning.

``st_cmprs`` (paper Section 4.2) ranks prunable leaves by *pruning
error* — how far the post-prune Markovian estimate drifts from the exact
count.  The naive baseline prunes smallest-count leaves first.  Both
prune the same tree to the same size; estimation error over a substring
workload decides the winner.
"""

import copy

from repro.core.baselines import naive_prune_pst
from repro.experiments import format_table
from repro.values.pst import PrunedSuffixTree
from repro.values.summary import _copy_pst
from repro.xmltree.types import ValueType


def collect_strings(context):
    dataset = context.dataset("imdb")
    return [
        element.value
        for element in dataset.tree
        if element.label == "name" and element.value_type is ValueType.STRING
    ]


def substring_workload(strings, limit=300):
    needles = set()
    for index, string in enumerate(strings):
        for length in (2, 3, 4):
            for start in range(0, max(1, len(string) - length), 3):
                needles.add(string[start : start + length])
        if len(needles) > limit * 3:
            break
    return sorted(needles)[:limit]


def test_pruning_error_vs_naive(experiment_context, benchmark, capsys):
    strings = collect_strings(experiment_context)
    full = PrunedSuffixTree.from_strings(strings, max_depth=5)
    needles = substring_workload(strings)
    truth = {needle: sum(1 for s in strings if needle in s) for needle in needles}
    prune_count = int(full.node_count * 0.7)

    def run():
        guided = _copy_pst(full)
        guided.prune_leaves(prune_count)
        naive = _copy_pst(full)
        naive_prune_pst(naive, prune_count)

        def mean_absolute_error(tree):
            return sum(
                abs(tree.estimate_count(needle) - truth[needle])
                for needle in needles
            ) / len(needles)

        return {
            "nodes": guided.node_count,
            "error-driven": mean_absolute_error(guided),
            "naive-count": mean_absolute_error(naive),
            "unpruned": mean_absolute_error(full),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        ["PST variant", "MAE (strings)"],
        [
            ["unpruned", f"{results['unpruned']:.3f}"],
            ["error-driven pruning", f"{results['error-driven']:.3f}"],
            ["naive count pruning", f"{results['naive-count']:.3f}"],
        ],
    )
    with capsys.disabled():
        print(
            f"\n== Ablation A3: PST pruning at {results['nodes']} nodes "
            f"(from {full.node_count}) =="
        )
        print(rendered)

    assert results["error-driven"] <= results["naive-count"] * 1.05
    assert results["unpruned"] <= results["error-driven"] + 1e-9

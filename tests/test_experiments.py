"""End-to-end tests of the experiment harness (tiny scale)."""

import math

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    figure8_series,
    figure9_rows,
    format_series,
    format_table,
    negative_workload_estimates,
    table1_rows,
    table2_rows,
)
from repro.workload.generator import QueryClass


@pytest.fixture(scope="module")
def context():
    config = ExperimentConfig(
        scale=0.04,
        queries_per_class=4,
        structural_fractions=(0.0, 0.5, 1.0),
        pool_max=400,
        pool_min=200,
    )
    return ExperimentContext(config)


class TestTables:
    def test_table1(self, context):
        rows = table1_rows(context)
        assert [row.dataset for row in rows] == ["imdb", "xmark"]
        for row in rows:
            assert row.element_count > 100
            assert row.file_size_mb > 0
            assert 0 < row.value_nodes <= row.total_nodes
            assert row.reference_size_kb > 0

    def test_table2(self, context):
        rows = table2_rows(context)
        for row in rows:
            assert row.avg_result_struct > 0
            assert row.avg_result_pred > 0


class TestFigure8:
    def test_sweep_points(self, context):
        result = figure8_series(context, "imdb")
        assert len(result.points) == 3
        overall = result.series(None)
        assert all(not math.isnan(v) for v in overall)
        assert all(v >= 0 for v in overall)

    def test_series_table_has_five_series(self, context):
        result = figure8_series(context, "imdb")
        table = result.as_series_table()
        assert set(table) == {"Text", "String", "Numeric", "Struct", "Overall"}

    def test_total_kb_grows_with_fraction(self, context):
        result = figure8_series(context, "xmark")
        assert result.total_kb[-1] >= result.total_kb[1]


class TestFigure9:
    def test_rows(self, context):
        imdb = figure8_series(context, "imdb")
        xmark = figure8_series(context, "xmark")
        rows = figure9_rows(imdb, xmark)
        assert [row.query_class for row in rows] == [
            QueryClass.NUMERIC,
            QueryClass.STRING,
            QueryClass.TEXT,
        ]
        for row in rows:
            assert row.imdb >= 0.0
            assert row.xmark >= 0.0


class TestNegative:
    def test_near_zero_estimates(self, context):
        averages = negative_workload_estimates(context, "imdb", fractions=(1.0,))
        assert len(averages) == 1
        assert averages[0] < 2.0


class TestContextCaching:
    def test_dataset_cached(self, context):
        assert context.dataset("imdb") is context.dataset("imdb")

    def test_reference_cached_and_copy_fresh(self, context):
        reference = context.reference("imdb")
        assert context.reference("imdb") is reference
        fresh = context.fresh_reference("imdb")
        assert fresh is not reference
        assert len(fresh) == len(reference)

    def test_unknown_dataset(self, context):
        with pytest.raises(KeyError):
            context.dataset("nope")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series_percent(self):
        text = format_series(
            "T", "kb", [1.0, 2.0], [[0.5, 0.25]], ["Overall"], percent=True
        )
        assert "50.0" in text and "25.0" in text

    def test_format_series_nan(self):
        text = format_series("T", "kb", [1.0], [[float("nan")]], ["S"])
        assert "-" in text

"""Unit tests for baseline policies and structure-only summaries."""

import copy

import pytest

from repro.core import build_reference_synopsis, structural_size_bytes
from repro.core.baselines import (
    build_structure_only_synopsis,
    compress_with_policy,
    make_smallest_count_policy,
    naive_prune_pst,
    random_policy,
)
from repro.values.pst import PrunedSuffixTree


class TestPolicies:
    def test_random_policy_compresses_to_budget(self, imdb_small, imdb_reference):
        synopsis = copy.deepcopy(imdb_reference)
        target = structural_size_bytes(synopsis) // 2
        compress_with_policy(synopsis, target, random_policy, seed=3)
        assert structural_size_bytes(synopsis) <= target
        synopsis.validate()

    def test_random_policy_deterministic_per_seed(self, imdb_reference):
        results = []
        for _ in range(2):
            synopsis = copy.deepcopy(imdb_reference)
            target = structural_size_bytes(synopsis) // 2
            compress_with_policy(synopsis, target, random_policy, seed=42)
            results.append(len(synopsis))
        assert results[0] == results[1]

    def test_smallest_count_policy(self, imdb_reference):
        synopsis = copy.deepcopy(imdb_reference)
        target = structural_size_bytes(synopsis) // 2
        policy = make_smallest_count_policy(synopsis)
        compress_with_policy(synopsis, target, policy)
        assert structural_size_bytes(synopsis) <= target
        synopsis.validate()

    def test_policy_stops_when_no_pairs(self, bibliography):
        synopsis = build_reference_synopsis(bibliography.tree)
        compress_with_policy(synopsis, 1, random_policy)  # must terminate
        synopsis.validate()


class TestStructureOnly:
    def test_no_value_summaries(self, imdb_small):
        synopsis = build_structure_only_synopsis(
            imdb_small.tree, imdb_small.value_paths
        )
        assert not synopsis.valued_nodes()
        assert len(synopsis) > 1


class TestNaivePstPruning:
    def test_prunes_requested_count(self):
        pst = PrunedSuffixTree.from_strings(["star wars", "star trek"], max_depth=4)
        before = pst.node_count
        pruned = naive_prune_pst(pst, 5)
        assert pruned == 5
        assert pst.node_count == before - 5
        assert pst.check_monotonicity()

    def test_keeps_symbol_layer(self):
        pst = PrunedSuffixTree.from_strings(["abc"], max_depth=3)
        naive_prune_pst(pst, 1000)
        for symbol in "abc":
            assert pst.lookup(symbol) is not None

"""Final coverage batch: rendering details, dataset container, mutations."""

import pytest

from repro.datasets import Dataset, bibliography_tree
from repro.query import parse_twig
from repro.query.ast import _render_predicate
from repro.query.predicates import (
    AtLeastKPredicate,
    KeywordPredicate,
    RangePredicate,
    SubstringPredicate,
    TruePredicate,
)
from repro.workload.generator import QueryClass, Workload, WorkloadQuery
from repro.workload.negative import (
    _copy_twig,
    _negate_predicates,
    _negate_structure,
)


class TestPredicateRendering:
    def test_bounded_range(self):
        assert "in [1, 5]" in _render_predicate(RangePredicate(1, 5))

    def test_lower_bounded_range(self):
        assert ">= 3" in _render_predicate(RangePredicate(low=3))

    def test_upper_bounded_range(self):
        assert "<= 9" in _render_predicate(RangePredicate(high=9))

    def test_substring(self):
        assert "contains(abc)" in _render_predicate(SubstringPredicate("abc"))

    def test_keywords_sorted(self):
        text = _render_predicate(KeywordPredicate(["b", "a"]))
        assert "ftcontains(a, b)" in text

    def test_atleast(self):
        text = _render_predicate(AtLeastKPredicate(["b", "a"], 1))
        assert "ftatleast(1, a, b)" in text

    def test_trivial(self):
        assert _render_predicate(TruePredicate()) == ""


class TestNegativeMutations:
    def test_copy_twig_is_deep(self):
        original = parse_twig("//a[./b >= 2]/c")
        duplicate = _copy_twig(original)
        duplicate.nodes()[1].children.clear()
        assert len(original.nodes()) == 4

    def test_negate_range(self):
        import random

        twig = parse_twig("//a[./b >= 2]")
        assert _negate_predicates(twig, domain_hi=100, rng=random.Random(0))
        predicate = next(n.predicate for n in twig.nodes() if n.has_value_predicate)
        assert isinstance(predicate, RangePredicate)
        assert predicate.low > 100

    def test_negate_substring(self):
        import random

        twig = parse_twig("//a[./b contains(xy)]")
        assert _negate_predicates(twig, 0, random.Random(0))
        predicate = next(n.predicate for n in twig.nodes() if n.has_value_predicate)
        assert "§" in predicate.needle

    def test_negate_keywords(self):
        import random

        twig = parse_twig("//a[./b ftcontains(t)]")
        assert _negate_predicates(twig, 0, random.Random(0))
        predicate = next(n.predicate for n in twig.nodes() if n.has_value_predicate)
        assert "zzzzunusedterm" in predicate.terms

    def test_negate_structure_adds_impossible_branch(self):
        import random

        twig = parse_twig("//a/b")
        assert _negate_structure(twig, random.Random(0))
        labels = {
            node.edge.target_label for node in twig.nodes() if node.edge is not None
        }
        assert "no_such_element" in labels

    def test_no_predicates_to_negate(self):
        import random

        twig = parse_twig("//a/b")
        assert not _negate_predicates(twig, 0, random.Random(0))


class TestDatasetContainer:
    def test_element_count(self):
        dataset = bibliography_tree()
        assert dataset.element_count == len(dataset.tree) == 17

    def test_fields(self):
        dataset = bibliography_tree()
        assert isinstance(dataset, Dataset)
        assert dataset.name == "bibliography"
        assert len(dataset.value_paths) == 8


class TestWorkloadContainer:
    def make(self):
        queries = [
            WorkloadQuery(parse_twig("//a"), 5, QueryClass.STRUCT),
            WorkloadQuery(parse_twig("//b[. >= 1]"), 3, QueryClass.NUMERIC),
            WorkloadQuery(parse_twig("//c[. contains(x)]"), 1, QueryClass.STRING),
        ]
        return Workload("test", queries)

    def test_len(self):
        assert len(self.make()) == 3

    def test_partitions(self):
        workload = self.make()
        assert len(workload.structural_queries) == 1
        assert len(workload.predicate_queries) == 2

    def test_average_result_size(self):
        workload = self.make()
        assert workload.average_result_size() == pytest.approx(3.0)
        assert workload.average_result_size(workload.predicate_queries) == 2.0
        assert Workload("empty").average_result_size() == 0.0

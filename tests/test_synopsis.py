"""Unit tests for the synopsis graph model and the node-merge operation."""

import pytest

from repro.core.synopsis import XClusterSynopsis
from repro.values.summary import SummaryConfig, build_summary
from repro.xmltree.types import ValueType


def build_diamond():
    """root -> u(2), v(3); u -> c(4); v -> c, d(3)."""
    synopsis = XClusterSynopsis()
    root = synopsis.add_node("r", ValueType.NULL, 1)
    u = synopsis.add_node("x", ValueType.NULL, 2)
    v = synopsis.add_node("x", ValueType.NULL, 3)
    c = synopsis.add_node("c", ValueType.NULL, 4)
    d = synopsis.add_node("d", ValueType.NULL, 3)
    synopsis.set_root(root)
    synopsis.add_edge(root, u, 2.0)
    synopsis.add_edge(root, v, 3.0)
    synopsis.add_edge(u, c, 2.0)
    synopsis.add_edge(v, c, 1.0)
    synopsis.add_edge(v, d, 1.0)
    return synopsis, root, u, v, c, d


class TestGraphBasics:
    def test_counts_and_edges(self):
        synopsis, *_ = build_diamond()
        assert len(synopsis) == 5
        assert synopsis.edge_count == 5
        assert synopsis.total_element_count() == 13

    def test_validate_ok(self):
        synopsis, *_ = build_diamond()
        synopsis.validate()

    def test_positive_edge_counts_required(self):
        synopsis, root, u, *_ = build_diamond()
        with pytest.raises(ValueError):
            synopsis.add_edge(root, u, 0.0)

    def test_levels(self):
        synopsis, root, u, v, c, d = build_diamond()
        levels = synopsis.levels()
        assert levels[c.node_id] == 0
        assert levels[d.node_id] == 0
        assert levels[u.node_id] == 1
        assert levels[v.node_id] == 1
        assert levels[root.node_id] == 2

    def test_nodes_by_label(self):
        synopsis, *_ = build_diamond()
        assert len(synopsis.nodes_by_label("x")) == 2


class TestMerge:
    def test_merged_count_is_sum(self):
        synopsis, root, u, v, c, d = build_diamond()
        w = synopsis.merge_nodes(u.node_id, v.node_id)
        assert w.count == 5
        assert len(synopsis) == 4
        synopsis.validate()

    def test_outgoing_weighted_average(self):
        synopsis, root, u, v, c, d = build_diamond()
        w = synopsis.merge_nodes(u.node_id, v.node_id)
        # count(w, c) = (2*2 + 3*1) / 5
        assert w.children[c.node_id] == pytest.approx(7.0 / 5.0)
        # count(w, d) = (2*0 + 3*1) / 5
        assert w.children[d.node_id] == pytest.approx(3.0 / 5.0)

    def test_incoming_sum(self):
        synopsis, root, u, v, c, d = build_diamond()
        w = synopsis.merge_nodes(u.node_id, v.node_id)
        assert root.children[w.node_id] == pytest.approx(5.0)

    def test_parent_sets_rewired(self):
        synopsis, root, u, v, c, d = build_diamond()
        w = synopsis.merge_nodes(u.node_id, v.node_id)
        assert c.parents == {w.node_id}
        assert w.parents == {root.node_id}

    def test_merge_label_mismatch_rejected(self):
        synopsis, root, u, v, c, d = build_diamond()
        with pytest.raises(ValueError):
            synopsis.merge_nodes(u.node_id, c.node_id)

    def test_merge_self_rejected(self):
        synopsis, root, u, *_ = build_diamond()
        with pytest.raises(ValueError):
            synopsis.merge_nodes(u.node_id, u.node_id)

    def test_parent_child_merge_creates_self_loop(self):
        synopsis = XClusterSynopsis()
        root = synopsis.add_node("r", ValueType.NULL, 1)
        outer = synopsis.add_node("s", ValueType.NULL, 2)
        inner = synopsis.add_node("s", ValueType.NULL, 4)
        synopsis.set_root(root)
        synopsis.add_edge(root, outer, 2.0)
        synopsis.add_edge(outer, inner, 2.0)
        w = synopsis.merge_nodes(outer.node_id, inner.node_id)
        synopsis.validate()
        assert w.node_id in w.children  # self-loop
        # Weighted: (2 elements * 2 children + 4 * 0) / 6.
        assert w.children[w.node_id] == pytest.approx(4.0 / 6.0)

    def test_root_merge_updates_root_id(self):
        synopsis = XClusterSynopsis()
        a = synopsis.add_node("r", ValueType.NULL, 1)
        b = synopsis.add_node("r", ValueType.NULL, 1)
        child = synopsis.add_node("c", ValueType.NULL, 2)
        synopsis.set_root(a)
        synopsis.add_edge(a, child, 1.0)
        synopsis.add_edge(b, child, 1.0)
        w = synopsis.merge_nodes(a.node_id, b.node_id)
        assert synopsis.root_id == w.node_id

    def test_merge_fuses_value_summaries(self):
        config = SummaryConfig()
        synopsis = XClusterSynopsis()
        root = synopsis.add_node("r", ValueType.NULL, 1)
        u = synopsis.add_node("y", ValueType.NUMERIC, 2,
                              build_summary(ValueType.NUMERIC, [1, 2], config))
        v = synopsis.add_node("y", ValueType.NUMERIC, 3,
                              build_summary(ValueType.NUMERIC, [3, 4, 5], config))
        synopsis.set_root(root)
        synopsis.add_edge(root, u, 2.0)
        synopsis.add_edge(root, v, 3.0)
        w = synopsis.merge_nodes(u.node_id, v.node_id)
        assert w.vsumm.count == pytest.approx(5.0)

    def test_merge_summarized_with_unsummarized_keeps_summary(self):
        config = SummaryConfig()
        synopsis = XClusterSynopsis()
        root = synopsis.add_node("r", ValueType.NULL, 1)
        u = synopsis.add_node("y", ValueType.NUMERIC, 2,
                              build_summary(ValueType.NUMERIC, [1, 2], config))
        v = synopsis.add_node("y", ValueType.NUMERIC, 3, None)
        synopsis.set_root(root)
        synopsis.add_edge(root, u, 2.0)
        synopsis.add_edge(root, v, 3.0)
        w = synopsis.merge_nodes(u.node_id, v.node_id)
        assert w.vsumm is not None
        assert w.count == 5

    def test_type_mismatch_rejected(self):
        synopsis = XClusterSynopsis()
        u = synopsis.add_node("y", ValueType.NUMERIC, 1)
        v = synopsis.add_node("y", ValueType.STRING, 1)
        with pytest.raises(ValueError):
            synopsis.merge_nodes(u.node_id, v.node_id)

    def test_shared_parent_edges_deduplicate(self):
        synopsis, root, u, v, c, d = build_diamond()
        before_edges = synopsis.edge_count
        synopsis.merge_nodes(u.node_id, v.node_id)
        # root->u and root->v collapse; u->c and v->c collapse: 5 -> 3.
        assert synopsis.edge_count == before_edges - 2

"""Unit tests for twig value predicates."""

import pytest

from repro.query.predicates import (
    KeywordPredicate,
    RangePredicate,
    SubstringPredicate,
    TruePredicate,
)
from repro.xmltree.types import ValueType


class TestTruePredicate:
    def test_matches_everything(self):
        predicate = TruePredicate()
        assert predicate.matches(None)
        assert predicate.matches(5)
        assert predicate.matches("x")

    def test_applicable_to_all_types(self):
        predicate = TruePredicate()
        for value_type in ValueType:
            assert predicate.applicable_to(value_type)

    def test_equality_and_hash(self):
        assert TruePredicate() == TruePredicate()
        assert hash(TruePredicate()) == hash(TruePredicate())


class TestRangePredicate:
    def test_inclusive_bounds(self):
        predicate = RangePredicate(2, 5)
        assert predicate.matches(2)
        assert predicate.matches(5)
        assert not predicate.matches(1)
        assert not predicate.matches(6)

    def test_open_low(self):
        predicate = RangePredicate(high=10)
        assert predicate.matches(-(10**9))
        assert not predicate.matches(11)

    def test_open_high(self):
        predicate = RangePredicate(low=10)
        assert predicate.matches(10**9)
        assert not predicate.matches(9)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangePredicate(5, 2)

    def test_wrong_type_value(self):
        assert not RangePredicate(0, 10).matches("5")
        assert not RangePredicate(0, 10).matches(None)

    def test_equality_and_hash(self):
        assert RangePredicate(1, 2) == RangePredicate(1, 2)
        assert RangePredicate(1, 2) != RangePredicate(1, 3)
        assert hash(RangePredicate(1, 2)) == hash(RangePredicate(1, 2))

    def test_applicable_to(self):
        assert RangePredicate(0, 1).applicable_to(ValueType.NUMERIC)
        assert not RangePredicate(0, 1).applicable_to(ValueType.STRING)


class TestSubstringPredicate:
    def test_contains(self):
        predicate = SubstringPredicate("tar")
        assert predicate.matches("star")
        assert not predicate.matches("trek")

    def test_case_sensitive(self):
        assert not SubstringPredicate("Star").matches("star")

    def test_empty_needle_rejected(self):
        with pytest.raises(ValueError):
            SubstringPredicate("")

    def test_wrong_type_value(self):
        assert not SubstringPredicate("a").matches(5)

    def test_equality_and_hash(self):
        assert SubstringPredicate("x") == SubstringPredicate("x")
        assert hash(SubstringPredicate("x")) == hash(SubstringPredicate("x"))
        assert SubstringPredicate("x") != SubstringPredicate("y")


class TestKeywordPredicate:
    def test_all_terms_required(self):
        predicate = KeywordPredicate(["xml", "tree"])
        assert predicate.matches(frozenset({"xml", "tree", "extra"}))
        assert not predicate.matches(frozenset({"xml"}))

    def test_terms_lowercased(self):
        predicate = KeywordPredicate(["XML"])
        assert predicate.matches(frozenset({"xml"}))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KeywordPredicate([])
        with pytest.raises(ValueError):
            KeywordPredicate([""])

    def test_wrong_type_value(self):
        assert not KeywordPredicate(["a"]).matches("a string with a")

    def test_sorted_terms(self):
        assert KeywordPredicate(["b", "a"]).sorted_terms() == ("a", "b")

    def test_equality_and_hash(self):
        assert KeywordPredicate(["a", "b"]) == KeywordPredicate(["b", "a"])
        assert hash(KeywordPredicate(["a"])) == hash(KeywordPredicate(["A"]))
